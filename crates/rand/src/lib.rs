//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] sampling methods
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ with splitmix64 seed expansion — a
//! different stream than rand's ChaCha12-based `StdRng`, but with the same
//! contract every caller in this workspace relies on: deterministic,
//! high-quality, seedable from a `u64`, and cheap to clone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The splitmix64 finalizer: a bijective avalanche mix on `u64`.
#[inline]
pub(crate) fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with a uniform distribution over
/// their natural domain (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform sample from `lo..hi` (`hi` exclusive; panics if empty).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `lo..=hi` (panics if empty).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard the upper bound against rounding.
                if v >= hi { lo } else { v }
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T`'s natural distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The concrete generators.

    use super::{splitmix64_next, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state, for checkpointing. A generator
        /// rebuilt from this snapshot via [`StdRng::from_state`] continues
        /// the stream bit-identically.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// The all-zero state is the xoshiro fixed point (it only ever
        /// emits zeros); it cannot arise from [`SeedableRng::seed_from_u64`]
        /// (splitmix64 expansion never produces it), so restore paths
        /// should reject it before calling this.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed through splitmix64, as the xoshiro authors
            // recommend; an all-zero state cannot arise.
            let mut sm = seed;
            let s = [
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = StdRng::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = StdRng::rotl(self.s[3], 45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(
            v, original,
            "50 elements virtually never shuffle to identity"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let snap = a.state();
        assert_ne!(snap, [0u64; 4], "seeding never reaches the fixed point");
        let mut b = StdRng::from_state(snap);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}

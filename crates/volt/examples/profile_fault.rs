//! Micro-profiles the fault injectors' per-call cost: RNG/search
//! primitives first (to calibrate expectations), then
//! `corrupt_product` for the geometric-skip injector vs the per-draw
//! oracle across the benchmark error rates. Useful when tuning the
//! event path — detector-level numbers live in `bench_throughput`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shmd_volt::fault::{FaultInjector, FaultModel, PerDrawInjector};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut() -> u64>(n: u64, mut f: F) -> f64 {
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(f());
    }
    black_box(acc);
    t.elapsed().as_secs_f64() / n as f64 * 1e9
}

fn main() {
    let n = 50_000_000u64;
    let mut rng = StdRng::seed_from_u64(1);
    println!("gen f64: {:.2} ns", time(n, || rng.gen::<f64>() as u64));
    let mut rng2 = StdRng::seed_from_u64(2);
    println!(
        "gen f64 + ln: {:.2} ns",
        time(n, || (rng2.gen::<f64>() + 1.0).ln() as u64)
    );
    let cdf: Vec<f64> = (0..54).map(|i| (i as f64 + 1.0) / 54.0).collect();
    let mut rng3 = StdRng::seed_from_u64(3);
    println!(
        "gen f64 + partition_point(54): {:.2} ns",
        time(n, || {
            let u: f64 = rng3.gen();
            cdf.partition_point(|&c| c < u) as u64
        })
    );

    let n = 20_000_000u64;
    for er in [0.0, 0.05, 0.1, 0.3] {
        let model = FaultModel::from_error_rate(er).unwrap();
        let mut geo = FaultInjector::new(model.clone(), 1);
        let mut per = PerDrawInjector::new(model, 1);
        let mut x = 0x0123_4567_89ab_cdefi64;
        let g = time(n, || {
            x = x.rotate_left(1);
            geo.corrupt_product(black_box(x)) as u64
        });
        let p = time(n, || {
            x = x.rotate_left(1);
            per.corrupt_product(black_box(x)) as u64
        });
        println!("er={er}: geometric {g:.2} ns/call, per-draw {p:.2} ns/call");
    }

    // Event decomposition: near-zero products absorb before any flip
    // draw, so (near_zero − exact) / er isolates the gap-resample side
    // of an event and the remainder is the flip machinery.
    {
        let er = 0.1;
        let model = FaultModel::from_error_rate(er).unwrap();
        let mut geo = FaultInjector::new(model, 1);
        let a = time(n, || geo.corrupt_product(black_box(1)) as u64);
        println!("er={er}: geometric near-zero {a:.2} ns/call");
    }
}

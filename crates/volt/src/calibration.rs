//! Per-device calibration: mapping undervolt offsets to error rates.
//!
//! Undervolting-induced faults vary across devices (process variation) and
//! with temperature, so the paper's §IX requires "a separate calibration
//! ... for each device to determine the undervolting level that leads to the
//! best accuracy/robustness tradeoff". [`Calibrator`] performs that sweep
//! against the timing model, producing a [`CalibrationCurve`] that can be
//! queried in both directions: *what error rate does this offset give?* and
//! *what offset achieves this error rate?*

use crate::delay::DelayModel;
use crate::fault::{FaultInjector, FaultModel};
use crate::multiplier::{MultiplierTimingModel, FREEZE_ERROR_RATE, OBSERVABLE_P};
use crate::voltage::{Millivolts, Volts, NOMINAL_CORE_VOLTAGE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Deepest offset the calibration sweep explores.
pub const SWEEP_LIMIT_MV: i32 = -200;

/// A physical device instance: process corner and operating temperature.
///
/// Two devices with different seeds model two different chips of the same
/// SKU; their first-fault and freeze offsets differ by a few millivolts,
/// which is why calibration is per-device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device identifier.
    pub name: String,
    /// Seed selecting the process corner.
    pub seed: u64,
    /// Standard deviation of the per-device threshold-voltage shift, in mV.
    pub vth_sigma_mv: f64,
    /// Die temperature during calibration, °C.
    pub temp_c: f64,
}

impl DeviceProfile {
    /// The reference device: the paper's i7-5557U at 49 °C.
    pub fn reference() -> DeviceProfile {
        DeviceProfile {
            name: "i7-5557U".to_string(),
            seed: 0,
            vth_sigma_mv: 0.0,
            temp_c: 49.0,
        }
    }

    /// A randomly drawn device of the same SKU (8 mV Vth sigma).
    pub fn sampled(name: impl Into<String>, seed: u64) -> DeviceProfile {
        DeviceProfile {
            name: name.into(),
            seed,
            vth_sigma_mv: 8.0,
            temp_c: 49.0,
        }
    }

    /// The device-specific threshold-voltage shift in volts.
    pub fn vth_shift(&self) -> Volts {
        if self.vth_sigma_mv == 0.0 {
            return Volts(0.0);
        }
        // Box–Muller from a seeded RNG: deterministic per device.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_ca11_b0a7_ed01);
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Volts(z * self.vth_sigma_mv / 1000.0)
    }

    /// The timing model for this device.
    pub fn timing_model(&self) -> MultiplierTimingModel {
        let delay = DelayModel::broadwell()
            .with_temperature(self.temp_c)
            .with_vth_shift(self.vth_shift());
        MultiplierTimingModel::broadwell_2_2ghz().with_delay_model(delay)
    }
}

impl Default for DeviceProfile {
    fn default() -> DeviceProfile {
        DeviceProfile::reference()
    }
}

/// One measured point of a calibration sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Undervolt offset.
    pub offset: Millivolts,
    /// Mean multiplication error rate at that offset.
    pub error_rate: f64,
}

/// Error returned by calibration queries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CalibrationError {
    /// The requested error rate exceeds what the device reaches before it
    /// freezes.
    ErrorRateUnreachable {
        /// The requested rate.
        requested: f64,
        /// The maximum safely reachable rate.
        max_reachable: f64,
    },
    /// The requested error rate is not a probability.
    InvalidErrorRate(f64),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::ErrorRateUnreachable {
                requested,
                max_reachable,
            } => write!(
                f,
                "error rate {requested} unreachable before freeze (max {max_reachable})"
            ),
            CalibrationError::InvalidErrorRate(er) => {
                write!(f, "error rate {er} is outside the valid range [0, 1]")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// The result of calibrating one device: offset ↔ error-rate mapping plus
/// the first-fault and freeze offsets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    device: String,
    points: Vec<CalibrationPoint>,
    first_fault: Millivolts,
    freeze: Millivolts,
}

impl CalibrationCurve {
    /// The calibrated device's name.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// All sweep points, from 0 mV down to the freeze offset.
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// The shallowest offset at which faults become observable.
    pub fn first_fault_offset(&self) -> Millivolts {
        self.first_fault
    }

    /// The offset at which the system freezes.
    pub fn freeze_offset(&self) -> Millivolts {
        self.freeze
    }

    /// The error rate at an offset (linear interpolation between sweep
    /// points; saturates at the curve ends).
    pub fn error_rate_at(&self, offset: Millivolts) -> f64 {
        let mv = offset.get();
        if self.points.is_empty() {
            return 0.0;
        }
        if mv >= self.points[0].offset.get() {
            return self.points[0].error_rate;
        }
        for pair in self.points.windows(2) {
            let (hi, lo) = (pair[0], pair[1]);
            if mv <= hi.offset.get() && mv >= lo.offset.get() {
                let span = f64::from(hi.offset.get() - lo.offset.get());
                let t = f64::from(hi.offset.get() - mv) / span;
                return hi.error_rate + t * (lo.error_rate - hi.error_rate);
            }
        }
        self.points.last().expect("non-empty").error_rate
    }

    /// The shallowest offset achieving at least the requested error rate.
    ///
    /// This is the defender's main calibration query: "which undervolting
    /// level gives my chosen `er`?"
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::ErrorRateUnreachable`] when the device
    /// freezes before reaching the requested rate, and
    /// [`CalibrationError::InvalidErrorRate`] for rates outside `[0, 1]`.
    pub fn offset_for_error_rate(&self, er: f64) -> Result<Millivolts, CalibrationError> {
        if !er.is_finite() || !(0.0..=1.0).contains(&er) {
            return Err(CalibrationError::InvalidErrorRate(er));
        }
        if er == 0.0 {
            return Ok(Millivolts::new(0));
        }
        for p in &self.points {
            if p.error_rate >= er {
                return Ok(p.offset);
            }
        }
        Err(CalibrationError::ErrorRateUnreachable {
            requested: er,
            max_reachable: self.points.last().map_or(0.0, |p| p.error_rate),
        })
    }

    /// A fault model for operating this device at the given offset.
    ///
    /// # Errors
    ///
    /// Never fails for offsets inside the calibrated range; propagates
    /// fault-model construction errors otherwise.
    pub fn fault_model_at(
        &self,
        offset: Millivolts,
    ) -> Result<FaultModel, crate::fault::FaultModelError> {
        FaultModel::from_error_rate(self.error_rate_at(offset).clamp(0.0, 1.0))
    }
}

/// Performs the calibration sweep for a device.
#[derive(Clone, Debug)]
pub struct Calibrator {
    step_mv: i32,
}

impl Calibrator {
    /// A calibrator using the paper's 1 mV sweep step.
    pub fn new() -> Calibrator {
        Calibrator { step_mv: 1 }
    }

    /// Uses a coarser sweep step (faster, less precise).
    ///
    /// # Panics
    ///
    /// Panics if `step_mv` is not positive.
    #[must_use]
    pub fn with_step(mut self, step_mv: i32) -> Calibrator {
        assert!(step_mv > 0, "sweep step must be positive");
        self.step_mv = step_mv;
        self
    }

    /// Sweeps the device from 0 mV down to its freeze offset.
    pub fn calibrate(&self, device: &DeviceProfile) -> CalibrationCurve {
        let timing = device.timing_model();
        let mut points = Vec::new();
        let mut first_fault = Millivolts::new(SWEEP_LIMIT_MV);
        let mut freeze = Millivolts::new(SWEEP_LIMIT_MV);
        let mut mv = 0;
        while mv >= SWEEP_LIMIT_MV {
            let offset = Millivolts::new(mv);
            let er = timing.mean_error_rate(NOMINAL_CORE_VOLTAGE.with_offset(offset));
            points.push(CalibrationPoint {
                offset,
                error_rate: er,
            });
            if er >= OBSERVABLE_P && first_fault.get() == SWEEP_LIMIT_MV {
                first_fault = offset;
            }
            if er >= FREEZE_ERROR_RATE {
                freeze = offset;
                break;
            }
            mv -= self.step_mv;
        }
        CalibrationCurve {
            device: device.name.clone(),
            points,
            first_fault,
            freeze,
        }
    }

    /// Monte-Carlo validation of a single sweep point: multiplies `samples`
    /// random operand pairs through a per-operand fault model and reports
    /// the observed error rate. Used to cross-check the analytic sweep.
    pub fn measure_error_rate(
        &self,
        device: &DeviceProfile,
        offset: Millivolts,
        samples: usize,
        seed: u64,
    ) -> f64 {
        let timing = device.timing_model();
        let vdd = NOMINAL_CORE_VOLTAGE.with_offset(offset);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faulty = 0usize;
        for _ in 0..samples {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            let model = FaultModel::at_voltage_for_operands(&timing, vdd, a, b)
                .expect("timing rates are probabilities");
            let mut injector = FaultInjector::new(model, rng.gen());
            let product = a.wrapping_mul(b);
            if injector.corrupt_unsigned(product) != product {
                faulty += 1;
            }
        }
        faulty as f64 / samples as f64
    }
}

impl Default for Calibrator {
    fn default() -> Calibrator {
        Calibrator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_curve() -> CalibrationCurve {
        Calibrator::new().calibrate(&DeviceProfile::reference())
    }

    #[test]
    fn reference_first_fault_in_paper_window() {
        let curve = reference_curve();
        let ff = curve.first_fault_offset().get();
        assert!((-150..=-95).contains(&ff), "first fault at {ff} mV");
    }

    #[test]
    fn curve_is_monotone() {
        let curve = reference_curve();
        for pair in curve.points().windows(2) {
            assert!(
                pair[1].error_rate >= pair[0].error_rate,
                "error rate must not decrease with deeper undervolt"
            );
        }
    }

    #[test]
    fn freeze_is_past_first_fault() {
        let curve = reference_curve();
        assert!(curve.freeze_offset().get() < curve.first_fault_offset().get());
    }

    #[test]
    fn offset_for_error_rate_round_trips() {
        let curve = reference_curve();
        for &er in &[0.01, 0.1, 0.3] {
            let offset = curve.offset_for_error_rate(er).expect("reachable");
            let back = curve.error_rate_at(offset);
            assert!(
                back >= er * 0.5 && back <= er * 2.0 + 0.01,
                "er {er} -> {offset} -> {back}"
            );
        }
    }

    #[test]
    fn zero_error_rate_means_no_undervolt() {
        let curve = reference_curve();
        assert_eq!(
            curve.offset_for_error_rate(0.0).expect("valid"),
            Millivolts::new(0)
        );
    }

    #[test]
    fn unreachable_rates_error() {
        let curve = reference_curve();
        let err = curve.offset_for_error_rate(0.99).expect_err("unreachable");
        assert!(matches!(err, CalibrationError::ErrorRateUnreachable { .. }));
    }

    #[test]
    fn invalid_rates_error() {
        let curve = reference_curve();
        assert!(matches!(
            curve.offset_for_error_rate(-1.0),
            Err(CalibrationError::InvalidErrorRate(_))
        ));
    }

    #[test]
    fn devices_differ() {
        let a = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::sampled("dev-a", 1));
        let b = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::sampled("dev-b", 2));
        assert_ne!(
            a.first_fault_offset(),
            b.first_fault_offset(),
            "process variation should shift the first-fault offset"
        );
    }

    #[test]
    fn temperature_shifts_the_curve() {
        let mut hot_dev = DeviceProfile::reference();
        hot_dev.temp_c = 90.0;
        let cold = reference_curve();
        let hot = Calibrator::new().with_step(2).calibrate(&hot_dev);
        assert_ne!(cold.first_fault_offset(), hot.first_fault_offset());
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_sweep() {
        let device = DeviceProfile::reference();
        let curve = reference_curve();
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let measured = Calibrator::new().measure_error_rate(&device, offset, 4000, 7);
        let analytic = curve.error_rate_at(offset);
        assert!(
            (measured - analytic).abs() < 0.05,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn fault_model_at_offset_is_usable() {
        let curve = reference_curve();
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let model = curve.fault_model_at(offset).expect("valid");
        assert!(model.error_rate() > 0.0);
    }

    #[test]
    fn step_must_be_positive() {
        let result = std::panic::catch_unwind(|| Calibrator::new().with_step(0));
        assert!(result.is_err());
    }
}

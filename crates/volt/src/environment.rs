//! Seeded thermal environment: die temperature as a pure function of time.
//!
//! §IX of the paper warns that undervolting-induced fault rates drift with
//! die temperature, and that over-aggressive offsets freeze the core. A
//! serving deployment therefore needs a *world model* to be tested
//! against: ambient temperature that wanders over a shift, load-dependent
//! self-heating that ramps as the monitor keeps its core busy, and sensor
//! noise. [`ThermalEnvironment`] provides exactly that — and nothing in it
//! reads a clock or a real sensor. The temperature at step `t` is a pure
//! function of the configuration, the seed, and `t` (per-step noise comes
//! from a splitmix64 hash of the seed and the step index), so a chaos or
//! recovery experiment replays bit-identically at any thread count.
//!
//! The module also answers the two physical questions a shard supervisor
//! has to ask about an operating point that the calibration-time curve can
//! no longer answer once the temperature has moved:
//! [`delivered_error_rate_at`] (what error rate does this offset *really*
//! deliver at this temperature?) and [`freezes_at`] (does this offset
//! cross [`FREEZE_ERROR_RATE`] here — i.e. does the core hang instead of
//! computing?).

use crate::calibration::{DeviceProfile, SWEEP_LIMIT_MV};
use crate::multiplier::FREEZE_ERROR_RATE;
use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use serde::{Deserialize, Serialize};

/// Configuration of a [`ThermalEnvironment`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentConfig {
    /// Baseline ambient die temperature, °C.
    pub base_temp_c: f64,
    /// Amplitude of the slow ambient drift (triangle wave), °C. Zero
    /// disables ambient drift.
    pub drift_amplitude_c: f64,
    /// Steps per full ambient-drift cycle. Zero disables ambient drift.
    pub drift_period: u64,
    /// Asymptotic self-heating under sustained monitoring load, °C.
    pub load_heating_c: f64,
    /// Steps to reach ~63% of the load heating (exponential ramp). Zero
    /// applies the full heating immediately.
    pub heating_tau: u64,
    /// Half-width of the uniform per-step temperature noise, °C.
    pub noise_c: f64,
    /// Seed of the per-step noise stream.
    pub seed: u64,
}

impl EnvironmentConfig {
    /// A lab-stable environment pinned at `temp_c`: no drift, no heating,
    /// no noise. [`ThermalEnvironment::temperature_at`] returns `temp_c`
    /// at every step.
    pub fn steady(temp_c: f64) -> EnvironmentConfig {
        EnvironmentConfig {
            base_temp_c: temp_c,
            drift_amplitude_c: 0.0,
            drift_period: 0,
            load_heating_c: 0.0,
            heating_tau: 0,
            noise_c: 0.0,
            seed: 0,
        }
    }

    /// A realistic office deployment starting at `temp_c`: ±4 °C ambient
    /// drift over 512 steps, 6 °C of load heating with a 128-step ramp,
    /// and ±0.3 °C of sensor noise.
    pub fn drifting(temp_c: f64, seed: u64) -> EnvironmentConfig {
        EnvironmentConfig {
            base_temp_c: temp_c,
            drift_amplitude_c: 4.0,
            drift_period: 512,
            load_heating_c: 6.0,
            heating_tau: 128,
            noise_c: 0.3,
            seed,
        }
    }

    /// Sets the ambient drift (triangle wave) amplitude and period.
    #[must_use]
    pub fn with_drift(mut self, amplitude_c: f64, period: u64) -> EnvironmentConfig {
        self.drift_amplitude_c = amplitude_c;
        self.drift_period = period;
        self
    }

    /// Sets the load-heating asymptote and ramp time constant.
    #[must_use]
    pub fn with_load_heating(mut self, heating_c: f64, tau: u64) -> EnvironmentConfig {
        self.load_heating_c = heating_c;
        self.heating_tau = tau;
        self
    }

    /// Sets the per-step noise half-width.
    #[must_use]
    pub fn with_noise(mut self, noise_c: f64) -> EnvironmentConfig {
        self.noise_c = noise_c;
        self
    }

    /// Sets the noise seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> EnvironmentConfig {
        self.seed = seed;
        self
    }
}

impl Default for EnvironmentConfig {
    fn default() -> EnvironmentConfig {
        EnvironmentConfig::steady(DeviceProfile::reference().temp_c)
    }
}

/// Splitmix64 finalizer — the same avalanche the workspace uses for seed
/// derivation. `volt` sits below the crate that owns `derive_seed`, so the
/// mixer is reimplemented here (it is a pure 3-line hash).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The golden-gamma increment of splitmix64, used to decorrelate the step
/// index from the seed before hashing.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// A deterministic thermal trace: die temperature as a function of the
/// step index (the serving layer uses one step per batch).
///
/// `temperature_at(t)` = base + ambient triangle drift + exponential
/// load-heating ramp + seeded per-step noise. No wall-clock anywhere, so
/// a replay from the same configuration is bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalEnvironment {
    config: EnvironmentConfig,
}

impl ThermalEnvironment {
    /// Wraps a configuration.
    pub fn new(config: EnvironmentConfig) -> ThermalEnvironment {
        ThermalEnvironment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EnvironmentConfig {
        &self.config
    }

    /// Snapshots the environment for checkpointing. The environment is
    /// stateless — [`ThermalEnvironment::temperature_at`] is a pure
    /// function of `(config, step)` — so its complete state *is* the
    /// configuration; the step cursor lives with the caller (the serving
    /// layer uses its batch counter), and must be checkpointed there.
    pub fn export_state(&self) -> EnvironmentConfig {
        self.config
    }

    /// Rebuilds an environment from an [`ThermalEnvironment::export_state`]
    /// snapshot. Equivalent to [`ThermalEnvironment::new`]; named for
    /// symmetry with the other restore paths.
    pub fn from_state(config: EnvironmentConfig) -> ThermalEnvironment {
        ThermalEnvironment { config }
    }

    /// The die temperature at `step`, °C — a pure function of the
    /// configuration, the seed, and `step`.
    pub fn temperature_at(&self, step: u64) -> f64 {
        self.config.base_temp_c
            + self.ambient_at(step)
            + self.heating_at(step)
            + self.noise_at(step)
    }

    /// Triangle-wave ambient drift: 0 at step 0, peaks at +amplitude a
    /// quarter-period in, troughs at −amplitude three quarters in.
    fn ambient_at(&self, step: u64) -> f64 {
        let c = &self.config;
        if c.drift_period == 0 || c.drift_amplitude_c == 0.0 {
            return 0.0;
        }
        let frac = (step % c.drift_period) as f64 / c.drift_period as f64;
        let tri = if frac < 0.25 {
            4.0 * frac
        } else if frac < 0.75 {
            2.0 - 4.0 * frac
        } else {
            4.0 * frac - 4.0
        };
        c.drift_amplitude_c * tri
    }

    /// Exponential self-heating ramp towards the load asymptote.
    fn heating_at(&self, step: u64) -> f64 {
        let c = &self.config;
        if c.load_heating_c == 0.0 {
            return 0.0;
        }
        if c.heating_tau == 0 {
            return c.load_heating_c;
        }
        c.load_heating_c * (1.0 - (-(step as f64) / c.heating_tau as f64).exp())
    }

    /// Seeded uniform noise in `[-noise_c, +noise_c]`.
    fn noise_at(&self, step: u64) -> f64 {
        let c = &self.config;
        if c.noise_c == 0.0 {
            return 0.0;
        }
        let bits = splitmix64(c.seed ^ step.wrapping_mul(GOLDEN_GAMMA));
        // 53 high bits → uniform in [0, 1).
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (2.0 * unit - 1.0) * c.noise_c
    }
}

/// The error rate `device` *actually* delivers at `offset` when the die
/// sits at `temp_c` — the physical ground truth a calibration curve taken
/// at another temperature no longer reflects.
pub fn delivered_error_rate_at(device: &DeviceProfile, offset: Millivolts, temp_c: f64) -> f64 {
    let mut at_temp = device.clone();
    at_temp.temp_c = temp_c;
    at_temp
        .timing_model()
        .mean_error_rate(NOMINAL_CORE_VOLTAGE.with_offset(offset))
}

/// Whether holding `offset` at `temp_c` crosses [`FREEZE_ERROR_RATE`]:
/// past that point the core does not compute wrong answers — it hangs.
/// A supervisor must treat this as a shard *crash*, not a drift.
pub fn freezes_at(device: &DeviceProfile, offset: Millivolts, temp_c: f64) -> bool {
    delivered_error_rate_at(device, offset, temp_c) >= FREEZE_ERROR_RATE
}

/// The deepest offset `device` can hold at `temp_c` without freezing,
/// backed off by `guard_band_mv` — the *physical* safety floor at the
/// current temperature, as opposed to the calibration-time floor a stale
/// curve remembers. A power scheduler clamps every retarget against this
/// before applying it, so a shard it deepens on a cool die can never be
/// scheduled into a hang. Scans the same 1 mV grid as the calibrator; if
/// no offset down to [`SWEEP_LIMIT_MV`] freezes, the sweep limit itself is
/// the floor.
pub fn deepest_safe_offset(device: &DeviceProfile, temp_c: f64, guard_band_mv: i32) -> Millivolts {
    let mut mv = 0i32;
    while mv >= SWEEP_LIMIT_MV {
        if freezes_at(device, Millivolts::new(mv), temp_c) {
            return Millivolts::new(mv + guard_band_mv.abs());
        }
        mv -= 1;
    }
    Millivolts::new(SWEEP_LIMIT_MV + guard_band_mv.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibrator;

    #[test]
    fn steady_environment_is_flat() {
        let env = ThermalEnvironment::new(EnvironmentConfig::steady(49.0));
        for step in [0, 1, 17, 1000, u64::MAX] {
            assert_eq!(env.temperature_at(step), 49.0);
        }
    }

    #[test]
    fn replays_are_bit_identical() {
        let a = ThermalEnvironment::new(EnvironmentConfig::drifting(49.0, 7));
        let b = ThermalEnvironment::new(EnvironmentConfig::drifting(49.0, 7));
        for step in 0..500 {
            assert_eq!(
                a.temperature_at(step).to_bits(),
                b.temperature_at(step).to_bits()
            );
        }
    }

    #[test]
    fn state_round_trip_replays_the_trace() {
        let a = ThermalEnvironment::new(EnvironmentConfig::drifting(49.0, 7));
        let b = ThermalEnvironment::from_state(a.export_state());
        for step in 0..300 {
            assert_eq!(
                a.temperature_at(step).to_bits(),
                b.temperature_at(step).to_bits()
            );
        }
    }

    #[test]
    fn seeds_change_the_noise_stream() {
        let a =
            ThermalEnvironment::new(EnvironmentConfig::steady(49.0).with_noise(0.5).with_seed(1));
        let b =
            ThermalEnvironment::new(EnvironmentConfig::steady(49.0).with_noise(0.5).with_seed(2));
        let differing = (0..100)
            .filter(|&s| a.temperature_at(s) != b.temperature_at(s))
            .count();
        assert!(differing > 50, "only {differing} steps differ");
    }

    #[test]
    fn noise_stays_within_its_half_width() {
        let env = ThermalEnvironment::new(EnvironmentConfig::steady(50.0).with_noise(0.3));
        for step in 0..2000 {
            let t = env.temperature_at(step);
            assert!((t - 50.0).abs() <= 0.3, "step {step}: {t}");
        }
    }

    #[test]
    fn triangle_drift_peaks_at_quarter_period() {
        let env = ThermalEnvironment::new(EnvironmentConfig::steady(40.0).with_drift(8.0, 400));
        assert_eq!(env.temperature_at(0), 40.0);
        assert_eq!(env.temperature_at(100), 48.0);
        assert_eq!(env.temperature_at(300), 32.0);
        assert_eq!(env.temperature_at(400), 40.0, "periodic");
    }

    #[test]
    fn load_heating_ramps_monotonically_to_the_asymptote() {
        let env =
            ThermalEnvironment::new(EnvironmentConfig::steady(45.0).with_load_heating(6.0, 64));
        let mut last = env.temperature_at(0);
        for step in 1..400 {
            let t = env.temperature_at(step);
            assert!(t >= last, "heating must not cool");
            last = t;
        }
        assert!(last < 51.0 && last > 50.9, "near the asymptote: {last}");
        let instant =
            ThermalEnvironment::new(EnvironmentConfig::steady(45.0).with_load_heating(6.0, 0));
        assert_eq!(instant.temperature_at(0), 51.0);
    }

    #[test]
    fn temperature_shifts_the_delivered_rate() {
        // Temperature inversion at low voltage (see `delay`): a hotter die
        // is *faster*, so at a fixed offset the delivered error rate falls
        // as the die heats and rises as it cools.
        let device = DeviceProfile::reference();
        let curve = Calibrator::new().with_step(2).calibrate(&device);
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let nominal = delivered_error_rate_at(&device, offset, device.temp_c);
        let hot = delivered_error_rate_at(&device, offset, device.temp_c + 30.0);
        let cold = delivered_error_rate_at(&device, offset, device.temp_c - 30.0);
        assert!(hot < nominal, "hot die must fault less: {nominal} -> {hot}");
        assert!(
            cold > nominal,
            "cold die must fault more: {nominal} -> {cold}"
        );
    }

    #[test]
    fn delivered_rate_matches_the_curve_at_calibration_temperature() {
        let device = DeviceProfile::reference();
        let curve = Calibrator::new().with_step(1).calibrate(&device);
        let offset = curve.offset_for_error_rate(0.1).expect("reachable");
        let delivered = delivered_error_rate_at(&device, offset, device.temp_c);
        assert_eq!(
            delivered.to_bits(),
            curve.error_rate_at(offset).to_bits(),
            "sweep points are exact evaluations of the same model"
        );
    }

    #[test]
    fn deepest_safe_offset_tracks_temperature_inversion() {
        let device = DeviceProfile::reference();
        let guard = 3;
        let at_cal = deepest_safe_offset(&device, device.temp_c, guard);
        // The floor must itself be safe, and one guard band deeper must
        // freeze (the scan stops at the first freezing millivolt).
        assert!(!freezes_at(&device, at_cal, device.temp_c));
        assert!(freezes_at(
            &device,
            Millivolts::new(at_cal.get() - guard),
            device.temp_c
        ));
        // Temperature inversion: a hot die tolerates deeper offsets, a
        // cold die fewer.
        let hot = deepest_safe_offset(&device, device.temp_c + 30.0, guard);
        let cold = deepest_safe_offset(&device, device.temp_c - 30.0, guard);
        assert!(hot.get() < at_cal.get(), "hot floor {hot} vs {at_cal}");
        assert!(cold.get() > at_cal.get(), "cold floor {cold} vs {at_cal}");
        // And it agrees with the calibrator's freeze point at the
        // calibration temperature.
        let curve = Calibrator::new().with_step(1).calibrate(&device);
        assert_eq!(at_cal.get(), curve.freeze_offset().get() + guard);
    }

    #[test]
    fn freeze_is_a_function_of_offset_and_temperature() {
        let device = DeviceProfile::reference();
        let curve = Calibrator::new().with_step(1).calibrate(&device);
        let freeze = curve.freeze_offset();
        assert!(freezes_at(&device, freeze, device.temp_c));
        assert!(!freezes_at(&device, Millivolts::new(0), device.temp_c));
        // An offset safe at the calibration temperature crosses the freeze
        // line when the die cools (temperature inversion: cold is slower).
        let near = Millivolts::new(freeze.get() + 4);
        assert!(!freezes_at(&device, near, device.temp_c));
        assert!(freezes_at(&device, near, device.temp_c - 40.0));
    }
}

//! Per-output-bit timing model of the 64-bit multiplier datapath.
//!
//! The multiplier is the only functional unit the paper observed faulting
//! under undervolting: its partial-product reduction tree and final carry
//! chain form the deepest combinational paths in the integer datapath.
//! Adders and bit-wise logic (modelled by [`AluTimingModel`]) are several
//! times shallower and never violate timing in the practical undervolting
//! window — reproducing the paper's "no faults were observed" for
//! add/sub/bit-wise operations.
//!
//! Two sub-models combine here:
//!
//! 1. **Voltage → fault rate** (physics). The critical path occupies a
//!    fraction [`MultiplierTimingModel::utilization`] of the clock period at
//!    nominal voltage; undervolting stretches it by the alpha-power-law
//!    factor of [`DelayModel`]; cycle-to-cycle supply/thermal noise jitters
//!    the arrival time by a Gaussian of relative width `jitter_sigma`. A
//!    timing violation occurs when the jittered arrival exceeds the clock
//!    period, so the per-multiplication fault probability is a Gaussian tail
//!    that sharpens from ~10⁻⁶ at the first-fault offset to ~1 near the
//!    freeze offset. Operands modulate the critical path: dense operands
//!    (more partial products) exercise longer carry chains, which is why the
//!    paper saw first faults anywhere between −103 mV and −145 mV
//!    "depending on inputs".
//!
//! 2. **Fault location** (empirical). Which output bit latches the wrong
//!    value is distributed per the paper's measured Figure 1: never the sign
//!    bit (a single XOR in the sign-magnitude view, far off the critical
//!    path), never the 8 LSBs (short carry chains), stochastically among the
//!    middle/high bits otherwise. [`BitErrorProfile::fig1`] encodes that
//!    distribution.

use crate::delay::DelayModel;
use crate::math::normal_cdf;
use crate::voltage::{Millivolts, Volts, NOMINAL_CORE_VOLTAGE};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Width of the modelled multiplier output in bits.
pub const OUTPUT_BITS: usize = 64;

/// Index of the product sign bit (never faults).
pub const SIGN_BIT: usize = 63;

/// Number of low-order product bits that never fault.
pub const IMMUNE_LSBS: usize = 8;

/// Fault probability at which a fault becomes "observable" in a
/// characterisation run of ~10⁶ repetitions (used for first-fault offsets).
pub const OBSERVABLE_P: f64 = 1e-6;

/// Mean fault rate beyond which the modelled system freezes.
pub const FREEZE_ERROR_RATE: f64 = 0.5;

/// Relative weights of fault locations across the 64 product bits.
///
/// Weights are non-negative; the sign bit and the 8 LSBs are structurally
/// zero. Use [`BitErrorProfile::fig1`] for the distribution calibrated to
/// the paper's Figure 1 measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BitErrorProfile {
    weights: Vec<f64>,
}

impl BitErrorProfile {
    /// The fault-location distribution measured in the paper's Figure 1
    /// (i7-5557U at 2.2 GHz, 49 °C, −130 mV): a broad bump over the middle
    /// and upper product bits peaking near bit 38, zero at the sign bit and
    /// the 8 LSBs.
    pub fn fig1() -> BitErrorProfile {
        BitErrorProfile::fig1_static().clone()
    }

    /// The Figure-1 profile as a process-wide singleton.
    ///
    /// Sweep loops construct thousands of [`crate::fault::FaultModel`]s; the
    /// profile (and its normalisation, [`BitErrorProfile::fig1_normalized`])
    /// never changes, so it is computed once and borrowed thereafter.
    pub fn fig1_static() -> &'static BitErrorProfile {
        static FIG1: OnceLock<BitErrorProfile> = OnceLock::new();
        FIG1.get_or_init(|| {
            let mut weights = vec![0.0; OUTPUT_BITS];
            let (centre, spread) = (38.0, 11.0);
            #[allow(clippy::needless_range_loop)]
            for i in (IMMUNE_LSBS + 1)..SIGN_BIT {
                let z = (i as f64 - centre) / spread;
                // Gaussian bump with a mild high-bit skew, matching the
                // measured asymmetry (upper bits retain non-negligible
                // rates).
                weights[i] = (-0.5 * z * z).exp() * (1.0 + 0.1 * (i as f64 - centre) / spread);
                if weights[i] < 0.0 {
                    weights[i] = 0.0;
                }
            }
            BitErrorProfile { weights }
        })
    }

    /// The normalised Figure-1 weights as a process-wide singleton (the
    /// borrow-only counterpart of `fig1().normalized()`).
    pub fn fig1_normalized() -> &'static [f64] {
        static FIG1_NORM: OnceLock<Vec<f64>> = OnceLock::new();
        FIG1_NORM.get_or_init(|| BitErrorProfile::fig1_static().normalized())
    }

    /// Builds a profile from explicit per-bit weights.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if a weight is negative or
    /// non-finite, if the sign bit or an immune LSB has non-zero weight, or
    /// if all weights are zero.
    pub fn from_weights(weights: Vec<f64>) -> Result<BitErrorProfile, String> {
        if weights.len() != OUTPUT_BITS {
            return Err(format!(
                "expected {OUTPUT_BITS} weights, got {}",
                weights.len()
            ));
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(format!("weight for bit {i} is invalid: {w}"));
            }
            if (i == SIGN_BIT || i < IMMUNE_LSBS) && w != 0.0 {
                return Err(format!("bit {i} is fault-immune but has weight {w}"));
            }
        }
        if weights.iter().all(|&w| w == 0.0) {
            return Err("all weights are zero".to_string());
        }
        Ok(BitErrorProfile { weights })
    }

    /// The relative weight of faults landing on `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[inline]
    pub fn weight(&self, bit: usize) -> f64 {
        self.weights[bit]
    }

    /// Weights normalised to sum to 1.
    ///
    /// The all-zero case (unreachable through [`BitErrorProfile::from_weights`]
    /// but representable by a deserialized value) normalises to all zeros
    /// rather than dividing by zero and producing NaNs.
    pub fn normalized(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w / total).collect()
    }

    /// The bit with the highest fault weight.
    pub fn peak_bit(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("profile is non-empty")
    }
}

impl Default for BitErrorProfile {
    fn default() -> BitErrorProfile {
        BitErrorProfile::fig1()
    }
}

/// Timing model of the 64-bit multiplier under undervolting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiplierTimingModel {
    delay: DelayModel,
    clock_ghz: f64,
    utilization: f64,
    jitter_sigma: f64,
    min_operand_factor: f64,
    profile: BitErrorProfile,
    /// `profile.normalized()`, cached: the per-operand characterisation
    /// builds one [`crate::fault::FaultModel`] per operand pair and must not
    /// renormalise the (immutable) profile every time.
    profile_normalized: Vec<f64>,
}

impl MultiplierTimingModel {
    /// A model calibrated to the paper's characterisation on the i7-5557U at
    /// 2.2 GHz: first faults at −103 mV for worst-case operands and at
    /// −145 mV for the least critical ones, with Figure-1 per-bit rates at
    /// −130 mV.
    pub fn broadwell_2_2ghz() -> MultiplierTimingModel {
        MultiplierTimingModel {
            delay: DelayModel::broadwell(),
            clock_ghz: 2.2,
            utilization: 0.90905,
            jitter_sigma: 0.0033,
            min_operand_factor: 0.96414,
            profile: BitErrorProfile::fig1(),
            profile_normalized: BitErrorProfile::fig1_normalized().to_vec(),
        }
    }

    /// Returns a copy using a different delay model (temperature or process
    /// variation — see [`crate::calibration`]).
    #[must_use]
    pub fn with_delay_model(mut self, delay: DelayModel) -> MultiplierTimingModel {
        self.delay = delay;
        self
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// The fault-location profile in use.
    pub fn profile(&self) -> &BitErrorProfile {
        &self.profile
    }

    /// The normalised fault-location weights (cached `profile.normalized()`).
    pub fn profile_normalized(&self) -> &[f64] {
        &self.profile_normalized
    }

    /// Clock frequency in GHz (the paper keeps it fixed at 2.2 GHz).
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Criticality factor of an operand pair, in
    /// `[min_operand_factor, 1.0]`.
    ///
    /// Dense operands activate more partial products and longer carry
    /// chains; the factor scales the critical-path delay. All-ones operands
    /// are worst case (factor 1); sparse ones approach the minimum.
    pub fn operand_factor(&self, a: u64, b: u64) -> f64 {
        let activity = f64::from(a.count_ones() + b.count_ones()) / 128.0;
        self.min_operand_factor + (1.0 - self.min_operand_factor) * activity
    }

    /// Probability that a single multiplication with the given operand
    /// criticality faults at supply voltage `vdd`.
    pub fn violation_probability(&self, vdd: Volts, operand_factor: f64) -> f64 {
        let rel = self.delay.relative_delay(vdd);
        if rel.is_infinite() {
            return 1.0;
        }
        let arrival = self.utilization * operand_factor * rel;
        normal_cdf((arrival - 1.0) / self.jitter_sigma)
    }

    /// Mean fault probability over uniformly random operands at `vdd`.
    ///
    /// The operand activity of two independent uniform 64-bit operands is
    /// `Binomial(128, ½)/128`; the integral is evaluated with a 33-point
    /// normal-approximation quadrature.
    pub fn mean_error_rate(&self, vdd: Volts) -> f64 {
        const POINTS: usize = 33;
        let sigma_activity = (128.0f64 * 0.25).sqrt() / 128.0;
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for k in 0..POINTS {
            let z = -4.0 + 8.0 * (k as f64) / (POINTS as f64 - 1.0);
            let w = (-0.5 * z * z).exp();
            let activity = (0.5 + z * sigma_activity).clamp(0.0, 1.0);
            let factor = self.min_operand_factor + (1.0 - self.min_operand_factor) * activity;
            total += w * self.violation_probability(vdd, factor);
            weight_sum += w;
        }
        total / weight_sum
    }

    /// The undervolt offset at which faults first become observable
    /// (probability ≥ [`OBSERVABLE_P`]) for operands with the given
    /// criticality factor.
    ///
    /// The result is identical to the paper's 1 mV characterisation sweep;
    /// because the violation probability grows monotonically with undervolt
    /// depth, the crossing is bracketed with a coarse stride first and only
    /// the bracket is rescanned at 1 mV (~40 evaluations instead of 401).
    pub fn first_fault_offset(&self, operand_factor: f64) -> Millivolts {
        let v = |mv: i32| NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-mv));
        scan_first_crossing(|mv| self.violation_probability(v(mv), operand_factor) >= OBSERVABLE_P)
    }

    /// The undervolt offset at which the mean fault rate crosses
    /// [`FREEZE_ERROR_RATE`] and the modelled system freezes.
    ///
    /// Uses the same coarse-then-fine bracketing as
    /// [`MultiplierTimingModel::first_fault_offset`], which matters here:
    /// every probe runs the 33-point quadrature of
    /// [`MultiplierTimingModel::mean_error_rate`].
    pub fn freeze_offset(&self) -> Millivolts {
        let v = |mv: i32| NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-mv));
        scan_first_crossing(|mv| self.mean_error_rate(v(mv)) >= FREEZE_ERROR_RATE)
    }
}

impl Default for MultiplierTimingModel {
    fn default() -> MultiplierTimingModel {
        MultiplierTimingModel::broadwell_2_2ghz()
    }
}

/// Deepest undervolt offset (in mV below nominal) the characterisation
/// sweeps probe before giving up.
const SCAN_LIMIT_MV: i32 = 400;

/// Coarse bracketing stride for the characterisation sweeps, in mV.
const SCAN_STRIDE_MV: i32 = 16;

/// First offset in `0..=SCAN_LIMIT_MV` (as a negative [`Millivolts`] offset)
/// where the monotone predicate `crossed(mv)` holds, or −400 mV if it never
/// does — bit-identical to a plain 1 mV scan, but the crossing is bracketed
/// with a [`SCAN_STRIDE_MV`] stride first so only the final bracket pays the
/// per-probe cost at 1 mV resolution.
fn scan_first_crossing(crossed: impl Fn(i32) -> bool) -> Millivolts {
    let mut below = 0; // deepest probe known NOT to have crossed
    let mut mv = 0;
    loop {
        if crossed(mv) {
            break;
        }
        if mv >= SCAN_LIMIT_MV {
            return Millivolts::new(-SCAN_LIMIT_MV);
        }
        below = mv;
        mv = (mv + SCAN_STRIDE_MV).min(SCAN_LIMIT_MV);
    }
    for fine in below + 1..mv {
        if crossed(fine) {
            return Millivolts::new(-fine);
        }
    }
    Millivolts::new(-mv)
}

/// Timing model of the adder / logic datapath.
///
/// A 64-bit carry-lookahead adder is roughly 2–3× shallower than the
/// multiplier's reduction tree, so within the undervolting window in which
/// the system still runs it never violates timing — the paper "tried
/// undervolting addition, subtraction, and bit-wise operations, but no
/// faults were observed".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AluTimingModel {
    multiplier: MultiplierTimingModel,
    depth_ratio: f64,
}

impl AluTimingModel {
    /// ALU model matched to [`MultiplierTimingModel::broadwell_2_2ghz`].
    pub fn broadwell_2_2ghz() -> AluTimingModel {
        AluTimingModel {
            multiplier: MultiplierTimingModel::broadwell_2_2ghz(),
            depth_ratio: 0.45,
        }
    }

    /// Fault probability of an add/sub/bit-wise operation at `vdd`.
    pub fn violation_probability(&self, vdd: Volts) -> f64 {
        let rel = self.multiplier.delay_model().relative_delay(vdd);
        if rel.is_infinite() {
            return 1.0;
        }
        let arrival = self.multiplier.utilization * self.depth_ratio * rel;
        normal_cdf((arrival - 1.0) / self.multiplier.jitter_sigma)
    }
}

impl Default for AluTimingModel {
    fn default() -> AluTimingModel {
        AluTimingModel::broadwell_2_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn volts_at(mv: i32) -> Volts {
        NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(mv))
    }

    #[test]
    fn fig1_profile_respects_immunities() {
        let p = BitErrorProfile::fig1();
        assert_eq!(p.weight(SIGN_BIT), 0.0, "sign bit never flips");
        for i in 0..IMMUNE_LSBS {
            assert_eq!(p.weight(i), 0.0, "LSB {i} never flips");
        }
        assert!(p.weight(p.peak_bit()) > 0.0);
    }

    #[test]
    fn fig1_profile_peaks_in_the_middle_bits() {
        let peak = BitErrorProfile::fig1().peak_bit();
        assert!((30..50).contains(&peak), "peak at bit {peak}");
    }

    #[test]
    fn profile_normalization_sums_to_one() {
        let total: f64 = BitErrorProfile::fig1().normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_rejects_sign_bit_weight() {
        let mut w = vec![0.0; OUTPUT_BITS];
        w[SIGN_BIT] = 1.0;
        assert!(BitErrorProfile::from_weights(w).is_err());
    }

    #[test]
    fn profile_rejects_lsb_weight() {
        let mut w = vec![0.0; OUTPUT_BITS];
        w[3] = 1.0;
        assert!(BitErrorProfile::from_weights(w).is_err());
    }

    #[test]
    fn profile_rejects_all_zero() {
        assert!(BitErrorProfile::from_weights(vec![0.0; OUTPUT_BITS]).is_err());
    }

    #[test]
    fn profile_rejects_wrong_length() {
        assert!(BitErrorProfile::from_weights(vec![1.0; 10]).is_err());
    }

    #[test]
    fn all_zero_profile_normalizes_without_nans() {
        // Unreachable through from_weights, but representable by a
        // deserialized value; normalisation must not divide by zero.
        let p = BitErrorProfile {
            weights: vec![0.0; OUTPUT_BITS],
        };
        let q = p.normalized();
        assert_eq!(q.len(), OUTPUT_BITS);
        assert!(q.iter().all(|&w| w == 0.0), "expected all zeros: {q:?}");
    }

    #[test]
    fn fig1_singleton_matches_fresh_construction() {
        assert_eq!(&BitErrorProfile::fig1(), BitErrorProfile::fig1_static());
        let fresh = BitErrorProfile::fig1().normalized();
        assert_eq!(BitErrorProfile::fig1_normalized(), fresh.as_slice());
    }

    #[test]
    fn bracketed_scans_match_exhaustive_1mv_scan() {
        // Regression for the coarse-then-fine rewrite: offsets must be
        // bit-identical to the original exhaustive 1 mV sweep.
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        let exhaustive = |crossed: &dyn Fn(i32) -> bool| -> i32 {
            (0..=400).find(|&mv| crossed(mv)).unwrap_or(400)
        };
        for factor in [m.min_operand_factor, 0.97, 0.98, 0.99, 1.0] {
            let expect =
                exhaustive(&|mv| m.violation_probability(volts_at(-mv), factor) >= OBSERVABLE_P);
            assert_eq!(
                m.first_fault_offset(factor).get(),
                -expect,
                "first-fault offset diverged at factor {factor}"
            );
        }
        let expect = exhaustive(&|mv| m.mean_error_rate(volts_at(-mv)) >= FREEZE_ERROR_RATE);
        assert_eq!(m.freeze_offset().get(), -expect, "freeze offset diverged");
    }

    #[test]
    fn first_faults_match_paper_window() {
        // Paper §II: "undervolting by −103 mV to −145 mV, depending on
        // inputs, was sufficient to generate faults".
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        let worst = m.first_fault_offset(1.0).get();
        let easiest = m.first_fault_offset(m.min_operand_factor).get();
        assert!(
            (-110..=-96).contains(&worst),
            "worst-case first fault at {worst} mV (paper: −103 mV)"
        );
        assert!(
            (-152..=-138).contains(&easiest),
            "least-critical first fault at {easiest} mV (paper: −145 mV)"
        );
    }

    #[test]
    fn no_faults_at_mild_undervolt() {
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        assert!(m.violation_probability(volts_at(-50), 1.0) < 1e-12);
    }

    #[test]
    fn fault_rate_grows_with_undervolt() {
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        let p120 = m.mean_error_rate(volts_at(-120));
        let p135 = m.mean_error_rate(volts_at(-135));
        assert!(p135 > p120, "{p135} vs {p120}");
    }

    #[test]
    fn fig1_operating_point_has_small_error_rate() {
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        let er = m.mean_error_rate(volts_at(-130));
        assert!(
            er > 1e-5 && er < 0.05,
            "error rate at −130 mV should be small but non-zero, got {er}"
        );
    }

    #[test]
    fn freeze_offset_is_below_first_fault_window() {
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        let freeze = m.freeze_offset().get();
        assert!(freeze < -130, "freeze at {freeze} mV");
        assert!(freeze > -170, "freeze at {freeze} mV");
    }

    #[test]
    fn operand_factor_bounds() {
        let m = MultiplierTimingModel::broadwell_2_2ghz();
        assert!((m.operand_factor(u64::MAX, u64::MAX) - 1.0).abs() < 1e-12);
        assert!((m.operand_factor(0, 0) - m.min_operand_factor).abs() < 1e-12);
    }

    #[test]
    fn alu_never_faults_in_the_live_window() {
        // Paper §II: add/sub/bit-wise ops never faulted before the system
        // froze.
        let alu = AluTimingModel::broadwell_2_2ghz();
        let freeze = MultiplierTimingModel::broadwell_2_2ghz().freeze_offset();
        for mv in 0..=(-freeze.get()) {
            let p = alu.violation_probability(volts_at(-mv));
            assert!(p < OBSERVABLE_P, "ALU faulted at −{mv} mV (p = {p})");
        }
    }

    proptest! {
        #[test]
        fn operand_factor_is_monotone_in_density(a in any::<u64>(), b in any::<u64>()) {
            let m = MultiplierTimingModel::broadwell_2_2ghz();
            let f = m.operand_factor(a, b);
            prop_assert!(f >= m.min_operand_factor && f <= 1.0);
            // Setting one more bit cannot reduce criticality.
            let denser = a | (1 << 17);
            prop_assert!(m.operand_factor(denser, b) >= f);
        }

        #[test]
        fn violation_probability_is_a_probability(mv in -300i32..0, factor in 0.9f64..1.0) {
            let m = MultiplierTimingModel::broadwell_2_2ghz();
            let p = m.violation_probability(volts_at(mv), factor);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

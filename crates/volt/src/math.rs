//! Small numeric helpers shared inside the crate.

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for z in [-3.0, -1.5, -0.2, 0.4, 2.7] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-6.0) < 1e-8);
    }
}

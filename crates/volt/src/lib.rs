//! Undervolting-induced timing-fault model for a CPU multiplier datapath.
//!
//! This crate reproduces §II of *Stochastic-HMDs* (DAC 2023): the
//! characterisation of computational faults induced by scaling the supply
//! voltage of an Intel Broadwell core below its nominal level. It provides:
//!
//! - [`voltage`] — voltage newtypes, the nominal operating point, and the
//!   MSR `0x150` offset encoding used to undervolt real Intel parts;
//! - [`delay`] — an alpha-power-law model of gate delay vs. supply voltage,
//!   including temperature dependence;
//! - [`multiplier`] — a per-output-bit timing model of a 64-bit multiplier
//!   (and of the much shallower adder/logic datapaths, which never fault);
//! - [`fault`] — the stochastic fault model and injector: per-bit flip
//!   probabilities, seeded sampling, and fault statistics;
//! - [`calibration`] — the per-device calibration flow mapping undervolt
//!   offsets to observed error rates (and back);
//! - [`entropy`] — the approximate-entropy test used by the paper to
//!   validate that fault locations are stochastic rather than deterministic;
//! - [`environment`] — a seeded thermal-trace model (ambient drift, load
//!   heating, sensor noise) plus the freeze/crash predicate, so drift and
//!   hang scenarios replay bit-identically;
//! - [`controller`] — the closed-loop undervolting controller that tracks
//!   temperature drift and enforces a guard band above the freeze offset.
//!
//! The paper's key empirical observations are all first-class invariants of
//! this model and are asserted by tests throughout the crate:
//!
//! 1. faults appear between roughly −103 mV and −145 mV depending on the
//!    operands;
//! 2. the sign bit of a product never flips;
//! 3. the 8 least-significant bits of a product never flip;
//! 4. fault locations vary non-deterministically run to run;
//! 5. additions, subtractions, and bit-wise operations never fault;
//! 6. the undervolting level controls the fault magnitude.
//!
//! # Example
//!
//! ```
//! use shmd_volt::fault::{FaultInjector, FaultModel};
//!
//! // An abstract error-rate knob, as used by the paper's space exploration:
//! let model = FaultModel::from_error_rate(0.1)?;
//! let mut injector = FaultInjector::new(model, 42);
//! let product: i64 = 12345 << 20;
//! let _maybe_faulty = injector.corrupt_product(product);
//! # Ok::<(), shmd_volt::fault::FaultModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod characterize;
pub mod controller;
pub mod delay;
pub mod entropy;
pub mod environment;
pub mod fault;
pub(crate) mod math;
pub mod multiplier;
pub mod voltage;

pub use calibration::{CalibrationCurve, CalibrationError, Calibrator, DeviceProfile};
pub use characterize::{
    sweep_all, sweep_instruction, InstructionKind, SweepConfig, SweepOutcome, SweepResult,
};
pub use controller::{AdaptiveVoltageController, ControllerAction, ControllerConfig};
pub use delay::DelayModel;
pub use environment::{delivered_error_rate_at, freezes_at, EnvironmentConfig, ThermalEnvironment};
pub use fault::{
    FaultInjector, FaultModel, FaultModelError, FaultStats, FaultStream, ProductCorruptor,
};
pub use multiplier::{AluTimingModel, BitErrorProfile, MultiplierTimingModel};
pub use voltage::{Millivolts, MsrVoltageCommand, VoltagePlane, Volts, NOMINAL_CORE_VOLTAGE};

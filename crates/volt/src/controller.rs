//! Closed-loop undervolting control (§IX "Calibration").
//!
//! "Undervolting-induced faults vary across devices ... the temperature
//! needs to be considered ... the voltage regulator that controls the
//! Stochastic-HMD needs to dynamically adjust the undervolting level based
//! on the current temperature to achieve the best accuracy/robustness
//! tradeoff."
//!
//! [`AdaptiveVoltageController`] implements that loop: it holds a target
//! error rate, re-derives the offset from a fresh calibration whenever the
//! die temperature drifts past a threshold, and enforces a guard band above
//! the freeze offset so an aggressive target can never hang the core.

use crate::calibration::{CalibrationCurve, CalibrationError, Calibrator, DeviceProfile};
use crate::voltage::{Millivolts, MsrVoltageCommand, VoltagePlane};
use serde::{Deserialize, Serialize};

/// Controller policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// The multiplication error rate the defense wants to hold.
    pub target_error_rate: f64,
    /// Re-calibrate when the temperature moves this far (°C) from the last
    /// calibration point.
    pub recalibration_threshold_c: f64,
    /// Never undervolt deeper than `freeze offset + guard_band_mv`.
    pub guard_band_mv: i32,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            target_error_rate: 0.1,
            recalibration_threshold_c: 5.0,
            guard_band_mv: 3,
        }
    }
}

/// What a temperature observation caused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerAction {
    /// Temperature within threshold; offset unchanged.
    Unchanged,
    /// Re-calibrated and moved the offset.
    Adjusted {
        /// Offset before the adjustment.
        from: Millivolts,
        /// Offset after the adjustment.
        to: Millivolts,
    },
    /// The target rate would require undervolting inside the guard band;
    /// the offset was clamped (the delivered error rate is lower than the
    /// target).
    Clamped {
        /// The clamped offset actually applied.
        at: Millivolts,
    },
    /// Re-calibration ran and the (1 mV-quantised) offset happens to be
    /// unchanged — but the *curve* is new, so the delivered error rate at
    /// that offset has moved. Consumers holding a fault model must rebuild
    /// it.
    Refreshed,
}

/// The dynamic state of an [`AdaptiveVoltageController`], for
/// checkpointing. The curve and offset are pure functions of the device,
/// policy, calibrator step, and the last calibration temperature, so the
/// snapshot only has to carry that temperature;
/// [`AdaptiveVoltageController::restore_state`] re-derives the rest
/// bit-identically. The offset is carried anyway so a restore path can
/// verify the re-derivation against what the checkpoint recorded.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// The temperature of the last calibration, °C.
    pub calibrated_at_c: f64,
    /// The offset the controller held at the snapshot.
    pub offset: Millivolts,
}

/// A temperature-tracking undervolting controller for one device.
#[derive(Clone, Debug)]
pub struct AdaptiveVoltageController {
    config: ControllerConfig,
    calibrator: Calibrator,
    device: DeviceProfile,
    curve: CalibrationCurve,
    offset: Millivolts,
    calibrated_at_c: f64,
}

impl AdaptiveVoltageController {
    /// Calibrates the device at its current temperature and locks onto the
    /// target error rate.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError`] when the target rate is invalid or
    /// unreachable even at the guard band.
    pub fn new(
        device: DeviceProfile,
        config: ControllerConfig,
    ) -> Result<AdaptiveVoltageController, CalibrationError> {
        Self::with_calibrator(device, config, Calibrator::new())
    }

    /// Like [`AdaptiveVoltageController::new`] but with an explicit
    /// calibrator (e.g. a coarser sweep step when the controller is driven
    /// frequently, as the serving supervisor does).
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError`] when the target rate is invalid or
    /// unreachable even at the guard band.
    pub fn with_calibrator(
        device: DeviceProfile,
        config: ControllerConfig,
        calibrator: Calibrator,
    ) -> Result<AdaptiveVoltageController, CalibrationError> {
        let curve = calibrator.calibrate(&device);
        let (offset, _) = Self::derive_offset(&curve, &config)?;
        let calibrated_at_c = device.temp_c;
        Ok(AdaptiveVoltageController {
            config,
            calibrator,
            device,
            curve,
            offset,
            calibrated_at_c,
        })
    }

    fn derive_offset(
        curve: &CalibrationCurve,
        config: &ControllerConfig,
    ) -> Result<(Millivolts, bool), CalibrationError> {
        Self::derive_offset_for(curve, config.target_error_rate, config.guard_band_mv)
    }

    fn derive_offset_for(
        curve: &CalibrationCurve,
        target_error_rate: f64,
        guard_band_mv: i32,
    ) -> Result<(Millivolts, bool), CalibrationError> {
        let floor = Millivolts::new(curve.freeze_offset().get() + guard_band_mv.abs());
        match curve.offset_for_error_rate(target_error_rate) {
            Ok(offset) if offset.get() >= floor.get() => Ok((offset, false)),
            Ok(_) => Ok((floor, true)),
            Err(CalibrationError::ErrorRateUnreachable { .. }) => Ok((floor, true)),
            Err(e) => Err(e),
        }
    }

    /// The offset the *current* calibration curve would assign to an
    /// arbitrary target error rate, under the same guard-band clamp the
    /// controller applies to its own target — the lookup a fleet-level
    /// power scheduler uses to retarget individual shards without touching
    /// the controller's configured setpoint. Returns the offset and whether
    /// the guard band clamped it.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::InvalidErrorRate`] when the target rate
    /// is outside `[0, 1]`; unreachable targets clamp to the guard-band
    /// floor instead of failing, exactly like the controller's own target.
    pub fn offset_for_target(
        &self,
        target_error_rate: f64,
    ) -> Result<(Millivolts, bool), CalibrationError> {
        Self::derive_offset_for(&self.curve, target_error_rate, self.config.guard_band_mv)
    }

    /// The offset currently applied.
    pub fn offset(&self) -> Millivolts {
        self.offset
    }

    /// The curve of the most recent calibration. Consumers that build a
    /// fault model for the controller's offset (e.g. a serving shard)
    /// read the delivered rate from here.
    pub fn curve(&self) -> &CalibrationCurve {
        &self.curve
    }

    /// The controller policy.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The error rate delivered at the current offset and temperature.
    pub fn delivered_error_rate(&self) -> f64 {
        self.curve.error_rate_at(self.offset)
    }

    /// The configured target error rate.
    pub fn target_error_rate(&self) -> f64 {
        self.config.target_error_rate
    }

    /// The temperature of the last calibration.
    pub fn calibrated_at_c(&self) -> f64 {
        self.calibrated_at_c
    }

    /// Feeds a die-temperature reading to the controller. Re-calibrates
    /// and re-derives the offset when the drift exceeds the threshold.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] from offset derivation (the guard
    /// band makes unreachable targets a clamp, not an error).
    pub fn observe_temperature(
        &mut self,
        temp_c: f64,
    ) -> Result<ControllerAction, CalibrationError> {
        if (temp_c - self.calibrated_at_c).abs() < self.config.recalibration_threshold_c {
            return Ok(ControllerAction::Unchanged);
        }
        self.force_recalibrate(temp_c)
    }

    /// Recalibrates unconditionally, bypassing the drift threshold — the
    /// entry point for a *watchdog-triggered* recalibration, where the
    /// evidence of drift comes from the observed fault stream rather than
    /// a temperature sensor (the supervisor trusts its own delivered-rate
    /// estimate over a sensor it may not even have inside the enclave).
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] from offset derivation (the guard
    /// band makes unreachable targets a clamp, not an error).
    pub fn force_recalibrate(&mut self, temp_c: f64) -> Result<ControllerAction, CalibrationError> {
        self.device.temp_c = temp_c;
        self.curve = self.calibrator.calibrate(&self.device);
        self.calibrated_at_c = temp_c;
        let from = self.offset;
        let (to, clamped) = Self::derive_offset(&self.curve, &self.config)?;
        self.offset = to;
        if clamped {
            Ok(ControllerAction::Clamped { at: to })
        } else if to == from {
            // Same offset, new curve: the delivered rate still moved.
            Ok(ControllerAction::Refreshed)
        } else {
            Ok(ControllerAction::Adjusted { from, to })
        }
    }

    /// Snapshots the controller's dynamic state for checkpointing.
    pub fn export_state(&self) -> ControllerState {
        ControllerState {
            calibrated_at_c: self.calibrated_at_c,
            offset: self.offset,
        }
    }

    /// Restores an [`AdaptiveVoltageController::export_state`] snapshot by
    /// recalibrating at the recorded temperature. Calibration and offset
    /// derivation are deterministic, so the restored curve and offset are
    /// bit-identical to the ones the snapshot was taken from (callers may
    /// double-check [`AdaptiveVoltageController::offset`] against
    /// [`ControllerState::offset`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] from offset derivation.
    pub fn restore_state(&mut self, state: &ControllerState) -> Result<(), CalibrationError> {
        self.force_recalibrate(state.calibrated_at_c)?;
        Ok(())
    }

    /// The MSR write that applies the current offset to the core plane.
    ///
    /// # Errors
    ///
    /// Never fails for calibrated offsets (they fit the 11-bit encoding);
    /// propagates the encoding error otherwise.
    pub fn msr_command(&self) -> Result<MsrVoltageCommand, crate::voltage::ParseMsrCommandError> {
        MsrVoltageCommand::new(VoltagePlane::CpuCore, self.offset)
    }

    /// The MSR write that restores nominal voltage (offset 0) — issued when
    /// leaving the detection context so undervolting never leaks into other
    /// workloads (§IX "Implication of undervolting on the rest of the
    /// system").
    ///
    /// # Errors
    ///
    /// Never fails (offset 0 always encodes); typed for API symmetry.
    pub fn restore_command(
        &self,
    ) -> Result<MsrVoltageCommand, crate::voltage::ParseMsrCommandError> {
        MsrVoltageCommand::new(VoltagePlane::CpuCore, Millivolts::new(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn controller() -> AdaptiveVoltageController {
        AdaptiveVoltageController::new(DeviceProfile::reference(), ControllerConfig::default())
            .expect("reference device reaches er = 0.1")
    }

    #[test]
    fn initial_offset_hits_the_target() {
        let c = controller();
        assert!(
            (c.delivered_error_rate() - 0.1).abs() < 0.1,
            "delivered {} at {}",
            c.delivered_error_rate(),
            c.offset()
        );
        assert!(c.offset().is_undervolt());
    }

    #[test]
    fn small_temperature_noise_is_ignored() {
        let mut c = controller();
        let before = c.offset();
        let action = c.observe_temperature(49.0 + 2.0).expect("ok");
        assert_eq!(action, ControllerAction::Unchanged);
        assert_eq!(c.offset(), before);
    }

    #[test]
    fn heating_deepens_the_offset() {
        let mut c = controller();
        let before = c.offset();
        let action = c.observe_temperature(80.0).expect("ok");
        match action {
            ControllerAction::Adjusted { from, to } => {
                assert_eq!(from, before);
                assert!(to.get() < from.get(), "hot die needs deeper offset");
            }
            other => panic!("expected adjustment, got {other:?}"),
        }
    }

    #[test]
    fn cooling_then_heating_round_trips() {
        let mut c = controller();
        let initial = c.offset();
        c.observe_temperature(80.0).expect("heat");
        c.observe_temperature(49.0).expect("cool");
        assert_eq!(
            c.offset(),
            initial,
            "returning to the calibration temp restores the offset"
        );
    }

    #[test]
    fn same_offset_after_recalibration_reports_refreshed() {
        // Regression: a recalibration that lands on the same 1 mV offset
        // still changes the curve (and thus the delivered rate); consumers
        // must be told to rebuild their fault model.
        let mut c = controller();
        // Find a small drift past the threshold that keeps the offset.
        let mut refreshed_seen = false;
        for temp in [52.0, 55.0, 57.0, 60.0] {
            if let ControllerAction::Refreshed = c.observe_temperature(temp).expect("ok") {
                refreshed_seen = true;
            }
        }
        // Not every device/temperature grid produces one, but the enum
        // variant must at least never be conflated with Unchanged after a
        // threshold-crossing observation.
        let action = c
            .observe_temperature(c.calibrated_at_c() + 10.0)
            .expect("ok");
        assert!(!matches!(action, ControllerAction::Unchanged));
        let _ = refreshed_seen;
    }

    #[test]
    fn guard_band_clamps_aggressive_targets() {
        let config = ControllerConfig {
            target_error_rate: 0.49,
            ..ControllerConfig::default()
        };
        // er 0.49 sits within a couple of mV of freeze; a wide guard band
        // must clamp it.
        let config = ControllerConfig {
            guard_band_mv: 10,
            ..config
        };
        let c =
            AdaptiveVoltageController::new(DeviceProfile::reference(), config).expect("constructs");
        let freeze = {
            let curve = Calibrator::new().calibrate(&DeviceProfile::reference());
            curve.freeze_offset().get()
        };
        assert!(c.offset().get() >= freeze + 10);
        assert!(c.delivered_error_rate() < 0.49);
    }

    #[test]
    fn invalid_target_is_an_error() {
        let config = ControllerConfig {
            target_error_rate: 1.5,
            ..ControllerConfig::default()
        };
        assert!(matches!(
            AdaptiveVoltageController::new(DeviceProfile::reference(), config),
            Err(CalibrationError::InvalidErrorRate(_))
        ));
    }

    #[test]
    fn commands_encode_and_restore() {
        let c = controller();
        let apply = c.msr_command().expect("encodes");
        assert_eq!(apply.plane(), VoltagePlane::CpuCore);
        assert!(apply.offset().is_undervolt());
        let restore = c.restore_command().expect("encodes");
        assert_eq!(restore.offset(), Millivolts::new(0));
    }

    proptest! {
        #[test]
        fn excursion_round_trips_the_offset(delta in -19.0f64..40.0) {
            // Drift-cycle property: an excursion past the recalibration
            // threshold and back must return the offset to within 1 mV of
            // its pre-excursion value — the control loop has no hidden
            // state that accumulates across a thermal cycle.
            let mut c = AdaptiveVoltageController::with_calibrator(
                DeviceProfile::reference(),
                ControllerConfig::default(),
                Calibrator::new().with_step(2),
            )
            .expect("constructs");
            prop_assume!(delta.abs() >= c.config().recalibration_threshold_c);
            let initial = c.offset();
            let base = c.calibrated_at_c();
            c.observe_temperature(base + delta).expect("excursion");
            c.observe_temperature(base).expect("return");
            prop_assert!(
                (c.offset().get() - initial.get()).abs() <= 1,
                "offset {} -> {} after a {}°C excursion",
                initial, c.offset(), delta
            );
        }

        #[test]
        fn guard_band_is_never_violated(
            temps in proptest::collection::vec(30.0f64..100.0, 1..8),
            guard in 1i32..10,
        ) {
            // Safety property: across any observation sequence, the applied
            // offset never undercuts freeze + guard band — an aggressive
            // target clamps, it never hangs the core.
            let config = ControllerConfig {
                target_error_rate: 0.35,
                guard_band_mv: guard,
                ..ControllerConfig::default()
            };
            let mut c = AdaptiveVoltageController::with_calibrator(
                DeviceProfile::reference(),
                config,
                Calibrator::new().with_step(2),
            )
            .expect("constructs");
            let floor = c.curve().freeze_offset().get() + guard;
            prop_assert!(c.offset().get() >= floor);
            for t in temps {
                c.observe_temperature(t).expect("observation");
                let floor = c.curve().freeze_offset().get() + guard;
                prop_assert!(
                    c.offset().get() >= floor,
                    "offset {} violates guard floor {} mV at {}°C",
                    c.offset(), floor, t
                );
            }
        }
    }

    #[test]
    fn offset_for_target_reuses_the_live_curve_and_guard_band() {
        let c = controller();
        // The controller's own target round-trips through the lookup.
        let (own, clamped) = c.offset_for_target(c.target_error_rate()).expect("ok");
        assert_eq!(own, c.offset());
        assert!(!clamped);
        // A deeper target maps to a deeper (more negative) offset…
        let (deeper, _) = c.offset_for_target(0.3).expect("ok");
        assert!(deeper.get() < own.get());
        // …an aggressive one clamps at the guard-band floor instead of
        // erroring…
        let (floor, clamped) = c.offset_for_target(0.499).expect("ok");
        assert!(clamped);
        assert_eq!(
            floor.get(),
            c.curve().freeze_offset().get() + c.config().guard_band_mv
        );
        // …and an invalid one is a typed error.
        assert!(matches!(
            c.offset_for_target(1.5),
            Err(CalibrationError::InvalidErrorRate(_))
        ));
    }

    #[test]
    fn force_recalibration_bypasses_the_drift_threshold() {
        let mut c = controller();
        let small_drift = c.calibrated_at_c() + 1.0;
        assert_eq!(
            c.observe_temperature(small_drift).expect("ok"),
            ControllerAction::Unchanged,
            "1°C is under the threshold"
        );
        let action = c.force_recalibrate(small_drift).expect("ok");
        assert!(
            !matches!(action, ControllerAction::Unchanged),
            "forced recalibration must rebuild the curve: {action:?}"
        );
        assert_eq!(c.calibrated_at_c(), small_drift);
    }

    #[test]
    fn exported_state_restores_the_curve_bit_identically() {
        let mut original = controller();
        original.observe_temperature(80.0).expect("heat");
        original.observe_temperature(63.0).expect("cool");
        let state = original.export_state();
        let mut restored = controller();
        restored.restore_state(&state).expect("restores");
        assert_eq!(restored.offset(), state.offset, "re-derivation must agree");
        assert_eq!(restored.calibrated_at_c(), original.calibrated_at_c());
        assert_eq!(
            restored.delivered_error_rate().to_bits(),
            original.delivered_error_rate().to_bits(),
            "the rebuilt curve must match exactly"
        );
    }

    #[test]
    fn stale_offset_would_miss_the_target() {
        // What the controller prevents: holding the cold offset on a hot
        // die delivers a drifted error rate.
        let mut c = controller();
        let cold_offset = c.offset();
        c.observe_temperature(80.0).expect("heat");
        let drifted = {
            let mut hot = DeviceProfile::reference();
            hot.temp_c = 80.0;
            Calibrator::new().calibrate(&hot).error_rate_at(cold_offset)
        };
        assert!(
            (drifted - 0.1).abs() > 0.02,
            "stale offset should drift: {drifted}"
        );
        assert!(
            (c.delivered_error_rate() - 0.1).abs() < 0.05,
            "controller holds the target: {}",
            c.delivered_error_rate()
        );
    }
}

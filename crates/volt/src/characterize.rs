//! The §II characterisation experiment as a reusable API.
//!
//! The paper's methodology: "we applied undervolting by reducing the
//! voltage in small steps of 1 mV while repeatedly executing the same
//! instruction with the same operands until a fault or system freeze
//! occurred", for multiplications and then for additions, subtractions,
//! and bit-wise operations (which never faulted).

use crate::fault::{FaultInjector, FaultModel, FaultStats};
use crate::multiplier::{AluTimingModel, MultiplierTimingModel, FREEZE_ERROR_RATE};
use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The instruction classes the paper characterised.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionKind {
    /// 64-bit integer multiplication (the only faulting class).
    Multiply,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Subtract,
    /// Bit-wise AND/OR/XOR.
    Bitwise,
}

impl InstructionKind {
    /// All characterised instruction classes.
    pub const ALL: [InstructionKind; 4] = [
        InstructionKind::Multiply,
        InstructionKind::Add,
        InstructionKind::Subtract,
        InstructionKind::Bitwise,
    ];
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstructionKind::Multiply => "mul",
            InstructionKind::Add => "add",
            InstructionKind::Subtract => "sub",
            InstructionKind::Bitwise => "bitwise",
        })
    }
}

/// How a per-instruction undervolting sweep ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepOutcome {
    /// A computational fault was first observed at this offset.
    FaultAt(Millivolts),
    /// The system froze (at the given offset) without the instruction ever
    /// faulting.
    FrozeAt(Millivolts),
}

/// One instruction class's sweep result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The instruction class swept.
    pub kind: InstructionKind,
    /// How the sweep ended.
    pub outcome: SweepOutcome,
    /// Fault statistics accumulated during the sweep (multiplies only).
    pub stats: FaultStats,
}

/// Configuration of a characterisation sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Repetitions of the instruction at each voltage step.
    pub reps_per_step: u32,
    /// Sweep step in mV (the paper uses 1).
    pub step_mv: i32,
    /// RNG seed for operands and fault draws.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            reps_per_step: 10_000,
            step_mv: 1,
            seed: 0,
        }
    }
}

/// Runs the paper's per-instruction sweep on the timing model.
///
/// Multiplications fault somewhere in the −103…−145 mV window; adds,
/// subtracts, and bit-wise operations ride all the way to the freeze
/// offset untouched.
///
/// # Panics
///
/// Panics if `config.step_mv` is not positive (the sweep would never
/// terminate).
pub fn sweep_instruction(kind: InstructionKind, config: &SweepConfig) -> SweepResult {
    assert!(config.step_mv > 0, "sweep step must be positive");
    let timing = MultiplierTimingModel::broadwell_2_2ghz();
    let alu = AluTimingModel::broadwell_2_2ghz();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc4a2);
    let a: u64 = rng.gen();
    let b: u64 = rng.gen();
    let mut stats = FaultStats {
        bit_flips: vec![0; 64],
        ..FaultStats::default()
    };

    let mut mv = 0i32;
    loop {
        let offset = Millivolts::new(mv);
        let vdd = NOMINAL_CORE_VOLTAGE.with_offset(offset);
        // System freeze is governed by the deepest datapath (the
        // multiplier): once its mean error rate crosses the freeze
        // threshold the machine hangs regardless of what we are sweeping.
        if timing.mean_error_rate(vdd) >= FREEZE_ERROR_RATE {
            return SweepResult {
                kind,
                outcome: SweepOutcome::FrozeAt(offset),
                stats,
            };
        }
        match kind {
            InstructionKind::Multiply => {
                let model = FaultModel::at_voltage_for_operands(&timing, vdd, a, b)
                    .expect("valid probabilities");
                let mut injector = FaultInjector::new(model, rng.gen());
                let product = a.wrapping_mul(b);
                let mut faulted = false;
                for _ in 0..config.reps_per_step {
                    if injector.corrupt_unsigned(product) != product {
                        faulted = true;
                    }
                }
                stats.merge(&injector.stats());
                if faulted {
                    return SweepResult {
                        kind,
                        outcome: SweepOutcome::FaultAt(offset),
                        stats,
                    };
                }
            }
            InstructionKind::Add | InstructionKind::Subtract | InstructionKind::Bitwise => {
                // The shallow ALU path: sample its violation probability
                // directly.
                let p = alu.violation_probability(vdd);
                let mut faulted = false;
                for _ in 0..config.reps_per_step {
                    if rng.gen::<f64>() < p {
                        faulted = true;
                    }
                }
                if faulted {
                    return SweepResult {
                        kind,
                        outcome: SweepOutcome::FaultAt(offset),
                        stats,
                    };
                }
            }
        }
        mv -= config.step_mv;
    }
}

/// Sweeps every instruction class.
pub fn sweep_all(config: &SweepConfig) -> Vec<SweepResult> {
    InstructionKind::ALL
        .iter()
        .map(|&kind| sweep_instruction(kind, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(seed: u64) -> SweepConfig {
        SweepConfig {
            reps_per_step: 2_000,
            step_mv: 1,
            seed,
        }
    }

    #[test]
    fn multiplication_faults_in_the_paper_window() {
        let result = sweep_instruction(InstructionKind::Multiply, &fast_config(1));
        match result.outcome {
            SweepOutcome::FaultAt(offset) => {
                assert!(
                    (-150..=-95).contains(&offset.get()),
                    "mul faulted at {offset} (paper: −103…−145 mV)"
                );
            }
            SweepOutcome::FrozeAt(offset) => {
                panic!("multiplication should fault before freezing (froze at {offset})")
            }
        }
        assert!(result.stats.faulty > 0);
    }

    #[test]
    fn alu_instructions_never_fault() {
        // Paper §II: "we tried undervolting addition, subtraction, and
        // bit-wise operations, but no faults were observed."
        for kind in [
            InstructionKind::Add,
            InstructionKind::Subtract,
            InstructionKind::Bitwise,
        ] {
            let result = sweep_instruction(kind, &fast_config(2));
            assert!(
                matches!(result.outcome, SweepOutcome::FrozeAt(_)),
                "{kind} faulted before freeze: {:?}",
                result.outcome
            );
        }
    }

    #[test]
    fn operand_dependence_shifts_the_first_fault() {
        // Different operand sets fault at different offsets ("depending on
        // inputs").
        let offsets: std::collections::HashSet<i32> = (0..8)
            .filter_map(|seed| {
                match sweep_instruction(InstructionKind::Multiply, &fast_config(seed)).outcome {
                    SweepOutcome::FaultAt(o) => Some(o.get()),
                    SweepOutcome::FrozeAt(_) => None,
                }
            })
            .collect();
        assert!(
            offsets.len() > 1,
            "operand variation should spread first-fault offsets: {offsets:?}"
        );
    }

    #[test]
    fn sweep_all_covers_every_kind() {
        let results = sweep_all(&fast_config(3));
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].kind, InstructionKind::Multiply);
    }

    #[test]
    #[should_panic(expected = "sweep step must be positive")]
    fn zero_step_panics_instead_of_hanging() {
        let cfg = SweepConfig {
            step_mv: 0,
            ..fast_config(1)
        };
        let _ = sweep_instruction(InstructionKind::Add, &cfg);
    }

    #[test]
    fn display_names() {
        assert_eq!(InstructionKind::Multiply.to_string(), "mul");
        assert_eq!(InstructionKind::Bitwise.to_string(), "bitwise");
    }
}

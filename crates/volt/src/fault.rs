//! The stochastic fault model and injector.
//!
//! This is the Rust counterpart of the paper's "stochastic fault injection
//! tool that emulates timing violations at the output of arithmetic
//! operations, based on the error distribution model detailed in §II".
//!
//! A [`FaultModel`] holds per-bit flip probabilities for the 64-bit product,
//! constructed either from the abstract error-rate knob `er` (the quantity
//! swept by the paper's space exploration, Figs. 2 & 8) or from a physical
//! supply voltage through [`MultiplierTimingModel`]. A [`FaultInjector`]
//! samples from the model with a seeded RNG and keeps [`FaultStats`] that
//! regenerate Figure 1.

use crate::multiplier::{BitErrorProfile, MultiplierTimingModel, OUTPUT_BITS};
use crate::voltage::Volts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default fraction of faults that land in the carry-ripple zone *above*
/// the product's most-significant bit.
///
/// The multiplier's final carry-propagate adder spans the full 64 bits; when
/// the intermediate sum contains a long run of ones, its carry chain ripples
/// far past the product MSB, so a timing violation occasionally corrupts a
/// bit of much higher significance than the product itself. These rare
/// catastrophic faults are what visibly moves the detector's decision
/// boundary; the frequent in-width faults only dither it.
pub const DEFAULT_RIPPLE_FRACTION: f64 = 0.03;

/// Default number of bits above the product MSB a carry-ripple fault can
/// reach.
pub const DEFAULT_RIPPLE_SPAN: u32 = 14;

/// Error rate used internally when `1.0` is requested.
///
/// A literal rate of 1 would make every weighted bit flip *deterministically*
/// (probability 1), destroying the stochasticity the defense relies on; the
/// physical system never reaches that regime either (it freezes first).
const MAX_EFFECTIVE_RATE: f64 = 0.9999;

/// Error building a [`FaultModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultModelError {
    /// The requested error rate is outside `[0, 1]` or not finite.
    InvalidErrorRate(f64),
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::InvalidErrorRate(er) => {
                write!(f, "error rate {er} is outside the valid range [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// Per-bit flip probabilities for a 64-bit multiplier product.
///
/// The model guarantees `P(at least one bit flips) == error_rate` exactly:
/// each weighted bit flips independently with probability
/// `pᵢ = 1 − (1 − er)^{qᵢ}` where `qᵢ` are the normalised location weights,
/// so `∏(1 − pᵢ) = (1 − er)^{Σqᵢ} = 1 − er`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    error_rate: f64,
    /// `(bit index, flip probability)` for bits with non-zero weight.
    flips: Vec<(u8, f64)>,
    /// CDF over which weighted bit is the *first* to flip, conditioned on at
    /// least one flip (enables O(1) fast-path sampling).
    first_flip_cdf: Vec<f64>,
    /// Fraction of flips diverted to the carry-ripple zone.
    ripple_fraction: f64,
    /// Reach of the carry-ripple zone above the product MSB, in bits.
    ripple_span: u32,
    /// Products whose active width is at most this many bits never fault.
    near_zero_width: u32,
}

impl FaultModel {
    /// A fault-free model (nominal voltage).
    pub fn exact() -> FaultModel {
        FaultModel {
            error_rate: 0.0,
            flips: Vec::new(),
            first_flip_cdf: Vec::new(),
            ripple_fraction: DEFAULT_RIPPLE_FRACTION,
            ripple_span: DEFAULT_RIPPLE_SPAN,
            near_zero_width: crate::multiplier::IMMUNE_LSBS as u32,
        }
    }

    /// Builds a model with the given probability that a multiplication
    /// result is faulty, using the Figure-1 fault-location distribution.
    ///
    /// This is the knob the paper's space exploration sweeps (`er` in
    /// Figs. 2 and 8); `er = 0.1` is the paper's selected operating point.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is not in
    /// `[0, 1]`.
    pub fn from_error_rate(er: f64) -> Result<FaultModel, FaultModelError> {
        FaultModel::from_error_rate_with_profile(er, &BitErrorProfile::fig1())
    }

    /// Like [`FaultModel::from_error_rate`] but with a custom fault-location
    /// profile (e.g. one measured on a different device).
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is not in
    /// `[0, 1]`.
    pub fn from_error_rate_with_profile(
        er: f64,
        profile: &BitErrorProfile,
    ) -> Result<FaultModel, FaultModelError> {
        if !er.is_finite() || !(0.0..=1.0).contains(&er) {
            return Err(FaultModelError::InvalidErrorRate(er));
        }
        if er == 0.0 {
            return Ok(FaultModel::exact());
        }
        let er_eff = er.min(MAX_EFFECTIVE_RATE);
        let q = profile.normalized();
        let mut flips = Vec::new();
        for (bit, &qi) in q.iter().enumerate() {
            if qi > 0.0 {
                let p = 1.0 - (1.0 - er_eff).powf(qi);
                flips.push((bit as u8, p));
            }
        }
        // P(first flip is flips[k] | >=1 flip) = p_k * prod_{j<k}(1-p_j) / er
        let mut cdf = Vec::with_capacity(flips.len());
        let mut none_so_far = 1.0;
        let mut cum = 0.0;
        for &(_, p) in &flips {
            cum += p * none_so_far / er_eff;
            none_so_far *= 1.0 - p;
            cdf.push(cum);
        }
        // Guard against rounding: force the last entry to 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(FaultModel {
            error_rate: er_eff,
            flips,
            first_flip_cdf: cdf,
            ripple_fraction: DEFAULT_RIPPLE_FRACTION,
            ripple_span: DEFAULT_RIPPLE_SPAN,
            near_zero_width: crate::multiplier::IMMUNE_LSBS as u32,
        })
    }

    /// Overrides the carry-ripple parameters (the catastrophic-fault tail).
    ///
    /// Exposed for ablation studies; the defaults are calibrated to the
    /// paper's behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn with_ripple(mut self, fraction: f64, span: u32) -> FaultModel {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "ripple fraction must be a probability"
        );
        self.ripple_fraction = fraction;
        self.ripple_span = span;
        self
    }

    /// The fraction of flips diverted to the carry-ripple zone.
    pub fn ripple_fraction(&self) -> f64 {
        self.ripple_fraction
    }

    /// Overrides the near-zero immunity width: products whose active width
    /// is at most `bits` never fault.
    ///
    /// The default, [`crate::multiplier::IMMUNE_LSBS`], models the raw
    /// 64-bit integer multiplier view used by the §II characterisation. A
    /// fixed-point datapath should raise it so that immunity is judged on
    /// the bits of the *latched* result: for Q16.16 (whose raw Q32.32
    /// products sit 16 fractional bits below the latch), the paper's 8
    /// immune result LSBs correspond to a raw active width of `8 + 16`.
    /// This is how the paper's stated limitation — "models that operate on
    /// numbers that are very close to zero are not protected" — manifests
    /// end-to-end: products below ~2⁻⁸ of unit scale exercise only carry
    /// chains far too short to violate timing.
    #[must_use]
    pub fn with_near_zero_width(mut self, bits: u32) -> FaultModel {
        self.near_zero_width = bits;
        self
    }

    /// The active width (in raw product bits) at or below which a product
    /// is considered near-zero and never faults.
    pub fn near_zero_width(&self) -> u32 {
        self.near_zero_width
    }

    /// Builds a model for a physical supply voltage using the timing model's
    /// mean error rate over random operands.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModelError::InvalidErrorRate`] (cannot occur for a
    /// well-formed timing model, whose rates are probabilities).
    pub fn at_voltage(
        timing: &MultiplierTimingModel,
        vdd: Volts,
    ) -> Result<FaultModel, FaultModelError> {
        FaultModel::from_error_rate_with_profile(timing.mean_error_rate(vdd), timing.profile())
    }

    /// Builds a model for a specific operand pair at a physical voltage
    /// (used by the §II characterisation experiments, which repeatedly
    /// multiply the *same* operands).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModelError::InvalidErrorRate`] (cannot occur for a
    /// well-formed timing model).
    pub fn at_voltage_for_operands(
        timing: &MultiplierTimingModel,
        vdd: Volts,
        a: u64,
        b: u64,
    ) -> Result<FaultModel, FaultModelError> {
        let factor = timing.operand_factor(a, b);
        let er = timing.violation_probability(vdd, factor);
        FaultModel::from_error_rate_with_profile(er, timing.profile())
    }

    /// The probability that a multiplication result is faulty.
    #[inline]
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// The flip probability of each of the 64 product bits.
    pub fn per_bit_probabilities(&self) -> [f64; OUTPUT_BITS] {
        let mut out = [0.0; OUTPUT_BITS];
        for &(bit, p) in &self.flips {
            out[bit as usize] = p;
        }
        out
    }

    /// `true` if the model never injects faults.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.error_rate == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> FaultModel {
        FaultModel::exact()
    }
}

/// Statistics accumulated by a [`FaultInjector`], sufficient to regenerate
/// the paper's Figure 1.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total multiplications processed.
    pub multiplies: u64,
    /// Multiplications whose result was corrupted.
    pub faulty: u64,
    /// Per-bit flip counts.
    pub bit_flips: Vec<u64>,
}

impl FaultStats {
    fn new() -> FaultStats {
        FaultStats {
            multiplies: 0,
            faulty: 0,
            bit_flips: vec![0; OUTPUT_BITS],
        }
    }

    /// Observed fraction of faulty multiplications.
    pub fn observed_error_rate(&self) -> f64 {
        if self.multiplies == 0 {
            0.0
        } else {
            self.faulty as f64 / self.multiplies as f64
        }
    }

    /// Per-bit error rates (flips per multiplication), the quantity plotted
    /// in Figure 1.
    pub fn bitwise_error_rates(&self) -> Vec<f64> {
        let n = self.multiplies.max(1) as f64;
        self.bit_flips.iter().map(|&c| c as f64 / n).collect()
    }

    /// Merges counts from another statistics record.
    pub fn merge(&mut self, other: &FaultStats) {
        self.multiplies += other.multiplies;
        self.faulty += other.faulty;
        if self.bit_flips.len() < other.bit_flips.len() {
            self.bit_flips.resize(other.bit_flips.len(), 0);
        }
        for (a, b) in self.bit_flips.iter_mut().zip(&other.bit_flips) {
            *a += b;
        }
    }
}

/// Anything that can transform a raw 64-bit product — the integration point
/// between the fault model and the fixed-point inference datapath.
pub trait ProductCorruptor {
    /// Transforms the exact product into the (possibly faulty) product the
    /// datapath latches.
    fn corrupt(&mut self, product: i64) -> i64;
}

/// The identity datapath: never faults (nominal voltage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactDatapath;

impl ProductCorruptor for ExactDatapath {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        product
    }
}

/// A seeded stochastic fault injector.
///
/// # Example
///
/// ```
/// use shmd_volt::fault::{FaultInjector, FaultModel, ProductCorruptor};
///
/// let mut injector = FaultInjector::new(FaultModel::from_error_rate(0.5)?, 7);
/// let mut corrupted = 0;
/// for _ in 0..1000 {
///     if injector.corrupt(1 << 40) != 1 << 40 {
///         corrupted += 1;
///     }
/// }
/// assert!(corrupted > 400 && corrupted < 600);
/// # Ok::<(), shmd_volt::fault::FaultModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    model: FaultModel,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(model: FaultModel, seed: u64) -> FaultInjector {
        FaultInjector {
            model,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::new(),
        }
    }

    /// The fault model in use.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Replaces the fault model (e.g. when re-calibrating for temperature).
    pub fn set_model(&mut self, model: FaultModel) {
        self.model = model;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::new();
    }

    /// Corrupts a raw 64-bit product, updating statistics.
    ///
    /// With probability `1 − error_rate` the product is returned unchanged
    /// (a single RNG draw — the hot path). Otherwise the first flipped bit
    /// is drawn from the conditional first-flip distribution and later bits
    /// flip independently, which reproduces exact independent per-bit
    /// Bernoulli sampling.
    ///
    /// Fault *locations* are activity-scaled: a timing violation can only
    /// corrupt a column whose partial products actually switch, so the
    /// sampled bit position (calibrated on full-width random operands, §II)
    /// is compressed into the product's active bit-width. Consequences
    /// faithfully mirror the paper: most faults are small *relative* errors,
    /// occasionally one lands near the product's MSB, and values very close
    /// to zero are not perturbed at all (the paper's stated limitation:
    /// "models that operate on numbers that are very close to zero are not
    /// protected").
    pub fn corrupt_product(&mut self, product: i64) -> i64 {
        self.stats.multiplies += 1;
        if self.model.is_exact() {
            return product;
        }
        let u: f64 = self.rng.gen();
        if u >= self.model.error_rate || self.model.flips.is_empty() {
            // The empty-flips case cannot arise from the constructors but
            // can from a hand-crafted deserialized model; treat it as exact
            // rather than underflowing below.
            return product;
        }
        // Active width: highest switching column, plus one for carry-out.
        // Never the sign bit (structurally an XOR off the critical path).
        let width = 64 - product.unsigned_abs().leading_zeros();
        if width <= self.model.near_zero_width {
            // Near-zero product: no carry chains long enough to violate.
            return product;
        }
        let top = (width + 1).min(OUTPUT_BITS as u32 - 2);
        let ripple_top = (width + self.model.ripple_span).min(OUTPUT_BITS as u32 - 2);
        let ripple_fraction = self.model.ripple_fraction;
        let place = |rng: &mut StdRng, bit: u8| -> u64 {
            if ripple_top > top && rng.gen::<f64>() < ripple_fraction {
                // Carry-propagate-adder ripple past the product MSB.
                u64::from(rng.gen_range(top + 1..=ripple_top))
            } else {
                let pos = (u32::from(bit) * top) / (OUTPUT_BITS as u32 - 2);
                u64::from(pos.clamp(crate::multiplier::IMMUNE_LSBS as u32 + 1, top))
            }
        };
        let mut mask = 0u64;
        // First flipped bit, conditioned on at least one flip.
        let v: f64 = self.rng.gen();
        let k = self
            .model
            .first_flip_cdf
            .partition_point(|&c| c < v)
            .min(self.model.flips.len() - 1);
        let (first_bit, _) = self.model.flips[k];
        mask ^= 1u64 << place(&mut self.rng, first_bit);
        // Remaining bits flip independently.
        let rest = k + 1..self.model.flips.len();
        for idx in rest {
            let (bit, p) = self.model.flips[idx];
            if self.rng.gen::<f64>() < p {
                mask ^= 1u64 << place(&mut self.rng, bit);
            }
        }
        if mask == 0 {
            // Scaled positions collided pairwise and cancelled.
            return product;
        }
        self.stats.faulty += 1;
        let mut remaining = mask;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            self.stats.bit_flips[bit] += 1;
            remaining &= remaining - 1;
        }
        product ^ (mask as i64)
    }

    /// Corrupts an unsigned product (convenience for characterisation code).
    pub fn corrupt_unsigned(&mut self, product: u64) -> u64 {
        self.corrupt_product(product as i64) as u64
    }
}

impl ProductCorruptor for FaultInjector {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.corrupt_product(product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::{IMMUNE_LSBS, SIGN_BIT};
    use proptest::prelude::*;

    #[test]
    fn exact_model_is_identity() {
        let mut inj = FaultInjector::new(FaultModel::exact(), 1);
        for p in [0i64, -1, i64::MAX, i64::MIN, 12345] {
            assert_eq!(inj.corrupt_product(p), p);
        }
        assert_eq!(inj.stats().faulty, 0);
        assert_eq!(inj.stats().multiplies, 5);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(FaultModel::from_error_rate(-0.1).is_err());
        assert!(FaultModel::from_error_rate(1.5).is_err());
        assert!(FaultModel::from_error_rate(f64::NAN).is_err());
    }

    #[test]
    fn rate_one_is_clamped_but_always_faulty() {
        let m = FaultModel::from_error_rate(1.0).expect("valid");
        assert!((m.error_rate() - MAX_EFFECTIVE_RATE).abs() < 1e-12);
        let mut inj = FaultInjector::new(m, 3);
        // Full-width product: fault positions map one-to-one.
        let product = 3i64 << 60;
        let mut faulty = 0;
        for _ in 0..2000 {
            if inj.corrupt_product(product) != product {
                faulty += 1;
            }
        }
        assert!(faulty >= 1990, "expected ~all faulty, got {faulty}/2000");
    }

    #[test]
    fn observed_rate_matches_requested_rate() {
        for &er in &[0.01, 0.1, 0.5, 0.9] {
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(er).expect("valid"), 99);
            for _ in 0..20_000 {
                // Full-width product: observed rate matches the knob exactly.
                inj.corrupt_product(0x7123_4567_89ab_cdef);
            }
            let observed = inj.stats().observed_error_rate();
            assert!(
                (observed - er).abs() < 0.02,
                "er = {er}, observed = {observed}"
            );
        }
    }

    #[test]
    fn sign_bit_never_flips() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).expect("valid"), 5);
        for i in 0..20_000i64 {
            let p = i * 31_415_926;
            let c = inj.corrupt_product(p);
            assert_eq!(c < 0, p < 0, "sign changed: {p:#x} -> {c:#x}");
        }
        assert_eq!(inj.stats().bit_flips[SIGN_BIT], 0);
    }

    #[test]
    fn immune_lsbs_never_flip() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).expect("valid"), 6);
        for i in 0..20_000i64 {
            let p = i * 2_718_281;
            let c = inj.corrupt_product(p);
            assert_eq!((c ^ p) & 0xff, 0, "an immune LSB flipped: {p:#x} -> {c:#x}");
        }
        for bit in 0..IMMUNE_LSBS {
            assert_eq!(inj.stats().bit_flips[bit], 0);
        }
    }

    #[test]
    fn fault_locations_are_stochastic() {
        // The same operands must not always fault in the same place —
        // the paper's core §II observation.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 8);
        let product = 0x00ff_00ff_00ff_00ffi64;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            distinct.insert(inj.corrupt_product(product));
        }
        assert!(
            distinct.len() > 20,
            "only {} distinct faulty outputs",
            distinct.len()
        );
    }

    #[test]
    fn same_seed_reproduces_fault_sequence() {
        let model = FaultModel::from_error_rate(0.3).expect("valid");
        let mut a = FaultInjector::new(model.clone(), 42);
        let mut b = FaultInjector::new(model, 42);
        for i in 0..5000 {
            assert_eq!(a.corrupt_product(i * 7919), b.corrupt_product(i * 7919));
        }
    }

    #[test]
    fn bitwise_rates_follow_fig1_shape() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.5).expect("valid"), 11);
        for _ in 0..100_000 {
            inj.corrupt_product(0x0f0f_0f0f_0f0f_0f0f);
        }
        let rates = inj.stats().bitwise_error_rates();
        let peak = BitErrorProfile::fig1().peak_bit();
        assert!(rates[peak] > rates[15], "peak bit should dominate low bits");
        assert!(rates[peak] > rates[60], "peak bit should dominate top bits");
        assert_eq!(rates[SIGN_BIT], 0.0);
    }

    #[test]
    fn at_voltage_uses_timing_model() {
        use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
        let timing = MultiplierTimingModel::broadwell_2_2ghz();
        let nominal = FaultModel::at_voltage(&timing, NOMINAL_CORE_VOLTAGE).expect("valid");
        assert!(nominal.error_rate() < 1e-9, "no faults at nominal voltage");
        let deep = FaultModel::at_voltage(
            &timing,
            NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-140)),
        )
        .expect("valid");
        assert!(deep.error_rate() > nominal.error_rate());
    }

    #[test]
    fn operand_specific_models_differ() {
        use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
        let timing = MultiplierTimingModel::broadwell_2_2ghz();
        let v = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-120));
        let dense =
            FaultModel::at_voltage_for_operands(&timing, v, u64::MAX, u64::MAX).expect("valid");
        let sparse = FaultModel::at_voltage_for_operands(&timing, v, 1, 1).expect("valid");
        assert!(
            dense.error_rate() > sparse.error_rate(),
            "dense operands must fault more: {} vs {}",
            dense.error_rate(),
            sparse.error_rate()
        );
    }

    #[test]
    fn near_zero_products_are_unprotected() {
        // Paper §IX "Limitations": since LSBs cannot flip, values very
        // close to zero are not protected.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 13);
        for p in [0i64, 1, -1, 37, -200, 255] {
            for _ in 0..50 {
                assert_eq!(inj.corrupt_product(p), p, "tiny product {p} faulted");
            }
        }
    }

    #[test]
    fn faults_stay_within_active_width_plus_ripple() {
        // No switching activity above the product's top column ⇒ faults
        // stay within the active width, except rare carry-ripple faults
        // that reach at most DEFAULT_RIPPLE_SPAN bits higher.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 14);
        let product = 1i64 << 20; // active width 21
        let mut in_width = 0u32;
        let mut rippled = 0u32;
        for _ in 0..2000 {
            let c = inj.corrupt_product(product);
            let diff = (c ^ product) as u64;
            assert_eq!(
                diff >> (21 + DEFAULT_RIPPLE_SPAN + 1),
                0,
                "fault too high: {diff:#x}"
            );
            if diff >> 23 != 0 {
                rippled += 1;
            } else if diff != 0 {
                in_width += 1;
            }
        }
        assert!(in_width > rippled, "in-width faults must dominate");
        assert!(rippled > 0, "the catastrophic tail must exist");
    }

    #[test]
    fn most_faults_are_small_relative_errors() {
        // The paper's FANN-integrated tool mostly perturbs low-significance
        // mantissa bits; verify the median faulty deviation is small at the
        // paper's er = 0.1 operating point (where faults are single flips).
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.1).expect("valid"), 15);
        let product = 1i64 << 40;
        let mut rel_errors: Vec<f64> = (0..40_000)
            .filter_map(|_| {
                let c = inj.corrupt_product(product);
                if c == product {
                    None
                } else {
                    Some(((c - product).abs() as f64) / (product as f64))
                }
            })
            .collect();
        rel_errors.sort_by(f64::total_cmp);
        let median = rel_errors[rel_errors.len() / 2];
        assert!(median < 0.05, "median relative error {median} too large");
        // ... but the tail must contain significant deviations, or the
        // defense would never move the decision boundary.
        let p95 = rel_errors[rel_errors.len() * 95 / 100];
        assert!(p95 > 1e-4, "p95 relative error {p95} too small");
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = FaultStats::new();
        a.multiplies = 10;
        a.faulty = 2;
        a.bit_flips[40] = 2;
        let mut b = FaultStats::new();
        b.multiplies = 5;
        b.faulty = 1;
        b.bit_flips[40] = 1;
        a.merge(&b);
        assert_eq!(a.multiplies, 15);
        assert_eq!(a.faulty, 3);
        assert_eq!(a.bit_flips[40], 3);
    }

    proptest! {
        #[test]
        fn per_bit_probabilities_compose_to_error_rate(er in 0.001f64..0.999) {
            let m = FaultModel::from_error_rate(er).unwrap();
            let p_none: f64 = m.per_bit_probabilities().iter().map(|p| 1.0 - p).product();
            prop_assert!((1.0 - p_none - er).abs() < 1e-9,
                "P(any flip) = {} for er = {}", 1.0 - p_none, er);
        }

        #[test]
        fn corruption_never_touches_immune_bits(
            product in any::<i64>(), er in 0.01f64..1.0, seed in any::<u64>()
        ) {
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(er).unwrap(), seed);
            let c = inj.corrupt_product(product);
            let diff = (c ^ product) as u64;
            prop_assert_eq!(diff & 0xff, 0, "immune LSB flipped");
            prop_assert_eq!(diff >> 63, 0, "sign bit flipped");
        }
    }
}

//! The stochastic fault model and injector.
//!
//! This is the Rust counterpart of the paper's "stochastic fault injection
//! tool that emulates timing violations at the output of arithmetic
//! operations, based on the error distribution model detailed in §II".
//!
//! A [`FaultModel`] holds per-bit flip probabilities for the 64-bit product,
//! constructed either from the abstract error-rate knob `er` (the quantity
//! swept by the paper's space exploration, Figs. 2 & 8) or from a physical
//! supply voltage through [`MultiplierTimingModel`]. A [`FaultInjector`]
//! samples from the model with a seeded RNG and keeps [`FaultStats`] that
//! regenerate Figure 1.

use crate::multiplier::{BitErrorProfile, MultiplierTimingModel, OUTPUT_BITS};
use crate::voltage::Volts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default fraction of faults that land in the carry-ripple zone *above*
/// the product's most-significant bit.
///
/// The multiplier's final carry-propagate adder spans the full 64 bits; when
/// the intermediate sum contains a long run of ones, its carry chain ripples
/// far past the product MSB, so a timing violation occasionally corrupts a
/// bit of much higher significance than the product itself. These rare
/// catastrophic faults are what visibly moves the detector's decision
/// boundary; the frequent in-width faults only dither it.
pub const DEFAULT_RIPPLE_FRACTION: f64 = 0.03;

/// Default number of bits above the product MSB a carry-ripple fault can
/// reach.
pub const DEFAULT_RIPPLE_SPAN: u32 = 14;

/// Error rate used internally when `1.0` is requested.
///
/// A literal rate of 1 would make every weighted bit flip *deterministically*
/// (probability 1), destroying the stochasticity the defense relies on; the
/// physical system never reaches that regime either (it freezes first).
const MAX_EFFECTIVE_RATE: f64 = 0.9999;

/// Error building a [`FaultModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultModelError {
    /// The requested error rate is outside `[0, 1]` or not finite.
    InvalidErrorRate(f64),
    /// A state snapshot failed validation (see [`FaultModel::from_state`]
    /// and [`FaultInjector::from_state`]).
    InvalidState(&'static str),
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::InvalidErrorRate(er) => {
                write!(f, "error rate {er} is outside the valid range [0, 1]")
            }
            FaultModelError::InvalidState(what) => {
                write!(f, "invalid fault state snapshot: {what}")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// Per-bit flip probabilities for a 64-bit multiplier product.
///
/// The model guarantees `P(at least one bit flips) == error_rate` exactly:
/// each weighted bit flips independently with probability
/// `pᵢ = 1 − (1 − er)^{qᵢ}` where `qᵢ` are the normalised location weights,
/// so `∏(1 − pᵢ) = (1 − er)^{Σqᵢ} = 1 − er`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    error_rate: f64,
    /// `(bit index, flip probability)` for bits with non-zero weight.
    flips: Vec<(u8, f64)>,
    /// CDF over which weighted bit is the *first* to flip, conditioned on at
    /// least one flip (enables O(1) fast-path sampling).
    first_flip_cdf: Vec<f64>,
    /// Fraction of flips diverted to the carry-ripple zone.
    ripple_fraction: f64,
    /// Reach of the carry-ripple zone above the product MSB, in bits.
    ripple_span: u32,
    /// Products whose active width is at most this many bits never fault.
    near_zero_width: u32,
    /// Precomputed geometric CDF of the gap to the next fault event:
    /// `gap_cdf[k] = P(gap ≤ k) = 1 − (1 − er)^{k+1}`, truncated once it
    /// covers ~99.9% of the mass (see [`FaultInjector::corrupt_product`]).
    gap_cdf: Vec<f64>,
    /// Suffix no-flip probabilities over `flips`:
    /// `tail_none[j] = ∏_{i ≥ j} (1 − pᵢ)`, with `tail_none[len] = 1`.
    /// Drives the draw-per-flip tail sampler in [`apply_fault_event`].
    tail_none: Vec<f64>,
    /// Guide table over `gap_cdf` (see [`build_guide`]).
    gap_guide: Vec<u16>,
    /// Guide table over `first_flip_cdf` (see [`build_guide`]).
    first_flip_guide: Vec<u16>,
    /// Precomputed deterministic flip *positions*, indexed by
    /// `top * OUTPUT_BITS + profile_bit`: the activity-scaled placement
    /// `clamp(bit * top / 62, IMMUNE_LSBS + 1, top)` for every reachable
    /// active width `top`, so a fault event shifts a looked-up byte
    /// instead of re-deriving the multiply/divide/clamp per flipped bit
    /// (see [`apply_fault_event`]). Stored as bit positions rather than
    /// 64-bit masks so the whole table is ~4 KiB and stays L1-resident on
    /// the event path. Rows below the immunity floor are unreachable and
    /// stay zero.
    place_pos: Vec<u8>,
}

/// Bucket count for the inverse-CDF guide tables.
const GUIDE_BUCKETS: usize = 256;

/// Entry cap for the Figure-1 model cache: a sweep touches a few dozen
/// operating points at most, and an adversarial caller cycling through
/// arbitrary rates must not grow process memory without bound.
const FIG1_MODEL_CACHE_CAP: usize = 256;

/// Process-wide cache of models built from the Figure-1 profile, keyed by
/// the requested error rate's bit pattern (see
/// [`FaultModel::from_error_rate`]).
fn fig1_model_cache() -> &'static std::sync::Mutex<std::collections::HashMap<u64, FaultModel>> {
    static CACHE: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<u64, FaultModel>>,
    > = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Builds a guide table accelerating inverse-CDF sampling: `guide[b]` is a
/// lower bound on the inversion result for any uniform draw in
/// `[b/256, (b+1)/256)`, so a lookup is one table load plus a short
/// forward scan instead of a binary search. The search itself is cheap in
/// isolation, but inside a fault event its data-dependent branches form a
/// serial latency chain that dominates the event cost; the guided scan
/// returns the *same index for the same draw* in a fraction of the
/// latency. `strict` selects the comparison the scan will use
/// (`cdf[k] < u` vs `cdf[k] <= u`) so the bound matches exactly.
fn build_guide(cdf: &[f64], strict: bool) -> Vec<u16> {
    (0..=GUIDE_BUCKETS)
        .map(|b| {
            let u = b as f64 / GUIDE_BUCKETS as f64;
            let k = if strict {
                cdf.partition_point(|&c| c < u)
            } else {
                cdf.partition_point(|&c| c <= u)
            };
            k.min(usize::from(u16::MAX)) as u16
        })
        .collect()
}

impl FaultModel {
    /// A fault-free model (nominal voltage).
    pub fn exact() -> FaultModel {
        FaultModel {
            error_rate: 0.0,
            flips: Vec::new(),
            first_flip_cdf: Vec::new(),
            ripple_fraction: DEFAULT_RIPPLE_FRACTION,
            ripple_span: DEFAULT_RIPPLE_SPAN,
            near_zero_width: crate::multiplier::IMMUNE_LSBS as u32,
            gap_cdf: Vec::new(),
            tail_none: Vec::new(),
            gap_guide: Vec::new(),
            first_flip_guide: Vec::new(),
            place_pos: Vec::new(),
        }
    }

    /// Builds a model with the given probability that a multiplication
    /// result is faulty, using the Figure-1 fault-location distribution.
    ///
    /// This is the knob the paper's space exploration sweeps (`er` in
    /// Figs. 2 and 8); `er = 0.1` is the paper's selected operating point.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is not in
    /// `[0, 1]`.
    pub fn from_error_rate(er: f64) -> Result<FaultModel, FaultModelError> {
        if !er.is_finite() || !(0.0..=1.0).contains(&er) {
            return Err(FaultModelError::InvalidErrorRate(er));
        }
        // The Figure-1 profile is a process-wide singleton, and the derived
        // tables are a pure function of `er` under it — so a model for an
        // already-seen operating point is a clone, not a rebuild. Retune
        // and recalibrate hammer a handful of rates (the watchdog retargets
        // shards mid-stream), and without the cache every retarget rebuilt
        // four CDF/guide tables plus the flip-mask table from scratch.
        let key = er.to_bits();
        if let Ok(cache) = fig1_model_cache().lock() {
            if let Some(model) = cache.get(&key) {
                return Ok(model.clone());
            }
        }
        let model = FaultModel::from_normalized_weights(er, BitErrorProfile::fig1_normalized())?;
        if let Ok(mut cache) = fig1_model_cache().lock() {
            if cache.len() < FIG1_MODEL_CACHE_CAP {
                cache.insert(key, model.clone());
            }
        }
        Ok(model)
    }

    /// Like [`FaultModel::from_error_rate`] but with a custom fault-location
    /// profile (e.g. one measured on a different device).
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is not in
    /// `[0, 1]`.
    pub fn from_error_rate_with_profile(
        er: f64,
        profile: &BitErrorProfile,
    ) -> Result<FaultModel, FaultModelError> {
        FaultModel::from_normalized_weights(er, &profile.normalized())
    }

    /// Like [`FaultModel::from_error_rate_with_profile`] but borrowing
    /// already-normalised location weights, so callers constructing many
    /// models from one profile (voltage sweeps, per-operand characterisation)
    /// normalise once up front.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidErrorRate`] if `er` is not in
    /// `[0, 1]`.
    pub fn from_normalized_weights(er: f64, q: &[f64]) -> Result<FaultModel, FaultModelError> {
        if !er.is_finite() || !(0.0..=1.0).contains(&er) {
            return Err(FaultModelError::InvalidErrorRate(er));
        }
        if er == 0.0 {
            return Ok(FaultModel::exact());
        }
        let er_eff = er.min(MAX_EFFECTIVE_RATE);
        let mut flips = Vec::new();
        for (bit, &qi) in q.iter().enumerate() {
            if qi > 0.0 {
                let p = 1.0 - (1.0 - er_eff).powf(qi);
                flips.push((bit as u8, p));
            }
        }
        Ok(FaultModel::assemble(
            er_eff,
            flips,
            DEFAULT_RIPPLE_FRACTION,
            DEFAULT_RIPPLE_SPAN,
            crate::multiplier::IMMUNE_LSBS as u32,
        ))
    }

    /// Builds the derived sampling tables from the free parameters. Every
    /// table is a pure `f64` function of `(er_eff, flips)`, so rebuilding
    /// from a [`FaultModelState`] snapshot reproduces the original model
    /// bit for bit — the snapshot never has to carry the tables.
    fn assemble(
        er_eff: f64,
        flips: Vec<(u8, f64)>,
        ripple_fraction: f64,
        ripple_span: u32,
        near_zero_width: u32,
    ) -> FaultModel {
        // P(first flip is flips[k] | >=1 flip) = p_k * prod_{j<k}(1-p_j) / er
        let mut cdf = Vec::with_capacity(flips.len());
        let mut none_so_far = 1.0;
        let mut cum = 0.0;
        for &(_, p) in &flips {
            cum += p * none_so_far / er_eff;
            none_so_far *= 1.0 - p;
            cdf.push(cum);
        }
        // Guard against rounding: force the last entry to 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        // Geometric gap CDF, truncated at 99.9% coverage (the remaining
        // mass is sampled by the exact memoryless fallback). Bounded so a
        // minuscule error rate cannot allocate an unbounded table.
        let mut gap_cdf = Vec::new();
        let mut f = er_eff;
        while gap_cdf.len() < 1024 {
            gap_cdf.push(f);
            if f >= 0.999 {
                break;
            }
            f = 1.0 - (1.0 - f) * (1.0 - er_eff);
        }
        // Suffix products of the per-bit no-flip probabilities.
        let mut tail_none = vec![1.0; flips.len() + 1];
        for i in (0..flips.len()).rev() {
            tail_none[i] = tail_none[i + 1] * (1.0 - flips[i].1);
        }
        let gap_guide = build_guide(&gap_cdf, false);
        let first_flip_guide = build_guide(&cdf, true);
        // Deterministic flip positions for every (active width, profile
        // bit) pair. `top` ranges over the widths a faultable product can
        // present (`near_zero_width` absorbs anything narrower, and
        // `apply_fault_event` caps at OUTPUT_BITS - 2); rows outside that
        // band are unreachable and stay zero.
        let floor = crate::multiplier::IMMUNE_LSBS as u32 + 1;
        let mut place_pos = vec![0u8; (OUTPUT_BITS - 1) * OUTPUT_BITS];
        for top in floor..OUTPUT_BITS as u32 - 1 {
            for bit in 0..OUTPUT_BITS as u32 {
                let pos = (bit * top) / (OUTPUT_BITS as u32 - 2);
                place_pos[(top as usize) * OUTPUT_BITS + bit as usize] =
                    pos.clamp(floor, top) as u8;
            }
        }
        FaultModel {
            error_rate: er_eff,
            flips,
            first_flip_cdf: cdf,
            ripple_fraction,
            ripple_span,
            near_zero_width,
            gap_cdf,
            tail_none,
            gap_guide,
            first_flip_guide,
            place_pos,
        }
    }

    /// Snapshots the model's free parameters for checkpointing. The
    /// derived sampling tables are omitted; [`FaultModel::from_state`]
    /// rebuilds them bit-identically.
    pub fn export_state(&self) -> FaultModelState {
        FaultModelState {
            error_rate: self.error_rate,
            flips: self.flips.clone(),
            ripple_fraction: self.ripple_fraction,
            ripple_span: self.ripple_span,
            near_zero_width: self.near_zero_width,
        }
    }

    /// Rebuilds a model from an [`FaultModel::export_state`] snapshot,
    /// recomputing every derived table. Round-tripping is exact:
    /// `FaultModel::from_state(m.export_state()) == m` for any model a
    /// constructor can produce.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidState`] when the snapshot came
    /// from untrusted bytes and fails validation (non-probability rates,
    /// out-of-range bit indices), so a corrupted checkpoint is rejected
    /// instead of panicking or sampling garbage.
    pub fn from_state(state: FaultModelState) -> Result<FaultModel, FaultModelError> {
        if !state.error_rate.is_finite() || !(0.0..=1.0).contains(&state.error_rate) {
            return Err(FaultModelError::InvalidState("error rate"));
        }
        if !state.ripple_fraction.is_finite() || !(0.0..=1.0).contains(&state.ripple_fraction) {
            return Err(FaultModelError::InvalidState("ripple fraction"));
        }
        for &(bit, p) in &state.flips {
            if usize::from(bit) >= OUTPUT_BITS || !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultModelError::InvalidState("flip table"));
            }
        }
        if state.error_rate == 0.0 || state.flips.is_empty() {
            // An exact model stores no flip table; preserve the overrides.
            return Ok(FaultModel::exact()
                .with_ripple(state.ripple_fraction, state.ripple_span)
                .with_near_zero_width(state.near_zero_width));
        }
        Ok(FaultModel::assemble(
            state.error_rate,
            state.flips,
            state.ripple_fraction,
            state.ripple_span,
            state.near_zero_width,
        ))
    }

    /// Overrides the carry-ripple parameters (the catastrophic-fault tail).
    ///
    /// Exposed for ablation studies; the defaults are calibrated to the
    /// paper's behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn with_ripple(mut self, fraction: f64, span: u32) -> FaultModel {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "ripple fraction must be a probability"
        );
        self.ripple_fraction = fraction;
        self.ripple_span = span;
        self
    }

    /// The fraction of flips diverted to the carry-ripple zone.
    pub fn ripple_fraction(&self) -> f64 {
        self.ripple_fraction
    }

    /// Overrides the near-zero immunity width: products whose active width
    /// is at most `bits` never fault.
    ///
    /// The default, [`crate::multiplier::IMMUNE_LSBS`], models the raw
    /// 64-bit integer multiplier view used by the §II characterisation. A
    /// fixed-point datapath should raise it so that immunity is judged on
    /// the bits of the *latched* result: for Q16.16 (whose raw Q32.32
    /// products sit 16 fractional bits below the latch), the paper's 8
    /// immune result LSBs correspond to a raw active width of `8 + 16`.
    /// This is how the paper's stated limitation — "models that operate on
    /// numbers that are very close to zero are not protected" — manifests
    /// end-to-end: products below ~2⁻⁸ of unit scale exercise only carry
    /// chains far too short to violate timing.
    #[must_use]
    pub fn with_near_zero_width(mut self, bits: u32) -> FaultModel {
        self.near_zero_width = bits;
        self
    }

    /// The active width (in raw product bits) at or below which a product
    /// is considered near-zero and never faults.
    pub fn near_zero_width(&self) -> u32 {
        self.near_zero_width
    }

    /// Builds a model for a physical supply voltage using the timing model's
    /// mean error rate over random operands.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModelError::InvalidErrorRate`] (cannot occur for a
    /// well-formed timing model, whose rates are probabilities).
    pub fn at_voltage(
        timing: &MultiplierTimingModel,
        vdd: Volts,
    ) -> Result<FaultModel, FaultModelError> {
        FaultModel::from_normalized_weights(
            timing.mean_error_rate(vdd),
            timing.profile_normalized(),
        )
    }

    /// Builds a model for a specific operand pair at a physical voltage
    /// (used by the §II characterisation experiments, which repeatedly
    /// multiply the *same* operands).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultModelError::InvalidErrorRate`] (cannot occur for a
    /// well-formed timing model).
    pub fn at_voltage_for_operands(
        timing: &MultiplierTimingModel,
        vdd: Volts,
        a: u64,
        b: u64,
    ) -> Result<FaultModel, FaultModelError> {
        let factor = timing.operand_factor(a, b);
        let er = timing.violation_probability(vdd, factor);
        FaultModel::from_normalized_weights(er, timing.profile_normalized())
    }

    /// The probability that a multiplication result is faulty.
    #[inline]
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// The flip probability of each of the 64 product bits.
    pub fn per_bit_probabilities(&self) -> [f64; OUTPUT_BITS] {
        let mut out = [0.0; OUTPUT_BITS];
        for &(bit, p) in &self.flips {
            out[bit as usize] = p;
        }
        out
    }

    /// `true` if the model never injects faults.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.error_rate == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> FaultModel {
        FaultModel::exact()
    }
}

/// The free parameters of a [`FaultModel`] — everything that is not a
/// derived table. Produced by [`FaultModel::export_state`], consumed by
/// [`FaultModel::from_state`]; the checkpoint codec serialises this
/// instead of the (much larger, fully recomputable) model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultModelState {
    /// Effective error rate (already clamped to the model's maximum).
    pub error_rate: f64,
    /// `(bit index, flip probability)` for bits with non-zero weight.
    pub flips: Vec<(u8, f64)>,
    /// Fraction of flips diverted to the carry-ripple zone.
    pub ripple_fraction: f64,
    /// Reach of the carry-ripple zone above the product MSB, in bits.
    pub ripple_span: u32,
    /// Products at or below this active width never fault.
    pub near_zero_width: u32,
}

/// A complete [`FaultInjector`] snapshot: the model's free parameters,
/// the raw RNG state, the accumulated statistics, and the in-flight
/// geometric gap. Restoring it continues the corruption stream — and the
/// statistics — bit-identically from the captured multiplication.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectorState {
    /// The fault model's free parameters.
    pub model: FaultModelState,
    /// Raw xoshiro256++ state of the injector's RNG.
    pub rng: [u64; 4],
    /// Statistics settled as of the snapshot (in-flight gap folded in,
    /// exactly as [`FaultInjector::stats`] reports them).
    pub stats: FaultStats,
    /// Fault-free multiplications remaining before the next fault event.
    pub skip: u64,
}

/// Statistics accumulated by a [`FaultInjector`], sufficient to regenerate
/// the paper's Figure 1.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total multiplications processed.
    pub multiplies: u64,
    /// Multiplications whose result was corrupted.
    pub faulty: u64,
    /// Per-bit flip counts.
    pub bit_flips: Vec<u64>,
}

/// Sink for the per-event statistics updates [`apply_fault_event`]
/// makes, so one body of the event law can feed either the scalar
/// [`FaultStats`] (heap histogram, checkpoint-serializable) or the
/// batched per-lane tallies (inline histogram, allocation-free).
trait FaultSink {
    /// Records one corrupting event with the given flip mask.
    fn record_fault(&mut self, mask: u64);
}

impl FaultSink for FaultStats {
    #[inline]
    fn record_fault(&mut self, mask: u64) {
        self.faulty += 1;
        let mut remaining = mask;
        while remaining != 0 {
            self.bit_flips[remaining.trailing_zeros() as usize] += 1;
            remaining &= remaining - 1;
        }
    }
}

/// Allocation-free per-lane statistics for [`BatchFaultStream`]: the same
/// counts as [`FaultStats`] with the per-bit histogram stored inline, so
/// arming a batch of lanes touches no heap and the per-flip histogram
/// update indexes a fixed-size array.
#[derive(Clone, Debug)]
struct LaneStats {
    multiplies: u64,
    faulty: u64,
    bit_flips: [u64; OUTPUT_BITS],
}

impl LaneStats {
    const ZERO: LaneStats = LaneStats {
        multiplies: 0,
        faulty: 0,
        bit_flips: [0; OUTPUT_BITS],
    };
}

impl FaultSink for LaneStats {
    #[inline]
    fn record_fault(&mut self, mask: u64) {
        self.faulty += 1;
        let mut remaining = mask;
        while remaining != 0 {
            self.bit_flips[remaining.trailing_zeros() as usize] += 1;
            remaining &= remaining - 1;
        }
    }
}

/// The additive summary of a fault stream's statistics — exactly what the
/// serving layer's telemetry fold consumes — producible from a batched
/// lane without materializing a heap-backed [`FaultStats`] per lane per
/// block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Total multiplications processed.
    pub multiplies: u64,
    /// Multiplications whose result was corrupted.
    pub faulty: u64,
    /// Total product bits flipped.
    pub bit_flips: u64,
}

impl FaultStats {
    fn new() -> FaultStats {
        FaultStats {
            multiplies: 0,
            faulty: 0,
            bit_flips: vec![0; OUTPUT_BITS],
        }
    }

    /// Observed fraction of faulty multiplications.
    pub fn observed_error_rate(&self) -> f64 {
        if self.multiplies == 0 {
            0.0
        } else {
            self.faulty as f64 / self.multiplies as f64
        }
    }

    /// Per-bit error rates (flips per multiplication), the quantity plotted
    /// in Figure 1.
    pub fn bitwise_error_rates(&self) -> Vec<f64> {
        let n = self.multiplies.max(1) as f64;
        self.bit_flips.iter().map(|&c| c as f64 / n).collect()
    }

    /// Total product bits flipped across all faulty multiplications.
    pub fn total_flips(&self) -> u64 {
        self.bit_flips.iter().sum()
    }

    /// Mean flipped bits per faulty multiplication; 0 when nothing
    /// faulted.
    pub fn flips_per_fault(&self) -> f64 {
        if self.faulty == 0 {
            0.0
        } else {
            self.total_flips() as f64 / self.faulty as f64
        }
    }

    /// `true` when no multiplication has been processed.
    pub fn is_empty(&self) -> bool {
        self.multiplies == 0
    }

    /// Merges counts from another statistics record.
    pub fn merge(&mut self, other: &FaultStats) {
        self.multiplies += other.multiplies;
        self.faulty += other.faulty;
        if self.bit_flips.len() < other.bit_flips.len() {
            self.bit_flips.resize(other.bit_flips.len(), 0);
        }
        for (a, b) in self.bit_flips.iter_mut().zip(&other.bit_flips) {
            *a += b;
        }
    }
}

/// Anything that can transform a raw 64-bit product — the integration point
/// between the fault model and the fixed-point inference datapath.
pub trait ProductCorruptor {
    /// Transforms the exact product into the (possibly faulty) product the
    /// datapath latches.
    fn corrupt(&mut self, product: i64) -> i64;
}

/// Forwarding impl so monomorphic `infer_with`-style entry points accept
/// both owned corruptors and `&mut dyn ProductCorruptor` trait objects.
impl<C: ProductCorruptor + ?Sized> ProductCorruptor for &mut C {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        (**self).corrupt(product)
    }
}

/// The identity datapath: never faults (nominal voltage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactDatapath;

impl ProductCorruptor for ExactDatapath {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        product
    }
}

/// Logarithm-based geometric sampler: with `u` uniform on `(0, 1]`,
/// `⌊ln u / ln(1 − er)⌋` satisfies `P(gap ≥ k) = P(u ≤ (1−er)^k) = (1−er)^k`,
/// which is exactly the geometric tail. Used to seed the first gap and for
/// the rare mass past the precomputed CDF table.
fn sample_gap_ln(rng: &mut StdRng, er: f64) -> u64 {
    // The standard f64 draw is uniform on [0, 1); flip it onto (0, 1] so the
    // logarithm is finite.
    let u = 1.0 - rng.gen::<f64>();
    let denom = (1.0 - er).ln();
    if denom == 0.0 {
        // er below ~2⁻⁵³: 1 − er rounds to 1. The gap is astronomically
        // large; saturate rather than divide by zero.
        return u64::MAX;
    }
    let gap = u.ln() / denom;
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

/// Resolves a guided CDF lookup without a data-dependent scan loop: the
/// guide bucket gives a lower bound for the answer, then each round adds
/// the sum of four comparison indicators. The CDF is non-decreasing, so
/// the indicators `[cdf[k+t] ≤ u]` (or `< u` when `STRICT`) form a
/// monotone run of ones followed by zeros — their sum IS the advance, no
/// early-exit branch per entry. Reads past the end pad with +∞ (indicator
/// zero), which both bounds the scan and caps the strict variant at
/// `cdf.len()`. Guide buckets almost never span more than four entries
/// (the tail buckets near a truncated CDF can), so the round loop is one
/// predictable iteration in the hot path.
#[inline]
fn guided_index<const STRICT: bool>(cdf: &[f64], guide: &[u16], u: f64) -> usize {
    let at = |i: usize| cdf.get(i).copied().unwrap_or(f64::INFINITY);
    let hit = |c: f64| if STRICT { c < u } else { c <= u };
    let mut k = usize::from(guide[(u * GUIDE_BUCKETS as f64) as usize]);
    loop {
        let step = usize::from(hit(at(k)))
            + usize::from(hit(at(k + 1)))
            + usize::from(hit(at(k + 2)))
            + usize::from(hit(at(k + 3)));
        k += step;
        if step < 4 {
            return k;
        }
    }
}

/// Samples the number of fault-free multiplications before the next fault
/// event from `Geom(er)`: `P(gap = k) = (1 − er)^k · er`.
///
/// The common case is a table lookup: `gap = k` exactly when
/// `F(k−1) ≤ u < F(k)` for the precomputed CDF `F`, located by a
/// [`build_guide`] table plus a short forward scan, with no
/// transcendental call. A draw past the truncated table lands in the
/// geometric's memoryless tail, so the exact remainder is
/// `table length + Geom(er)` via the logarithm sampler. Either way the
/// fault/no-fault sequence keeps the same law as one Bernoulli(er) draw
/// per multiplication, at one draw per *fault* instead of per *product*.
#[inline]
fn sample_gap(rng: &mut StdRng, model: &FaultModel) -> u64 {
    let cdf = &model.gap_cdf;
    match cdf.last() {
        Some(&last) => {
            let u: f64 = rng.gen();
            if u < last {
                // Same index `partition_point(|&c| c <= u)` would find:
                // the guide gives a lower bound for u's bucket and
                // `u < last` keeps the answer in range.
                if model.gap_guide.len() == GUIDE_BUCKETS + 1 {
                    guided_index::<false>(cdf, &model.gap_guide, u) as u64
                } else {
                    let mut k = 0;
                    while cdf[k] <= u {
                        k += 1;
                    }
                    k as u64
                }
            } else {
                (cdf.len() as u64).saturating_add(sample_gap_ln(rng, model.error_rate))
            }
        }
        // Hand-built model with no table (e.g. deserialized): exact path.
        None => sample_gap_ln(rng, model.error_rate),
    }
}

/// Applies one fault *event* to `product` (the event itself has already been
/// decided), updating `stats`. Shared between the geometric-skip
/// [`FaultInjector`] and the per-draw [`PerDrawInjector`] oracle so the two
/// samplers differ only in *when* a fault happens and how the independent
/// tail is walked.
///
/// After the first flipped bit, the remaining weighted bits flip
/// independently with their (small) per-bit probabilities. `thin_tail`
/// selects how that tail is sampled:
///
/// - `false` — the reference scan: one uniform draw per remaining bit
///   (~50 draws per event for the Figure-1 profile). [`PerDrawInjector`]
///   keeps this path, preserving the seed implementation as the
///   statistical oracle and benchmark baseline.
/// - `true` — survival inversion over the precomputed suffix no-flip
///   products `tail_none`: one uniform per *flip* locates the next
///   flipping index by binary search, using
///   `P(next flip ≥ m | walking from j) = tail_none[j] / tail_none[m]`,
///   so bit `i` still flips with exactly `pᵢ`, independently. Expected
///   cost is `1 + E[#tail flips]` draws per event and no transcendental
///   calls.
///
/// Fault *locations* are activity-scaled: a timing violation can only
/// corrupt a column whose partial products actually switch, so the sampled
/// bit position (calibrated on full-width random operands, §II) is
/// compressed into the product's active bit-width. Events that land on a
/// near-zero product are absorbed — the product returns unchanged and
/// `stats.faulty` is not incremented, exactly as a per-draw sampler that
/// draws the event before inspecting the operand would behave.
#[inline]
fn apply_fault_event<S: FaultSink>(
    model: &FaultModel,
    rng: &mut StdRng,
    stats: &mut S,
    product: i64,
    thin_tail: bool,
) -> i64 {
    if model.flips.is_empty() {
        // Cannot arise from the constructors but can from a hand-crafted
        // deserialized model; treat it as exact rather than underflowing
        // below.
        return product;
    }
    // Active width: highest switching column, plus one for carry-out.
    // Never the sign bit (structurally an XOR off the critical path).
    let width = 64 - product.unsigned_abs().leading_zeros();
    if width <= model.near_zero_width {
        // Near-zero product: no carry chains long enough to violate.
        return product;
    }
    let top = (width + 1).min(OUTPUT_BITS as u32 - 2);
    let ripple_top = (width + model.ripple_span).min(OUTPUT_BITS as u32 - 2);
    let ripple_fraction = model.ripple_fraction;
    // The deterministic placement for this width, precomputed at model
    // build time (same clamp arithmetic, one byte load + shift per flip).
    // The oracle path keeps the legacy arithmetic verbatim; a model whose
    // immunity floor was lowered past the table's band falls back to it
    // too.
    let row_base = top as usize * OUTPUT_BITS;
    let positions: &[u8] = if thin_tail
        && top > crate::multiplier::IMMUNE_LSBS as u32
        && model.place_pos.len() >= row_base + OUTPUT_BITS
    {
        &model.place_pos[row_base..row_base + OUTPUT_BITS]
    } else {
        &[]
    };
    let place = |rng: &mut StdRng, bit: u8| -> u64 {
        if ripple_top > top && rng.gen::<f64>() < ripple_fraction {
            // Carry-propagate-adder ripple past the product MSB.
            1u64 << rng.gen_range(top + 1..=ripple_top)
        } else if !positions.is_empty() {
            1u64 << positions[usize::from(bit)]
        } else {
            let pos = (u32::from(bit) * top) / (OUTPUT_BITS as u32 - 2);
            1u64 << pos.clamp(crate::multiplier::IMMUNE_LSBS as u32 + 1, top)
        }
    };
    let mut mask = 0u64;
    // First flipped bit, conditioned on at least one flip. The guided
    // scan finds the same index as the binary search for the same draw;
    // the oracle/baseline path keeps the legacy binary search verbatim.
    let v: f64 = rng.gen();
    let k = if thin_tail && model.first_flip_guide.len() == GUIDE_BUCKETS + 1 {
        guided_index::<true>(&model.first_flip_cdf, &model.first_flip_guide, v)
            .min(model.flips.len() - 1)
    } else {
        model
            .first_flip_cdf
            .partition_point(|&c| c < v)
            .min(model.flips.len() - 1)
    };
    let (first_bit, _) = model.flips[k];
    mask ^= place(rng, first_bit);
    // Remaining bits flip independently.
    if thin_tail && model.tail_none.len() == model.flips.len() + 1 {
        let tn = &model.tail_none;
        let mut j = k + 1;
        while j < model.flips.len() {
            let u: f64 = rng.gen();
            // Inverse-transform the survival function: the next flipping
            // index is the largest m with `u·tail_none[m] ≤ tail_none[j]`
            // (the predicate holds on a prefix because tail_none is
            // non-decreasing). m == flips.len() means no further flip —
            // equivalently `u ≤ tail_none[j]` (the whole suffix survives);
            // that ~(1 − er) common case is tested first so it skips the
            // search's latency chain. Same draw, same outcome.
            if u <= tn[j] {
                break;
            }
            let m = j + tn[j..].partition_point(|&t| u * t <= tn[j]) - 1;
            if m >= model.flips.len() {
                break;
            }
            let (bit, _) = model.flips[m];
            mask ^= place(rng, bit);
            j = m + 1;
        }
    } else {
        for idx in k + 1..model.flips.len() {
            let (bit, p) = model.flips[idx];
            if rng.gen::<f64>() < p {
                mask ^= place(rng, bit);
            }
        }
    }
    if mask == 0 {
        // Scaled positions collided pairwise and cancelled.
        return product;
    }
    stats.record_fault(mask);
    product ^ (mask as i64)
}

/// One geometric-skip corruption step: drain the fault-free gap, or settle
/// the multiply count, re-arm the gap, and apply the fault event. Shared by
/// the owning [`FaultInjector`] and the borrowing [`FaultStream`] so both
/// walk the identical fault law bit-for-bit from the same seed.
#[inline]
fn corrupt_step(
    model: &FaultModel,
    rng: &mut StdRng,
    stats: &mut FaultStats,
    skip: &mut u64,
    gap_len: &mut u64,
    product: i64,
) -> i64 {
    if *skip > 0 {
        *skip -= 1;
        return product;
    }
    // Fault event: settle the multiply count for the drained gap plus
    // this call, then arm the next gap.
    stats.multiplies += *gap_len + 1;
    *skip = sample_gap(rng, model);
    *gap_len = *skip;
    apply_fault_event(model, rng, stats, product, true)
}

/// A seeded stochastic fault injector.
///
/// # Example
///
/// ```
/// use shmd_volt::fault::{FaultInjector, FaultModel, ProductCorruptor};
///
/// let mut injector = FaultInjector::new(FaultModel::from_error_rate(0.5)?, 7);
/// let mut corrupted = 0;
/// for _ in 0..1000 {
///     if injector.corrupt(1 << 40) != 1 << 40 {
///         corrupted += 1;
///     }
/// }
/// assert!(corrupted > 400 && corrupted < 600);
/// # Ok::<(), shmd_volt::fault::FaultModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    model: FaultModel,
    rng: StdRng,
    stats: FaultStats,
    /// Fault-free multiplications remaining before the next fault event
    /// (geometric gap sampling — see [`sample_gap`]). An exact model is
    /// represented as a gap that never drains (`u64::MAX`), so the hot
    /// path needs no separate exactness branch.
    skip: u64,
    /// The value `skip` was last (re)sampled to. `gap_len - skip` is the
    /// number of fault-free multiplications since the last event, which
    /// [`FaultInjector::stats`] folds into the multiply count on demand —
    /// the fault-free path never touches memory for bookkeeping.
    gap_len: u64,
}

impl FaultInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(model: FaultModel, seed: u64) -> FaultInjector {
        let mut rng = StdRng::seed_from_u64(seed);
        let skip = if model.is_exact() {
            u64::MAX
        } else {
            sample_gap(&mut rng, &model)
        };
        FaultInjector {
            model,
            rng,
            stats: FaultStats::new(),
            skip,
            gap_len: skip,
        }
    }

    /// The fault model in use.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Replaces the fault model (e.g. when re-calibrating for temperature).
    ///
    /// The gap to the next fault is resampled under the new error rate.
    pub fn set_model(&mut self, model: FaultModel) {
        // Multiplications run under the outgoing model still count.
        self.stats.multiplies += self.gap_len - self.skip;
        self.model = model;
        self.skip = if self.model.is_exact() {
            u64::MAX
        } else {
            sample_gap(&mut self.rng, &self.model)
        };
        self.gap_len = self.skip;
    }

    /// Accumulated statistics.
    ///
    /// Computed on demand: the multiply count folds in the fault-free
    /// calls made since the last fault event, which the hot path tracks
    /// only through the draining gap counter.
    pub fn stats(&self) -> FaultStats {
        let mut stats = self.stats.clone();
        stats.multiplies += self.gap_len - self.skip;
        stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::new();
        self.gap_len = self.skip;
    }

    /// Corrupts a raw 64-bit product, updating statistics.
    ///
    /// Fault timing uses geometric gap sampling: the number of fault-free
    /// multiplications before the next fault event is drawn from `Geom(er)`
    /// and counted down, so the hot path is a decrement with *no* RNG draw
    /// — O(#faults) RNG cost instead of O(#multiplications), while the
    /// fault/no-fault sequence keeps the exact per-multiplication
    /// Bernoulli(er) law (see [`sample_gap`]; [`PerDrawInjector`] is the
    /// retained per-draw oracle). When the counter reaches a fault event,
    /// the first flipped bit is drawn from the conditional first-flip
    /// distribution and later bits flip independently, which reproduces
    /// exact independent per-bit Bernoulli sampling.
    ///
    /// Consequences faithfully mirror the paper: most faults are small
    /// *relative* errors, occasionally one lands near the product's MSB,
    /// and values very close to zero are not perturbed at all (the paper's
    /// stated limitation: "models that operate on numbers that are very
    /// close to zero are not protected"). A fault event that lands on a
    /// near-zero product is *absorbed* — exactly as the per-draw sampler
    /// absorbed it after its Bernoulli draw — so `observed_error_rate`
    /// still reflects only products wide enough to fault.
    #[inline]
    pub fn corrupt_product(&mut self, product: i64) -> i64 {
        corrupt_step(
            &self.model,
            &mut self.rng,
            &mut self.stats,
            &mut self.skip,
            &mut self.gap_len,
            product,
        )
    }

    /// Corrupts an unsigned product (convenience for characterisation code).
    pub fn corrupt_unsigned(&mut self, product: u64) -> u64 {
        self.corrupt_product(product as i64) as u64
    }

    /// Snapshots the injector for checkpointing: model parameters, raw RNG
    /// state, folded statistics, and the remaining in-flight gap.
    pub fn export_state(&self) -> InjectorState {
        InjectorState {
            model: self.model.export_state(),
            rng: self.rng.state(),
            stats: self.stats(),
            skip: self.skip,
        }
    }

    /// Rebuilds an injector from an [`FaultInjector::export_state`]
    /// snapshot. The restored injector continues the corruption stream —
    /// RNG draws, fault timing, statistics — bit-identically from the
    /// multiplication the snapshot was taken at.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::InvalidState`] when the snapshot fails
    /// validation: a bad model (see [`FaultModel::from_state`]), the
    /// degenerate all-zero RNG state (the xoshiro fixed point, which a
    /// seeded generator can never reach), or a statistics record whose
    /// per-bit table does not cover the 64 product bits (the fault path
    /// indexes it unchecked).
    pub fn from_state(state: InjectorState) -> Result<FaultInjector, FaultModelError> {
        let model = FaultModel::from_state(state.model)?;
        if state.rng == [0u64; 4] {
            return Err(FaultModelError::InvalidState("all-zero rng state"));
        }
        if state.stats.bit_flips.len() != OUTPUT_BITS {
            return Err(FaultModelError::InvalidState("bit-flip table length"));
        }
        if state.stats.faulty > state.stats.multiplies {
            return Err(FaultModelError::InvalidState("faulty exceeds multiplies"));
        }
        // The exported stats were folded, so the restored gap restarts at
        // `skip`: future folds count only multiplications made after the
        // snapshot, exactly matching the original's running totals.
        Ok(FaultInjector {
            model,
            rng: StdRng::from_state(state.rng),
            stats: state.stats,
            skip: state.skip,
            gap_len: state.skip,
        })
    }
}

impl ProductCorruptor for FaultInjector {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.corrupt_product(product)
    }
}

/// A borrowing fault injector for short-lived corruption streams.
///
/// [`FaultInjector::new`] takes the [`FaultModel`] by value — the right
/// ownership for a long-lived per-shard injector, but prohibitive when a
/// serving worker needs a fresh deterministic stream *per query*: the model
/// holds heap-allocated CDF and guide tables, so cloning it per query would
/// dominate the score itself. `FaultStream` borrows the model instead;
/// construction is one RNG seed plus a single gap draw, and the corruption
/// sequence from a given seed is bit-identical to a [`FaultInjector`] built
/// from the same model and seed (both delegate to the same step function).
///
/// Restarting a fresh stream per query is statistically sound because the
/// geometric inter-fault gap is *memoryless*: a fresh `Geom(er)` draw at
/// every query boundary preserves the exact one-Bernoulli(er)-per-
/// multiplication fault law of a single long-lived injector.
#[derive(Clone, Debug)]
pub struct FaultStream<'a> {
    model: &'a FaultModel,
    rng: StdRng,
    stats: FaultStats,
    skip: u64,
    gap_len: u64,
}

impl<'a> FaultStream<'a> {
    /// Creates a stream over a borrowed model with a deterministic seed.
    pub fn new(model: &'a FaultModel, seed: u64) -> FaultStream<'a> {
        let mut rng = StdRng::seed_from_u64(seed);
        let skip = if model.is_exact() {
            u64::MAX
        } else {
            sample_gap(&mut rng, model)
        };
        FaultStream {
            model,
            rng,
            stats: FaultStats::new(),
            skip,
            gap_len: skip,
        }
    }

    /// The borrowed fault model.
    pub fn model(&self) -> &FaultModel {
        self.model
    }

    /// Accumulated statistics, with the in-flight fault-free gap folded
    /// into the multiply count (same on-demand fold as
    /// [`FaultInjector::stats`]).
    pub fn stats(&self) -> FaultStats {
        let mut stats = self.stats.clone();
        stats.multiplies += self.gap_len - self.skip;
        stats
    }

    /// Corrupts a raw 64-bit product, updating statistics. Bit-identical
    /// to [`FaultInjector::corrupt_product`] for the same model and seed.
    #[inline]
    pub fn corrupt_product(&mut self, product: i64) -> i64 {
        corrupt_step(
            self.model,
            &mut self.rng,
            &mut self.stats,
            &mut self.skip,
            &mut self.gap_len,
            product,
        )
    }
}

impl ProductCorruptor for FaultStream<'_> {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.corrupt_product(product)
    }
}

/// The batched counterpart of [`ProductCorruptor`]: fault decisions for
/// `LANES` independent corruption streams, surfaced as *fault-free run
/// lengths per lane* rather than per-multiplication polls.
///
/// The batched MAC loop in `shmd-ann` drains each lane's events over a
/// span of multiplications (one neuron row) by calling
/// [`LaneCorruptor::lane_run`] with the multiplications that lane still
/// has in hand: `None` means the lane is fault-free for the whole span;
/// `Some(offset)` means the multiplication at `offset` (0-based within
/// the span) faults. Because every lane owns an independent RNG chain,
/// draining lane `l`'s events for a whole row before touching lane
/// `l + 1` consumes exactly the same per-lane draw sequence as the scalar
/// path — lane interleaving order is immaterial to bit-identity.
///
/// The contract mirrors the scalar geometric-skip law exactly:
///
/// - `Some(offset)` implies `offset < max` (the event multiplication is
///   within the caller's span);
/// - after `Some(offset)`, the lane **must** receive its
///   [`LaneCorruptor::fault`] call for that multiplication before its
///   next `lane_run`, because `fault` is what re-arms the lane's gap;
/// - after `None`, the lane has consumed all `max` multiplications
///   fault-free.
pub trait LaneCorruptor<const LANES: usize> {
    /// Advances lane `lane` by up to `max` multiplications: `Some(offset)`
    /// if the multiplication at `offset < max` faults, `None` if the lane
    /// consumed the whole span fault-free.
    fn lane_run(&mut self, lane: usize, max: u64) -> Option<u64>;

    /// Applies the fault event to `product` on the multiplication reported
    /// by the last [`LaneCorruptor::lane_run`] for this lane, re-arming
    /// that lane's gap.
    fn fault(&mut self, lane: usize, product: i64) -> i64;
}

/// Forwarding impl so batched entry points accept both owned corruptors
/// and mutable borrows, matching the scalar [`ProductCorruptor`] ergonomics.
impl<const LANES: usize, C: LaneCorruptor<LANES> + ?Sized> LaneCorruptor<LANES> for &mut C {
    #[inline]
    fn lane_run(&mut self, lane: usize, max: u64) -> Option<u64> {
        (**self).lane_run(lane, max)
    }

    #[inline]
    fn fault(&mut self, lane: usize, product: i64) -> i64 {
        (**self).fault(lane, product)
    }
}

/// The identity batch datapath: no lane ever faults (nominal voltage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactLanes;

impl<const LANES: usize> LaneCorruptor<LANES> for ExactLanes {
    #[inline]
    fn lane_run(&mut self, _lane: usize, _max: u64) -> Option<u64> {
        None
    }

    #[inline]
    fn fault(&mut self, _lane: usize, product: i64) -> i64 {
        product
    }
}

/// `LANES` independent [`FaultStream`]s advanced in lock-step, one per
/// batched inference lane.
///
/// Each lane owns its own RNG, statistics, and geometric gap countdown,
/// seeded exactly as a scalar stream would be — so lane `l`'s corruption
/// sequence (fault timing, flip masks, statistics) is bit-identical to
/// `FaultStream::new(model, seeds[l])` fed the same products in the same
/// order, at any batch width. The only structural difference is layout:
/// the countdowns live in a `[u64; LANES]` array, each lane advanced over
/// whole fault-free runs by [`LaneCorruptor::lane_run`] — one
/// compare-and-subtract per run, no per-product work, no cross-lane
/// synchronization — and only fault events (≈ `er` per lane-multiply)
/// enter the sampling machinery via [`LaneCorruptor::fault`].
#[derive(Clone, Debug)]
pub struct BatchFaultStream<'a, const LANES: usize> {
    model: &'a FaultModel,
    rngs: [StdRng; LANES],
    stats: [LaneStats; LANES],
    /// Per-lane fault-free multiplications remaining before the next
    /// event; exact models park at `u64::MAX` like the scalar injector.
    skip: [u64; LANES],
    /// Per-lane value `skip` was last (re)armed to, for the on-demand
    /// multiply-count fold (see [`BatchFaultStream::stats`]).
    gap_len: [u64; LANES],
}

impl<'a, const LANES: usize> BatchFaultStream<'a, LANES> {
    /// Creates `LANES` streams over a borrowed model, one deterministic
    /// seed per lane.
    ///
    /// # Panics
    ///
    /// Panics if `LANES` is 0 or exceeds 64 (the due mask is a `u64`).
    pub fn new(model: &'a FaultModel, seeds: [u64; LANES]) -> BatchFaultStream<'a, LANES> {
        assert!(
            (1..=64).contains(&LANES),
            "lane mask is a u64: 1..=64 lanes"
        );
        let exact = model.is_exact();
        let mut skip = [0u64; LANES];
        let rngs = std::array::from_fn(|l| {
            let mut rng = StdRng::seed_from_u64(seeds[l]);
            skip[l] = if exact {
                u64::MAX
            } else {
                sample_gap(&mut rng, model)
            };
            rng
        });
        BatchFaultStream {
            model,
            rngs,
            stats: [LaneStats::ZERO; LANES],
            skip,
            gap_len: skip,
        }
    }

    /// The borrowed fault model.
    pub fn model(&self) -> &FaultModel {
        self.model
    }

    /// Lane `l`'s accumulated statistics, with its in-flight fault-free
    /// gap folded into the multiply count — identical to what the scalar
    /// [`FaultStream::stats`] reports at the same point in the stream.
    pub fn stats(&self, lane: usize) -> FaultStats {
        let s = &self.stats[lane];
        FaultStats {
            multiplies: s.multiplies + self.gap_len[lane] - self.skip[lane],
            faulty: s.faulty,
            bit_flips: s.bit_flips.to_vec(),
        }
    }

    /// Lane `l`'s additive statistics summary — the same numbers
    /// [`BatchFaultStream::stats`] reports (in-flight gap folded in) with
    /// the histogram collapsed to its total, and no heap traffic. This is
    /// what the serving layer folds into its telemetry once per lane per
    /// block, so the fold is three adds rather than a `Vec` clone.
    pub fn tally(&self, lane: usize) -> FaultTally {
        let s = &self.stats[lane];
        FaultTally {
            multiplies: s.multiplies + self.gap_len[lane] - self.skip[lane],
            faulty: s.faulty,
            bit_flips: s.bit_flips.iter().sum(),
        }
    }
}

impl<const LANES: usize> LaneCorruptor<LANES> for BatchFaultStream<'_, LANES> {
    /// Gap countdown over whole spans: one compare-and-subtract against
    /// the lane's entry in the `[u64; LANES]` skip array decides whether
    /// the lane crosses its next fault event inside the span — no RNG, no
    /// per-product work, no cross-lane synchronization. A due lane's
    /// counter parks at zero until [`BatchFaultStream::fault`] re-arms it,
    /// which replicates the scalar `corrupt_step` exactly (the scalar path
    /// also reaches `skip == 0` on the event multiplication and resamples
    /// inside the event).
    #[inline]
    fn lane_run(&mut self, lane: usize, max: u64) -> Option<u64> {
        let s = self.skip[lane];
        if s >= max {
            self.skip[lane] = s - max;
            None
        } else {
            self.skip[lane] = 0;
            Some(s)
        }
    }

    #[inline]
    fn fault(&mut self, lane: usize, product: i64) -> i64 {
        let rng = &mut self.rngs[lane];
        let stats = &mut self.stats[lane];
        // Settle the multiply count for the drained gap plus this call,
        // then arm the next gap — the same order as the scalar step, so
        // the RNG draw sequence stays aligned.
        stats.multiplies += self.gap_len[lane] + 1;
        let skip = sample_gap(rng, self.model);
        self.skip[lane] = skip;
        self.gap_len[lane] = skip;
        apply_fault_event(self.model, rng, stats, product, true)
    }
}

/// The pre-geometric reference sampler: one uniform Bernoulli draw per
/// multiplication, one uniform per weighted bit inside each fault event.
///
/// Statistically interchangeable with [`FaultInjector`] — the same
/// per-multiplication fault law and the same per-bit flip law — but
/// implemented the straightforward way the seed revision did, without
/// geometric gap sampling or tail thinning. Retained as the statistical
/// oracle for the sampling property tests (two independent implementations
/// of one law must agree) and as the honest "before" baseline in the
/// throughput benchmarks; deployment code should use [`FaultInjector`].
#[derive(Clone, Debug)]
pub struct PerDrawInjector {
    model: FaultModel,
    rng: StdRng,
    stats: FaultStats,
}

impl PerDrawInjector {
    /// Creates a per-draw injector with a deterministic seed.
    pub fn new(model: FaultModel, seed: u64) -> PerDrawInjector {
        PerDrawInjector {
            model,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::new(),
        }
    }

    /// The fault model in use.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::new();
    }

    /// Corrupts a raw 64-bit product with one Bernoulli draw, updating
    /// statistics.
    pub fn corrupt_product(&mut self, product: i64) -> i64 {
        self.stats.multiplies += 1;
        if self.model.is_exact() {
            return product;
        }
        let u: f64 = self.rng.gen();
        if u >= self.model.error_rate {
            return product;
        }
        apply_fault_event(&self.model, &mut self.rng, &mut self.stats, product, false)
    }
}

impl ProductCorruptor for PerDrawInjector {
    #[inline]
    fn corrupt(&mut self, product: i64) -> i64 {
        self.corrupt_product(product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::{IMMUNE_LSBS, SIGN_BIT};
    use proptest::prelude::*;

    #[test]
    fn exact_model_is_identity() {
        let mut inj = FaultInjector::new(FaultModel::exact(), 1);
        for p in [0i64, -1, i64::MAX, i64::MIN, 12345] {
            assert_eq!(inj.corrupt_product(p), p);
        }
        assert_eq!(inj.stats().faulty, 0);
        assert_eq!(inj.stats().multiplies, 5);
    }

    #[test]
    fn fault_stream_matches_injector_bit_for_bit() {
        let model = FaultModel::from_error_rate(0.3).expect("valid");
        let mut injector = FaultInjector::new(model.clone(), 99);
        let mut stream = FaultStream::new(&model, 99);
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..5000 {
            // Cheap xorshift so the product mix covers widths and signs.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let p = x as i64;
            assert_eq!(stream.corrupt_product(p), injector.corrupt_product(p));
        }
        assert_eq!(stream.stats(), injector.stats());
        assert!(stream.stats().faulty > 0, "0.3 must fault within 5000");
    }

    #[test]
    fn fault_stream_folds_the_inflight_gap_into_stats() {
        let model = FaultModel::from_error_rate(0.01).expect("valid");
        let mut stream = FaultStream::new(&model, 7);
        for _ in 0..137 {
            stream.corrupt_product(1 << 40);
        }
        assert_eq!(stream.stats().multiplies, 137);
    }

    #[test]
    fn exact_fault_stream_is_identity() {
        let model = FaultModel::exact();
        let mut stream = FaultStream::new(&model, 1);
        for p in [0i64, -1, i64::MAX, i64::MIN, 12345] {
            assert_eq!(stream.corrupt_product(p), p);
        }
        assert_eq!(stream.stats().faulty, 0);
        assert_eq!(stream.stats().multiplies, 5);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(FaultModel::from_error_rate(-0.1).is_err());
        assert!(FaultModel::from_error_rate(1.5).is_err());
        assert!(FaultModel::from_error_rate(f64::NAN).is_err());
    }

    #[test]
    fn rate_one_is_clamped_but_always_faulty() {
        let m = FaultModel::from_error_rate(1.0).expect("valid");
        assert!((m.error_rate() - MAX_EFFECTIVE_RATE).abs() < 1e-12);
        let mut inj = FaultInjector::new(m, 3);
        // Full-width product: fault positions map one-to-one.
        let product = 3i64 << 60;
        let mut faulty = 0;
        for _ in 0..2000 {
            if inj.corrupt_product(product) != product {
                faulty += 1;
            }
        }
        assert!(faulty >= 1990, "expected ~all faulty, got {faulty}/2000");
    }

    #[test]
    fn observed_rate_matches_requested_rate() {
        for &er in &[0.01, 0.1, 0.5, 0.9] {
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(er).expect("valid"), 99);
            for _ in 0..20_000 {
                // Full-width product: observed rate matches the knob exactly.
                inj.corrupt_product(0x7123_4567_89ab_cdef);
            }
            let observed = inj.stats().observed_error_rate();
            assert!(
                (observed - er).abs() < 0.02,
                "er = {er}, observed = {observed}"
            );
        }
    }

    #[test]
    fn sign_bit_never_flips() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).expect("valid"), 5);
        for i in 0..20_000i64 {
            let p = i * 31_415_926;
            let c = inj.corrupt_product(p);
            assert_eq!(c < 0, p < 0, "sign changed: {p:#x} -> {c:#x}");
        }
        assert_eq!(inj.stats().bit_flips[SIGN_BIT], 0);
    }

    #[test]
    fn immune_lsbs_never_flip() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.9).expect("valid"), 6);
        for i in 0..20_000i64 {
            let p = i * 2_718_281;
            let c = inj.corrupt_product(p);
            assert_eq!((c ^ p) & 0xff, 0, "an immune LSB flipped: {p:#x} -> {c:#x}");
        }
        for bit in 0..IMMUNE_LSBS {
            assert_eq!(inj.stats().bit_flips[bit], 0);
        }
    }

    #[test]
    fn fault_locations_are_stochastic() {
        // The same operands must not always fault in the same place —
        // the paper's core §II observation.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 8);
        let product = 0x00ff_00ff_00ff_00ffi64;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            distinct.insert(inj.corrupt_product(product));
        }
        assert!(
            distinct.len() > 20,
            "only {} distinct faulty outputs",
            distinct.len()
        );
    }

    #[test]
    fn same_seed_reproduces_fault_sequence() {
        let model = FaultModel::from_error_rate(0.3).expect("valid");
        let mut a = FaultInjector::new(model.clone(), 42);
        let mut b = FaultInjector::new(model, 42);
        for i in 0..5000 {
            assert_eq!(a.corrupt_product(i * 7919), b.corrupt_product(i * 7919));
        }
    }

    #[test]
    fn bitwise_rates_follow_fig1_shape() {
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.5).expect("valid"), 11);
        for _ in 0..100_000 {
            inj.corrupt_product(0x0f0f_0f0f_0f0f_0f0f);
        }
        let rates = inj.stats().bitwise_error_rates();
        let peak = BitErrorProfile::fig1().peak_bit();
        assert!(rates[peak] > rates[15], "peak bit should dominate low bits");
        assert!(rates[peak] > rates[60], "peak bit should dominate top bits");
        assert_eq!(rates[SIGN_BIT], 0.0);
    }

    #[test]
    fn at_voltage_uses_timing_model() {
        use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
        let timing = MultiplierTimingModel::broadwell_2_2ghz();
        let nominal = FaultModel::at_voltage(&timing, NOMINAL_CORE_VOLTAGE).expect("valid");
        assert!(nominal.error_rate() < 1e-9, "no faults at nominal voltage");
        let deep = FaultModel::at_voltage(
            &timing,
            NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-140)),
        )
        .expect("valid");
        assert!(deep.error_rate() > nominal.error_rate());
    }

    #[test]
    fn operand_specific_models_differ() {
        use crate::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
        let timing = MultiplierTimingModel::broadwell_2_2ghz();
        let v = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-120));
        let dense =
            FaultModel::at_voltage_for_operands(&timing, v, u64::MAX, u64::MAX).expect("valid");
        let sparse = FaultModel::at_voltage_for_operands(&timing, v, 1, 1).expect("valid");
        assert!(
            dense.error_rate() > sparse.error_rate(),
            "dense operands must fault more: {} vs {}",
            dense.error_rate(),
            sparse.error_rate()
        );
    }

    #[test]
    fn near_zero_products_are_unprotected() {
        // Paper §IX "Limitations": since LSBs cannot flip, values very
        // close to zero are not protected.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 13);
        for p in [0i64, 1, -1, 37, -200, 255] {
            for _ in 0..50 {
                assert_eq!(inj.corrupt_product(p), p, "tiny product {p} faulted");
            }
        }
    }

    #[test]
    fn faults_stay_within_active_width_plus_ripple() {
        // No switching activity above the product's top column ⇒ faults
        // stay within the active width, except rare carry-ripple faults
        // that reach at most DEFAULT_RIPPLE_SPAN bits higher.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).expect("valid"), 14);
        let product = 1i64 << 20; // active width 21
        let mut in_width = 0u32;
        let mut rippled = 0u32;
        for _ in 0..2000 {
            let c = inj.corrupt_product(product);
            let diff = (c ^ product) as u64;
            assert_eq!(
                diff >> (21 + DEFAULT_RIPPLE_SPAN + 1),
                0,
                "fault too high: {diff:#x}"
            );
            if diff >> 23 != 0 {
                rippled += 1;
            } else if diff != 0 {
                in_width += 1;
            }
        }
        assert!(in_width > rippled, "in-width faults must dominate");
        assert!(rippled > 0, "the catastrophic tail must exist");
    }

    #[test]
    fn most_faults_are_small_relative_errors() {
        // The paper's FANN-integrated tool mostly perturbs low-significance
        // mantissa bits; verify the median faulty deviation is small at the
        // paper's er = 0.1 operating point (where faults are single flips).
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.1).expect("valid"), 15);
        let product = 1i64 << 40;
        let mut rel_errors: Vec<f64> = (0..40_000)
            .filter_map(|_| {
                let c = inj.corrupt_product(product);
                if c == product {
                    None
                } else {
                    Some(((c - product).abs() as f64) / (product as f64))
                }
            })
            .collect();
        rel_errors.sort_by(f64::total_cmp);
        let median = rel_errors[rel_errors.len() / 2];
        assert!(median < 0.05, "median relative error {median} too large");
        // ... but the tail must contain significant deviations, or the
        // defense would never move the decision boundary.
        let p95 = rel_errors[rel_errors.len() * 95 / 100];
        assert!(p95 > 1e-4, "p95 relative error {p95} too small");
    }

    #[test]
    fn gap_sampler_matches_per_draw_oracle() {
        // The ISSUE's statistical bar: the geometric-skip sampler and the
        // per-draw Bernoulli oracle must agree on the observed error rate to
        // within ±0.02 over 20k draws at each probed rate.
        for &er in &[0.01, 0.1, 0.5] {
            let model = FaultModel::from_error_rate(er).expect("valid");
            let mut geo = FaultInjector::new(model.clone(), 99);
            let mut oracle = PerDrawInjector::new(model, 99);
            for _ in 0..20_000 {
                // Full-width product: observed rate matches the knob exactly.
                geo.corrupt_product(0x7123_4567_89ab_cdef);
                oracle.corrupt_product(0x7123_4567_89ab_cdef);
            }
            let g = geo.stats().observed_error_rate();
            let o = oracle.stats().observed_error_rate();
            assert!((g - er).abs() < 0.02, "er = {er}, geometric observed {g}");
            assert!((o - er).abs() < 0.02, "er = {er}, per-draw observed {o}");
            assert!((g - o).abs() < 0.02, "samplers disagree: {g} vs {o}");
        }
    }

    #[test]
    fn gap_sampler_absorbs_near_zero_like_per_draw() {
        // Interleave wide and near-zero products: fault events that land on
        // a near-zero product are absorbed by both samplers, so the observed
        // (wide-product) fault counts must still agree.
        let er = 0.3;
        let model = FaultModel::from_error_rate(er).expect("valid");
        let mut geo = FaultInjector::new(model.clone(), 7);
        let mut oracle = PerDrawInjector::new(model, 7);
        for i in 0..40_000i64 {
            let p = if i % 2 == 0 { 0x7123_4567_89ab_cdef } else { 3 };
            assert_eq!(geo.corrupt_product(3), 3, "near-zero product faulted");
            geo.corrupt_product(p);
            oracle.corrupt_product(3);
            oracle.corrupt_product(p);
        }
        let g = geo.stats().observed_error_rate();
        let o = oracle.stats().observed_error_rate();
        // Half the events are absorbed twice over (¾ of products are
        // near-zero), so the observed rate sits near er/4 for both.
        assert!((g - o).abs() < 0.01, "samplers disagree: {g} vs {o}");
        assert!((g - er / 4.0).abs() < 0.01, "geometric observed {g}");
    }

    #[test]
    fn gap_sampler_fig1_shape_matches_per_draw() {
        // Where the faults land must be untouched by how fault timing is
        // sampled: the geometric sampler (thinned tail) and the per-draw
        // oracle (full tail scan) implement one per-bit law, so their
        // bitwise rate profiles over the same workload stay close.
        let model = FaultModel::from_error_rate(0.2).expect("valid");
        let mut geo = FaultInjector::new(model.clone(), 21);
        let mut oracle = PerDrawInjector::new(model, 21);
        for _ in 0..50_000 {
            geo.corrupt_product(0x0f0f_0f0f_0f0f_0f0f);
            oracle.corrupt_product(0x0f0f_0f0f_0f0f_0f0f);
        }
        let g = geo.stats().bitwise_error_rates();
        let o = oracle.stats().bitwise_error_rates();
        for bit in 0..OUTPUT_BITS {
            assert!(
                (g[bit] - o[bit]).abs() < 0.01,
                "bit {bit} rates diverge: {} vs {}",
                g[bit],
                o[bit]
            );
        }
    }

    #[test]
    fn thinned_tail_matches_full_scan_on_multi_flip_events() {
        // At a deep-undervolt rate most events happen and the independent
        // tail fires often, so the *number* of flips per faulty product is
        // sensitive to how the tail is walked. The thinned walk (geometric
        // skips under the max-probability envelope) must reproduce the full
        // scan's mean flip multiplicity, not just the event rate.
        let model = FaultModel::from_error_rate(0.9).expect("valid");
        let mut geo = FaultInjector::new(model.clone(), 33);
        let mut oracle = PerDrawInjector::new(model, 33);
        let product = 0x7fff_ffff_ffff_fff0i64;
        for _ in 0..50_000 {
            geo.corrupt_product(product);
            oracle.corrupt_product(product);
        }
        let flips_per_fault =
            |s: &FaultStats| s.bit_flips.iter().map(|&c| c as f64).sum::<f64>() / s.faulty as f64;
        let g = flips_per_fault(&geo.stats());
        let o = flips_per_fault(oracle.stats());
        assert!(
            g > 1.0,
            "deep undervolt must produce multi-flip events: {g}"
        );
        assert!(
            (g - o).abs() < 0.05,
            "flip multiplicity diverges between tail samplers: {g} vs {o}"
        );
    }

    #[test]
    fn set_model_resamples_the_gap() {
        // Raising the rate must take effect immediately, not after the stale
        // (long) gap for the old rate has drained.
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(0.001).expect("valid"), 17);
        inj.set_model(FaultModel::from_error_rate(1.0).expect("valid"));
        let product = 3i64 << 60;
        let mut faulty = 0;
        for _ in 0..100 {
            if inj.corrupt_product(product) != product {
                faulty += 1;
            }
        }
        assert!(faulty >= 95, "stale gap survived set_model: {faulty}/100");
    }

    #[test]
    fn model_state_round_trips_bit_identically() {
        for &er in &[0.01, 0.1, 0.5, 1.0] {
            let m = FaultModel::from_error_rate(er)
                .expect("valid")
                .with_ripple(0.07, 9)
                .with_near_zero_width(20);
            let r = FaultModel::from_state(m.export_state()).expect("round trip");
            assert_eq!(m, r, "er = {er}: derived tables must rebuild exactly");
        }
        let exact = FaultModel::exact().with_near_zero_width(20);
        assert_eq!(
            FaultModel::from_state(exact.export_state()).expect("round trip"),
            exact
        );
    }

    #[test]
    fn injector_state_resumes_mid_gap_bit_identically() {
        let model = FaultModel::from_error_rate(0.2).expect("valid");
        let mut original = FaultInjector::new(model, 42);
        // Run partway into a gap so skip, stats, and RNG are all mid-flight.
        for i in 0..1777i64 {
            original.corrupt_product(i * 7919);
        }
        let mut resumed = FaultInjector::from_state(original.export_state()).expect("valid state");
        assert_eq!(original.stats(), resumed.stats(), "fold must carry over");
        for i in 1777..12_000i64 {
            assert_eq!(
                original.corrupt_product(i * 7919),
                resumed.corrupt_product(i * 7919),
                "corruption streams diverged at multiply {i}"
            );
        }
        assert_eq!(original.stats(), resumed.stats());
    }

    #[test]
    fn injector_state_rejects_corrupted_snapshots() {
        let good =
            FaultInjector::new(FaultModel::from_error_rate(0.3).expect("valid"), 7).export_state();
        let mut zero_rng = good.clone();
        zero_rng.rng = [0; 4];
        assert!(FaultInjector::from_state(zero_rng).is_err());
        let mut short_flips = good.clone();
        short_flips.stats.bit_flips.truncate(10);
        assert!(FaultInjector::from_state(short_flips).is_err());
        let mut bad_bit = good.clone();
        bad_bit.model.flips.push((64, 0.5));
        assert!(FaultInjector::from_state(bad_bit).is_err());
        let mut bad_rate = good.clone();
        bad_rate.model.error_rate = f64::NAN;
        assert!(FaultInjector::from_state(bad_rate).is_err());
        let mut bad_ripple = good.clone();
        bad_ripple.model.ripple_fraction = 1.5;
        assert!(FaultInjector::from_state(bad_ripple).is_err());
        let mut bad_counts = good;
        bad_counts.stats.faulty = bad_counts.stats.multiplies + 1;
        assert!(FaultInjector::from_state(bad_counts).is_err());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = FaultStats::new();
        a.multiplies = 10;
        a.faulty = 2;
        a.bit_flips[40] = 2;
        let mut b = FaultStats::new();
        b.multiplies = 5;
        b.faulty = 1;
        b.bit_flips[40] = 1;
        a.merge(&b);
        assert_eq!(a.multiplies, 15);
        assert_eq!(a.faulty, 3);
        assert_eq!(a.bit_flips[40], 3);
    }

    #[test]
    fn stats_accessors_summarise_flip_counts() {
        let mut s = FaultStats::new();
        assert!(s.is_empty());
        assert_eq!(s.total_flips(), 0);
        assert_eq!(s.flips_per_fault(), 0.0);
        s.multiplies = 20;
        s.faulty = 4;
        s.bit_flips[30] = 5;
        s.bit_flips[50] = 1;
        assert!(!s.is_empty());
        assert_eq!(s.total_flips(), 6);
        assert!((s.flips_per_fault() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn batch_stream_lanes_match_scalar_streams_bit_for_bit() {
        // The determinism contract of the whole batched path: lane `l` of a
        // BatchFaultStream must walk the identical corruption sequence — the
        // same fault timing, the same flip masks, the same statistics — as a
        // scalar FaultStream from the same seed, fed the same products in
        // the same order. Mixed product widths exercise absorption mid-lane.
        // The batch side is driven through lane_run() with span lengths that
        // cycle through awkward sizes (1, primes, a span longer than most
        // gaps) and a per-lane phase shift, so fault-free runs straddle span
        // boundaries every way the MAC loop can produce — and lanes are
        // drained whole-row sequentially, exactly like the batched MAC.
        const LANES: usize = 8;
        let total = 20_000usize;
        for &er in &[0.05, 0.3, 0.9] {
            let model = FaultModel::from_error_rate(er).expect("valid");
            let seeds: [u64; LANES] = std::array::from_fn(|l| 1000 + 37 * l as u64);
            let mut batch = BatchFaultStream::<LANES>::new(&model, seeds);
            let mut scalars: Vec<FaultStream<'_>> =
                seeds.iter().map(|&s| FaultStream::new(&model, s)).collect();
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            let products: Vec<[i64; LANES]> = (0..total)
                .map(|_| {
                    std::array::from_fn(|l| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if (x ^ l as u64).is_multiple_of(5) {
                            3 // near-zero: event must be absorbed identically
                        } else {
                            (x >> 1) as i64
                        }
                    })
                })
                .collect();
            let spans = [1usize, 3, 7, 64, 5, 257, 2, 11];
            for (l, scalar) in scalars.iter_mut().enumerate() {
                let mut pos = 0usize;
                let mut call = l; // phase-shift the span cycle per lane
                while pos < total {
                    let max = spans[call % spans.len()].min(total - pos);
                    call += 1;
                    match batch.lane_run(l, max as u64) {
                        None => {
                            // The whole span is fault-free in this lane.
                            for p in &products[pos..pos + max] {
                                assert_eq!(
                                    scalar.corrupt_product(p[l]),
                                    p[l],
                                    "er = {er}, lane {l}: scalar faulted inside a batch run"
                                );
                            }
                            pos += max;
                        }
                        Some(offset) => {
                            assert!((offset as usize) < max, "event outside the span");
                            for p in &products[pos..pos + offset as usize] {
                                assert_eq!(
                                    scalar.corrupt_product(p[l]),
                                    p[l],
                                    "er = {er}, lane {l}: scalar faulted before the event"
                                );
                            }
                            pos += offset as usize;
                            let p = products[pos][l];
                            assert_eq!(
                                batch.fault(l, p),
                                scalar.corrupt_product(p),
                                "er = {er}, lane {l} diverged at product {pos}"
                            );
                            pos += 1;
                        }
                    }
                }
            }
            for (l, scalar) in scalars.iter().enumerate() {
                assert_eq!(
                    batch.stats(l),
                    scalar.stats(),
                    "er = {er}, lane {l} statistics diverged"
                );
            }
        }
    }

    #[test]
    fn batch_stream_exact_model_never_faults() {
        let model = FaultModel::exact();
        let mut batch = BatchFaultStream::<4>::new(&model, [1, 2, 3, 4]);
        for l in 0..4 {
            for _ in 0..50 {
                assert_eq!(
                    batch.lane_run(l, 100),
                    None,
                    "exact model reported a fault event"
                );
            }
        }
        for l in 0..4 {
            let stats = batch.stats(l);
            assert_eq!(stats.faulty, 0);
            assert_eq!(stats.multiplies, 5_000);
        }
    }

    #[test]
    fn batch_lane_preserves_gap_distribution_and_flip_multiplicity() {
        // The statistical bar for lane-indexed fault application: one lane
        // of a batch stream, with a seed unrelated to any scalar run, must
        // reproduce the scalar injector's inter-fault gap law (two-sample
        // Kolmogorov–Smirnov) and its per-fault flip multiplicity.
        const LANES: usize = 8;
        let er = 0.2;
        let model = FaultModel::from_error_rate(er).expect("valid");
        let product = 0x7123_4567_89ab_cdefi64;

        // Inter-fault gaps observed on lane 5 of a batch stream.
        let seeds: [u64; LANES] = std::array::from_fn(|l| 0xb00c + l as u64);
        let mut batch = BatchFaultStream::<LANES>::new(&model, seeds);
        let mut batch_gaps = Vec::new();
        let mut since = 0u64;
        let mut remaining = 40_000u64;
        while remaining > 0 {
            match batch.lane_run(5, remaining) {
                None => {
                    // The whole span is fault-free on lane 5.
                    since += remaining;
                    remaining = 0;
                }
                Some(offset) => {
                    since += offset;
                    remaining -= offset;
                    // Gaps are counted between product-*changing* faults so
                    // the scalar observation below measures the same events.
                    if batch.fault(5, product) != product {
                        batch_gaps.push(since);
                        since = 0;
                    } else {
                        since += 1;
                    }
                    remaining -= 1;
                }
            }
        }

        // The same law observed through a scalar injector, different seed.
        let mut scalar = FaultInjector::new(model.clone(), 0xdead);
        let mut scalar_gaps = Vec::new();
        let mut since = 0u64;
        for _ in 0..40_000 {
            if scalar.corrupt_product(product) != product {
                scalar_gaps.push(since);
                since = 0;
            } else {
                since += 1;
            }
        }

        assert!(batch_gaps.len() > 2_000, "too few batch-lane fault events");
        assert!(scalar_gaps.len() > 2_000, "too few scalar fault events");

        // Two-sample KS statistic over the empirical gap CDFs. Gaps are
        // integers, so ties are heavy (P(gap = 0) = er): both pointers must
        // clear each distinct value before the CDFs are compared, or the
        // statistic inflates by the tie mass.
        batch_gaps.sort_unstable();
        scalar_gaps.sort_unstable();
        let (n, m) = (batch_gaps.len() as f64, scalar_gaps.len() as f64);
        let mut d: f64 = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < batch_gaps.len() || j < scalar_gaps.len() {
            let v = match (batch_gaps.get(i), scalar_gaps.get(j)) {
                (Some(&a), Some(&b)) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&b)) => b,
                (None, None) => break,
            };
            while i < batch_gaps.len() && batch_gaps[i] == v {
                i += 1;
            }
            while j < scalar_gaps.len() && scalar_gaps[j] == v {
                j += 1;
            }
            d = d.max((i as f64 / n - j as f64 / m).abs());
        }
        // α = 0.001 critical value c(α)·√((n+m)/nm) with c(0.001) ≈ 1.95;
        // deterministic seeds keep the run reproducible.
        let critical = 1.95 * ((n + m) / (n * m)).sqrt();
        assert!(
            d < critical,
            "gap-distribution KS statistic {d:.4} exceeds critical {critical:.4}"
        );

        // Flip multiplicity: per-fault mean bit flips must match the scalar
        // law (same apply_fault_event, but prove the lane plumbing kept it).
        let batch_stats = batch.stats(5);
        let scalar_stats = scalar.stats();
        assert!(
            (batch_stats.flips_per_fault() - scalar_stats.flips_per_fault()).abs() < 0.1,
            "flip multiplicity diverged: {} vs {}",
            batch_stats.flips_per_fault(),
            scalar_stats.flips_per_fault()
        );
        // And the observed per-lane fault rate stays on the knob.
        assert!(
            (batch_stats.observed_error_rate() - er).abs() < 0.02,
            "lane 5 observed rate {} for er = {er}",
            batch_stats.observed_error_rate()
        );
    }

    #[test]
    fn cached_model_equals_rebuild_and_samples_identically() {
        // The from_error_rate cache must be invisible: a cache hit, a fresh
        // rebuild that bypasses the cache, and a state round-trip all
        // produce equal models whose injectors sample bit-identically.
        let er = 0.137;
        let first = FaultModel::from_error_rate(er).expect("valid"); // builds + caches
        let cached = FaultModel::from_error_rate(er).expect("valid"); // cache hit
        let rebuilt = FaultModel::from_normalized_weights(er, BitErrorProfile::fig1_normalized())
            .expect("valid"); // never consults the cache
        assert_eq!(first, cached);
        assert_eq!(first, rebuilt);
        let mut a = FaultInjector::new(cached, 99);
        let mut b = FaultInjector::new(rebuilt, 99);
        for i in 0..10_000i64 {
            let p = (i * 0x5851_f42d) << 16;
            assert_eq!(a.corrupt_product(p), b.corrupt_product(p));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn place_mask_table_matches_arithmetic_placement() {
        // The precomputed flip-position table must be a pure lookup rewrite
        // of the clamp arithmetic: clearing the table (private-field
        // surgery only a test can do) forces the fallback path, and the
        // corruption stream must not move.
        let with_table = FaultModel::from_error_rate(0.4)
            .expect("valid")
            .with_near_zero_width(20);
        let mut without_table = with_table.clone();
        without_table.place_pos.clear();
        let mut a = FaultInjector::new(with_table, 1234);
        let mut b = FaultInjector::new(without_table, 1234);
        let mut x = 42u64;
        for _ in 0..30_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let p = (x >> 1) as i64;
            assert_eq!(a.corrupt_product(p), b.corrupt_product(p));
        }
        assert_eq!(a.stats(), b.stats());
    }

    proptest! {
        #[test]
        fn per_bit_probabilities_compose_to_error_rate(er in 0.001f64..0.999) {
            let m = FaultModel::from_error_rate(er).unwrap();
            let p_none: f64 = m.per_bit_probabilities().iter().map(|p| 1.0 - p).product();
            prop_assert!((1.0 - p_none - er).abs() < 1e-9,
                "P(any flip) = {} for er = {}", 1.0 - p_none, er);
        }

        #[test]
        fn gap_sampling_matches_bernoulli_rate(er in 0.01f64..0.6, seed in any::<u64>()) {
            // Property form of the oracle test: for any seed and rate, the
            // geometric-skip sampler's observed rate stays within a 5σ
            // binomial band of the requested Bernoulli rate.
            let n = 6000;
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(er).unwrap(), seed);
            for _ in 0..n {
                inj.corrupt_product(0x7123_4567_89ab_cdef);
            }
            let observed = inj.stats().observed_error_rate();
            let tol = 5.0 * (er * (1.0 - er) / f64::from(n)).sqrt() + 0.002;
            prop_assert!((observed - er).abs() < tol,
                "er = {}, observed = {}, tol = {}", er, observed, tol);
        }

        #[test]
        fn corruption_never_touches_immune_bits(
            product in any::<i64>(), er in 0.01f64..1.0, seed in any::<u64>()
        ) {
            let mut inj = FaultInjector::new(FaultModel::from_error_rate(er).unwrap(), seed);
            let c = inj.corrupt_product(product);
            let diff = (c ^ product) as u64;
            prop_assert_eq!(diff & 0xff, 0, "immune LSB flipped");
            prop_assert_eq!(diff >> 63, 0, "sign bit flipped");
        }
    }
}

//! Alpha-power-law gate-delay model.
//!
//! CMOS gate delay grows super-linearly as the supply voltage approaches the
//! transistor threshold voltage. The standard alpha-power model is
//!
//! ```text
//! t(V) ∝ V / (V − Vth)^α
//! ```
//!
//! with `α ≈ 1.3` for modern short-channel devices. Undervolting stretches
//! every combinational path by the same relative factor; paths whose
//! stretched arrival time exceeds the (unchanged) clock period suffer timing
//! violations — the stochastic faults the paper exploits.
//!
//! Temperature enters through the threshold voltage: `Vth` drops by roughly
//! 1–2 mV/°C, partially compensated by mobility degradation (the "mutual
//! compensation" of Filanovsky & Allam cited by the paper). The net modelled
//! effect is a mild speed-up of the critical path when hot, which shifts the
//! first-fault offset — the reason the paper's §IX calls for
//! temperature-aware calibration.

use crate::voltage::{Volts, NOMINAL_CORE_VOLTAGE};
use serde::{Deserialize, Serialize};

/// Default threshold voltage for the modelled Broadwell-class core.
pub const DEFAULT_VTH: Volts = Volts(0.35);

/// Default velocity-saturation index α.
pub const DEFAULT_ALPHA: f64 = 1.3;

/// Default die temperature, matching the paper's Fig. 1 caption (49 °C).
pub const DEFAULT_TEMP_C: f64 = 49.0;

/// Net threshold-voltage temperature coefficient after mobility
/// compensation, in volts per °C (negative: hotter ⇒ lower Vth).
pub const DEFAULT_VTH_TEMP_COEFF: f64 = -0.0004;

/// Reference temperature at which [`DEFAULT_VTH`] is specified.
pub const REFERENCE_TEMP_C: f64 = 25.0;

/// Gate-delay model parameterised by supply voltage and temperature.
///
/// # Example
///
/// ```
/// use shmd_volt::delay::DelayModel;
/// use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
///
/// let model = DelayModel::broadwell();
/// let slow = model.relative_delay(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-130)));
/// assert!(slow > 1.05 && slow < 1.20, "≈11% stretch at −130 mV, got {slow}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    vdd_nominal: Volts,
    vth_at_ref: Volts,
    alpha: f64,
    temp_c: f64,
    vth_temp_coeff: f64,
}

impl DelayModel {
    /// A model of the paper's i7-5557U (Broadwell) core at 49 °C.
    pub fn broadwell() -> DelayModel {
        DelayModel {
            vdd_nominal: NOMINAL_CORE_VOLTAGE,
            vth_at_ref: DEFAULT_VTH,
            alpha: DEFAULT_ALPHA,
            temp_c: DEFAULT_TEMP_C,
            vth_temp_coeff: DEFAULT_VTH_TEMP_COEFF,
        }
    }

    /// Returns a copy of the model at a different die temperature.
    #[must_use]
    pub fn with_temperature(mut self, temp_c: f64) -> DelayModel {
        self.temp_c = temp_c;
        self
    }

    /// Returns a copy with a shifted threshold voltage (process variation;
    /// used by per-device calibration).
    #[must_use]
    pub fn with_vth_shift(mut self, shift: Volts) -> DelayModel {
        self.vth_at_ref = Volts(self.vth_at_ref.as_f64() + shift.as_f64());
        self
    }

    /// The nominal supply voltage the model is normalised to.
    #[inline]
    pub fn vdd_nominal(&self) -> Volts {
        self.vdd_nominal
    }

    /// The die temperature in °C.
    #[inline]
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Effective threshold voltage at the model's temperature.
    pub fn vth_effective(&self) -> Volts {
        Volts(self.vth_at_ref.as_f64() + self.vth_temp_coeff * (self.temp_c - REFERENCE_TEMP_C))
    }

    /// Gate delay at `vdd` relative to the delay at the nominal voltage.
    ///
    /// Returns `1.0` at nominal, values `> 1` when undervolted, and
    /// `f64::INFINITY` at or below the effective threshold voltage (the
    /// datapath simply stops switching — the "system freeze" regime).
    pub fn relative_delay(&self, vdd: Volts) -> f64 {
        let vth = self.vth_effective().as_f64();
        let v = vdd.as_f64();
        if v <= vth {
            return f64::INFINITY;
        }
        let v0 = self.vdd_nominal.as_f64();
        let d = |v: f64| v / (v - vth).powf(self.alpha);
        d(v) / d(v0)
    }
}

impl Default for DelayModel {
    fn default() -> DelayModel {
        DelayModel::broadwell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voltage::Millivolts;
    use proptest::prelude::*;

    #[test]
    fn nominal_delay_is_unity() {
        let m = DelayModel::broadwell();
        assert!((m.relative_delay(NOMINAL_CORE_VOLTAGE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undervolting_slows_the_path() {
        let m = DelayModel::broadwell();
        let d103 = m.relative_delay(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-103)));
        let d145 = m.relative_delay(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-145)));
        assert!(d103 > 1.0);
        assert!(d145 > d103, "deeper undervolt ⇒ longer delay");
    }

    #[test]
    fn below_threshold_is_infinite() {
        let m = DelayModel::broadwell();
        assert_eq!(m.relative_delay(Volts(0.2)), f64::INFINITY);
    }

    #[test]
    fn hotter_die_is_faster_at_low_voltage() {
        // Net Vth reduction with temperature: delay shrinks slightly.
        let cold = DelayModel::broadwell().with_temperature(25.0);
        let hot = DelayModel::broadwell().with_temperature(80.0);
        let v = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-130));
        assert!(hot.relative_delay(v) < cold.relative_delay(v));
    }

    #[test]
    fn vth_shift_models_process_variation() {
        let fast = DelayModel::broadwell().with_vth_shift(Volts(-0.02));
        let slow = DelayModel::broadwell().with_vth_shift(Volts(0.02));
        let v = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-130));
        assert!(fast.relative_delay(v) < slow.relative_delay(v));
    }

    proptest! {
        #[test]
        fn delay_is_monotone_in_voltage(mv in -400i32..0) {
            let m = DelayModel::broadwell();
            let lo = m.relative_delay(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(mv)));
            let hi = m.relative_delay(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(mv + 1)));
            prop_assert!(lo >= hi, "lower voltage must not be faster: {} vs {}", lo, hi);
        }
    }
}

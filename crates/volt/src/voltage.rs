//! Voltage newtypes and the Intel MSR `0x150` offset encoding.
//!
//! Undervolting on Intel parts is performed by writing a signed offset into
//! the voltage-plane control MSR `0x150` (see Plundervolt, S&P 2020). The
//! [`MsrVoltageCommand`] type reproduces that encoding bit-for-bit so that a
//! deployment of Stochastic-HMDs could drive real hardware with values
//! produced by this crate's calibration flow.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The nominal core supply voltage of the paper's i7-5557U at 2.2 GHz.
pub const NOMINAL_CORE_VOLTAGE: Volts = Volts(1.18);

/// A supply voltage in volts.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Volts(pub f64);

impl Volts {
    /// Returns the voltage as a plain `f64` in volts.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Applies a (typically negative) millivolt offset.
    ///
    /// # Example
    ///
    /// ```
    /// use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
    /// let undervolted = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-130));
    /// assert!((undervolted.as_f64() - 1.05).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn with_offset(self, offset: Millivolts) -> Volts {
        Volts(self.0 + f64::from(offset.get()) / 1000.0)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

/// A voltage offset in millivolts. Negative values undervolt.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Millivolts(i32);

impl Millivolts {
    /// Creates an offset; negative values scale the supply voltage down.
    #[inline]
    pub const fn new(mv: i32) -> Millivolts {
        Millivolts(mv)
    }

    /// Returns the offset in millivolts.
    #[inline]
    pub const fn get(self) -> i32 {
        self.0
    }

    /// Returns `true` for offsets that lower the supply voltage.
    #[inline]
    pub const fn is_undervolt(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

impl From<i32> for Millivolts {
    fn from(mv: i32) -> Millivolts {
        Millivolts(mv)
    }
}

/// The voltage planes addressable through MSR `0x150`.
///
/// The paper sets the plane index to 0 (the CPU core plane) "to scale the
/// core's voltage exclusively".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum VoltagePlane {
    /// CPU core plane (index 0) — the plane the paper undervolts.
    CpuCore = 0,
    /// Integrated GPU plane (index 1).
    Gpu = 1,
    /// CPU cache/ring plane (index 2).
    Cache = 2,
    /// System agent / uncore plane (index 3).
    Uncore = 3,
    /// Analog I/O plane (index 4).
    AnalogIo = 4,
}

impl VoltagePlane {
    /// All planes, in MSR index order.
    pub const ALL: [VoltagePlane; 5] = [
        VoltagePlane::CpuCore,
        VoltagePlane::Gpu,
        VoltagePlane::Cache,
        VoltagePlane::Uncore,
        VoltagePlane::AnalogIo,
    ];

    /// The plane index as encoded in MSR `0x150` bits 40–42.
    #[inline]
    pub const fn index(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for VoltagePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VoltagePlane::CpuCore => "cpu-core",
            VoltagePlane::Gpu => "gpu",
            VoltagePlane::Cache => "cache",
            VoltagePlane::Uncore => "uncore",
            VoltagePlane::AnalogIo => "analog-io",
        };
        f.write_str(name)
    }
}

/// Error returned when an MSR voltage command cannot be built or parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseMsrCommandError {
    /// The offset exceeds the 11-bit signed range of the MSR encoding.
    OffsetOutOfRange(i32),
    /// The fixed identifier bits (63, 36–39) do not match a voltage command.
    NotAVoltageCommand(u64),
    /// The plane index field holds a value with no architectural plane.
    UnknownPlane(u8),
}

impl fmt::Display for ParseMsrCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMsrCommandError::OffsetOutOfRange(mv) => {
                write!(f, "offset {mv} mV exceeds the 11-bit signed MSR range")
            }
            ParseMsrCommandError::NotAVoltageCommand(raw) => {
                write!(f, "value {raw:#018x} is not an MSR 0x150 voltage command")
            }
            ParseMsrCommandError::UnknownPlane(idx) => {
                write!(f, "plane index {idx} has no architectural voltage plane")
            }
        }
    }
}

impl std::error::Error for ParseMsrCommandError {}

/// A write command for the undocumented Intel voltage-offset MSR `0x150`.
///
/// Layout (per the Plundervolt reverse engineering):
///
/// ```text
/// bit 63        : 1 (command valid)
/// bits 40..=42  : plane index
/// bit 36        : 1 = write, 0 = read
/// bits 21..=31  : signed offset in units of 1/1.024 mV (1024 steps per volt)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsrVoltageCommand {
    plane: VoltagePlane,
    offset: Millivolts,
}

impl MsrVoltageCommand {
    /// The architectural MSR address.
    pub const MSR_ADDRESS: u32 = 0x150;

    /// Largest offset magnitude representable in the 11-bit signed field.
    pub const MAX_OFFSET_MV: i32 = 999;

    /// Builds a write command for `plane` with the given millivolt offset.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMsrCommandError::OffsetOutOfRange`] when the offset
    /// does not fit the encoding.
    pub fn new(
        plane: VoltagePlane,
        offset: Millivolts,
    ) -> Result<MsrVoltageCommand, ParseMsrCommandError> {
        if offset
            .get()
            .checked_abs()
            .is_none_or(|a| a > Self::MAX_OFFSET_MV)
        {
            return Err(ParseMsrCommandError::OffsetOutOfRange(offset.get()));
        }
        Ok(MsrVoltageCommand { plane, offset })
    }

    /// The target voltage plane.
    #[inline]
    pub fn plane(self) -> VoltagePlane {
        self.plane
    }

    /// The requested offset.
    #[inline]
    pub fn offset(self) -> Millivolts {
        self.offset
    }

    /// Encodes the command as the raw 64-bit MSR value.
    pub fn encode(self) -> u64 {
        // Offset is expressed in 1/1024-volt steps, rounded to nearest.
        let steps = (f64::from(self.offset.get()) * 1.024).round() as i32;
        let field = (steps as u32) & 0x7ff; // 11-bit two's complement
        (1u64 << 63)
            | (u64::from(self.plane.index()) << 40)
            | (1u64 << 36)
            | (u64::from(field) << 21)
    }

    /// Decodes a raw MSR value back into a command.
    ///
    /// # Errors
    ///
    /// Returns an error if the fixed bits do not identify a write command or
    /// the plane index is unknown.
    pub fn decode(raw: u64) -> Result<MsrVoltageCommand, ParseMsrCommandError> {
        if raw >> 63 != 1 || (raw >> 36) & 1 != 1 {
            return Err(ParseMsrCommandError::NotAVoltageCommand(raw));
        }
        let plane_idx = ((raw >> 40) & 0x7) as u8;
        let plane = VoltagePlane::ALL
            .into_iter()
            .find(|p| p.index() == plane_idx)
            .ok_or(ParseMsrCommandError::UnknownPlane(plane_idx))?;
        // Sign-extend the 11-bit field.
        let field = ((raw >> 21) & 0x7ff) as i32;
        let steps = if field & 0x400 != 0 {
            field - 0x800
        } else {
            field
        };
        let mv = (f64::from(steps) / 1.024).round() as i32;
        Ok(MsrVoltageCommand {
            plane,
            offset: Millivolts::new(mv),
        })
    }
}

impl fmt::Display for MsrVoltageCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wrmsr 0x150 {:#018x}  ({} plane, {})",
            self.encode(),
            self.plane,
            self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_voltage_matches_paper() {
        assert_eq!(NOMINAL_CORE_VOLTAGE.as_f64(), 1.18);
    }

    #[test]
    fn offset_application() {
        let v = Volts(1.0).with_offset(Millivolts::new(-250));
        assert!((v.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn plane_indices_are_architectural() {
        assert_eq!(VoltagePlane::CpuCore.index(), 0);
        assert_eq!(VoltagePlane::AnalogIo.index(), 4);
    }

    #[test]
    fn msr_round_trip_paper_offset() {
        let cmd =
            MsrVoltageCommand::new(VoltagePlane::CpuCore, Millivolts::new(-130)).expect("valid");
        let decoded = MsrVoltageCommand::decode(cmd.encode()).expect("decodable");
        assert_eq!(decoded.plane(), VoltagePlane::CpuCore);
        assert_eq!(decoded.offset(), Millivolts::new(-130));
    }

    #[test]
    fn msr_encode_sets_fixed_bits() {
        let cmd = MsrVoltageCommand::new(VoltagePlane::Cache, Millivolts::new(-50)).expect("valid");
        let raw = cmd.encode();
        assert_eq!(raw >> 63, 1, "command-valid bit");
        assert_eq!((raw >> 36) & 1, 1, "write bit");
        assert_eq!((raw >> 40) & 0x7, 2, "plane index");
    }

    #[test]
    fn msr_rejects_out_of_range_offset() {
        let err = MsrVoltageCommand::new(VoltagePlane::CpuCore, Millivolts::new(-1500))
            .expect_err("should reject");
        assert_eq!(err, ParseMsrCommandError::OffsetOutOfRange(-1500));
    }

    #[test]
    fn msr_rejects_i32_min_without_overflow() {
        // Regression: abs() of i32::MIN overflows; must be a clean error.
        let err = MsrVoltageCommand::new(VoltagePlane::CpuCore, Millivolts::new(i32::MIN))
            .expect_err("should reject");
        assert_eq!(err, ParseMsrCommandError::OffsetOutOfRange(i32::MIN));
    }

    #[test]
    fn msr_decode_rejects_garbage() {
        assert!(matches!(
            MsrVoltageCommand::decode(0),
            Err(ParseMsrCommandError::NotAVoltageCommand(0))
        ));
    }

    #[test]
    fn msr_decode_rejects_unknown_plane() {
        let raw = (1u64 << 63) | (6u64 << 40) | (1u64 << 36);
        assert_eq!(
            MsrVoltageCommand::decode(raw),
            Err(ParseMsrCommandError::UnknownPlane(6))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Millivolts::new(-130)), "-130 mV");
        assert_eq!(format!("{}", Volts(1.18)), "1.180 V");
        assert_eq!(format!("{}", VoltagePlane::CpuCore), "cpu-core");
    }

    proptest! {
        #[test]
        fn msr_round_trips_all_offsets(mv in -999i32..=999, plane_idx in 0u8..5) {
            let plane = VoltagePlane::ALL[plane_idx as usize];
            let cmd = MsrVoltageCommand::new(plane, Millivolts::new(mv)).unwrap();
            let decoded = MsrVoltageCommand::decode(cmd.encode()).unwrap();
            prop_assert_eq!(decoded.plane(), plane);
            // 1/1.024 mV quantisation may shift by at most 1 mV.
            prop_assert!((decoded.offset().get() - mv).abs() <= 1);
        }
    }
}

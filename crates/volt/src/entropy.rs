//! Approximate entropy (ApEn) — the paper's stochasticity validation.
//!
//! §II validates that undervolting fault locations vary
//! non-deterministically across runs "using the approximate entropy test".
//! ApEn measures the regularity of a series: ~0 for constant or periodic
//! sequences, approaching `ln(alphabet size)` for i.i.d. uniform noise.

/// Computes the approximate entropy of a symbol series with pattern length
/// `m` and exact symbol matching (tolerance r = 0, appropriate for discrete
/// symbols such as fault bit positions).
///
/// Returns `ApEn(m) = Φ(m) − Φ(m+1)` where
/// `Φ(m) = (N−m+1)⁻¹ Σᵢ ln Cᵢᵐ`.
///
/// Returns `0.0` for series shorter than `m + 2`.
///
/// # Panics
///
/// Panics if `m == 0`.
///
/// # Example
///
/// ```
/// use shmd_volt::entropy::approximate_entropy;
///
/// let constant = vec![1u8; 100];
/// assert!(approximate_entropy(&constant, 2) < 1e-9);
/// ```
pub fn approximate_entropy(series: &[u8], m: usize) -> f64 {
    assert!(m > 0, "pattern length m must be positive");
    if series.len() < m + 2 {
        return 0.0;
    }
    phi(series, m) - phi(series, m + 1)
}

fn phi(series: &[u8], m: usize) -> f64 {
    let n = series.len() - m + 1;
    let mut total = 0.0;
    for i in 0..n {
        let mut matches = 0usize;
        for j in 0..n {
            if series[i..i + m] == series[j..j + m] {
                matches += 1;
            }
        }
        total += (matches as f64 / n as f64).ln();
    }
    total / n as f64
}

/// Convenience wrapper over boolean series (e.g. "was this multiplication
/// faulty?").
pub fn approximate_entropy_bits(series: &[bool], m: usize) -> f64 {
    let bytes: Vec<u8> = series.iter().map(|&b| u8::from(b)).collect();
    approximate_entropy(&bytes, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_series_has_zero_entropy() {
        assert!(approximate_entropy(&[7u8; 200], 2).abs() < 1e-9);
    }

    #[test]
    fn periodic_series_has_low_entropy() {
        let series: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
        assert!(approximate_entropy(&series, 2) < 0.01);
    }

    #[test]
    fn random_bits_approach_ln2() {
        let mut rng = StdRng::seed_from_u64(17);
        let series: Vec<u8> = (0..600).map(|_| rng.gen_range(0..2u8)).collect();
        let apen = approximate_entropy(&series, 2);
        assert!(
            (apen - std::f64::consts::LN_2).abs() < 0.1,
            "ApEn of random bits should approach ln 2, got {apen}"
        );
    }

    #[test]
    fn random_beats_periodic() {
        let mut rng = StdRng::seed_from_u64(3);
        let random: Vec<u8> = (0..400).map(|_| rng.gen_range(0..4u8)).collect();
        let periodic: Vec<u8> = (0..400).map(|i| (i % 4) as u8).collect();
        assert!(approximate_entropy(&random, 2) > approximate_entropy(&periodic, 2) + 0.5);
    }

    #[test]
    fn short_series_returns_zero() {
        assert_eq!(approximate_entropy(&[1, 2], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "pattern length m must be positive")]
    fn zero_m_panics() {
        let _ = approximate_entropy(&[1, 2, 3], 0);
    }

    #[test]
    fn bit_wrapper_matches_byte_version() {
        let bits = [true, false, true, true, false, false, true, false, true];
        let bytes: Vec<u8> = bits.iter().map(|&b| u8::from(b)).collect();
        assert_eq!(
            approximate_entropy_bits(&bits, 2),
            approximate_entropy(&bytes, 2)
        );
    }

    #[test]
    fn fault_injector_output_is_stochastic_by_apen() {
        // End-to-end §II validation: the fault-location series of an
        // undervolted multiplier has high approximate entropy.
        use crate::fault::{FaultInjector, FaultModel};
        let mut inj = FaultInjector::new(FaultModel::from_error_rate(1.0).unwrap(), 23);
        let product = 0x0aaa_5555_aaaa_5555i64;
        let series: Vec<u8> = (0..400)
            .map(|_| {
                let diff = (inj.corrupt_product(product) ^ product) as u64;
                (diff.trailing_zeros() % 64) as u8
            })
            .collect();
        let apen = approximate_entropy(&series, 1);
        assert!(
            apen > 1.0,
            "fault locations look deterministic: ApEn {apen}"
        );
    }
}

//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! annotations on report/data types — nothing actually serializes today,
//! and the build environment cannot reach crates.io. These derives expand
//! to nothing, keeping every annotation compiling (and documenting intent)
//! until real serialization lands with a vendored serde.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the small proptest surface the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / [`any`] / [`collection::vec`] /
//! [`string::string_regex`] strategies, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! inputs but is not minimised), and a fixed deterministic case count
//! ([`CASES`]) seeded from the test's module path, so failures reproduce
//! exactly run-to-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Number of cases each property runs.
pub const CASES: usize = 128;

/// Why a single property case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// The RNG driving strategy sampling.
pub type TestRunner = StdRng;

/// Builds the deterministic RNG for one property, seeded from its name.
pub fn test_rng(name: &str) -> TestRunner {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRunner) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRunner) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRunner) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRunner) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRunner) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRunner) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRunner) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRunner) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRunner) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Bounds for a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of `elem` samples.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.hi <= self.size.lo + 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies.

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Character pool mixing benign ASCII with separators and multi-byte
    /// code points — the corners parser fuzz tests care about.
    const POOL: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '1', '9', '.', '-', '+', '_', ' ', '\t', ',', ';', '"', '\'',
        '\n', '\r', '\\', '/', '#', 'é', '☃', '\u{7f}', '\u{0}',
    ];

    /// A strategy producing strings of bounded length.
    pub struct StringStrategy {
        max_len: usize,
    }

    /// Error parsing the regex (the stand-in accepts every pattern).
    #[derive(Clone, Copy, Debug)]
    pub struct StringRegexError;

    impl std::fmt::Display for StringRegexError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("unsupported string regex")
        }
    }

    impl std::error::Error for StringRegexError {}

    /// Strategy for strings matching a regex.
    ///
    /// The stand-in honours only the `.{lo,hi}` form (arbitrary characters
    /// with a length bound) — the single form used in this workspace — and
    /// treats anything else as "arbitrary string up to 64 chars".
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` mirrors the real proptest signature.
    pub fn string_regex(pattern: &str) -> Result<StringStrategy, StringRegexError> {
        let max_len = pattern
            .strip_prefix(".{")
            .and_then(|rest| rest.strip_suffix('}'))
            .and_then(|bounds| bounds.split(',').nth(1))
            .and_then(|hi| hi.trim().parse::<usize>().ok())
            .unwrap_or(64);
        Ok(StringStrategy { max_len })
    }

    impl Strategy for StringStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRunner) -> String {
            let len = rng.gen_range(0..=self.max_len);
            (0..len)
                .map(|_| POOL[rng.gen_range(0..POOL.len())])
                .collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $(&$arg,)+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {case}: {msg}\ninputs: {inputs}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} != {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} == {} ({:?})", stringify!($a), stringify!($b), a);
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -10i32..10, y in 0.0f64..1.0) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_size(xs in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, -1.0f32..1.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    fn string_regex_honours_length_bound() {
        let strat = crate::string::string_regex(".{0,300}").unwrap();
        let mut rng = crate::test_rng("string_regex_honours_length_bound");
        for _ in 0..100 {
            let s = crate::Strategy::sample(&strat, &mut rng);
            assert!(s.chars().count() <= 300);
        }
    }

    #[test]
    fn any_produces_varied_values() {
        let mut rng = crate::test_rng("any_produces_varied_values");
        let vals: std::collections::HashSet<u64> = (0..50)
            .map(|_| crate::Strategy::sample(&any::<u64>(), &mut rng))
            .collect();
        assert!(vals.len() > 40);
    }

    #[test]
    fn runs_are_deterministic() {
        let sample = |_: ()| {
            let mut rng = crate::test_rng("determinism-probe");
            (0..10)
                .map(|_| crate::Strategy::sample(&(0u64..1000), &mut rng))
                .collect::<Vec<u64>>()
        };
        assert_eq!(sample(()), sample(()));
    }
}

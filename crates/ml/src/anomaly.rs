//! Unsupervised one-class anomaly scoring over feature vectors.
//!
//! Tang et al. (RAID'14) detect malware as a *deviation from learned
//! benign behaviour*: the model only ever sees benign executions at
//! training time, and anything whose microarchitectural footprint sits
//! far from that baseline is flagged. That gives an RHMD-style ensemble a
//! base learner with a genuinely different failure surface from the
//! supervised members — an adversarial sample crafted against a
//! discriminative boundary does not automatically sit inside the benign
//! density.
//!
//! [`AnomalyScorer`] is the deterministic, dependency-free version of
//! that idea: per-feature mean/std moments fitted on benign rows only,
//! an anomaly *distance* that is the RMS of the standardized per-feature
//! deviations, and a decision threshold placed at a configurable quantile
//! of the training distances. [`AnomalyScorer::score`] maps the distance
//! through a logistic centred on that threshold so callers get a score in
//! `(0, 1)` with the usual `>= 0.5` ⇒ anomalous convention — the same
//! calling convention every other detector in the workspace uses.

use crate::FitError;
use std::fmt;

/// Default training-distance quantile at which the decision threshold is
/// placed: 95% of the benign training rows score below it.
pub const DEFAULT_ANOMALY_QUANTILE: f64 = 0.95;

/// Configuration for [`AnomalyScorer::fit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnomalyConfig {
    /// Quantile of the benign training distances used as the decision
    /// threshold. Clamped into `[0.5, 1.0]` at fit time.
    pub quantile: f64,
}

impl Default for AnomalyConfig {
    fn default() -> AnomalyConfig {
        AnomalyConfig {
            quantile: DEFAULT_ANOMALY_QUANTILE,
        }
    }
}

/// A one-class (benign-only) anomaly detector over fixed-width feature
/// vectors.
///
/// Fit on benign rows only; [`AnomalyScorer::score`] returns a value in
/// `(0, 1)` where `>= 0.5` means the row deviates from the learned benign
/// envelope more than the configured quantile of the training set did.
#[derive(Clone, Debug, PartialEq)]
pub struct AnomalyScorer {
    /// Per-feature training means.
    means: Vec<f64>,
    /// Per-feature training standard deviations, floored away from zero so
    /// constant features never divide by zero.
    stds: Vec<f64>,
    /// Decision threshold on the anomaly distance.
    threshold: f64,
    /// Logistic slope: fixed from the training-distance spread so the
    /// score saturates smoothly rather than step-functioning.
    scale: f64,
}

impl fmt::Display for AnomalyScorer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AnomalyScorer(dim={}, threshold={:.4})",
            self.means.len(),
            self.threshold
        )
    }
}

/// Smallest standard deviation used for standardization; constant
/// features contribute a finite deviation instead of dividing by zero.
const STD_FLOOR: f64 = 1e-6;

impl AnomalyScorer {
    /// Fits the benign envelope on `benign` rows.
    ///
    /// # Errors
    ///
    /// - [`FitError::EmptyTrainingSet`] when `benign` is empty;
    /// - [`FitError::RaggedRow`] when a row's width differs from the
    ///   first row's.
    pub fn fit(benign: &[Vec<f32>], config: &AnomalyConfig) -> Result<AnomalyScorer, FitError> {
        if benign.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let width = benign[0].len();
        for (i, row) in benign.iter().enumerate() {
            if row.len() != width {
                return Err(FitError::RaggedRow(i));
            }
        }
        let n = benign.len() as f64;
        let mut means = vec![0.0f64; width];
        for row in benign {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += f64::from(x);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0f64; width];
        for row in benign {
            for ((s, m), &x) in stds.iter_mut().zip(&means).zip(row) {
                let d = f64::from(x) - *m;
                *s += d * d;
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt().max(STD_FLOOR);
        }
        let scorer = AnomalyScorer {
            means,
            stds,
            threshold: 0.0,
            scale: 1.0,
        };
        let mut distances: Vec<f64> = benign.iter().map(|row| scorer.distance(row)).collect();
        distances.sort_by(f64::total_cmp);
        let q = config.quantile.clamp(0.5, 1.0);
        let rank = ((distances.len() as f64 - 1.0) * q).round() as usize;
        let threshold = distances[rank.min(distances.len() - 1)];
        // Slope from the training spread: one spread past the threshold
        // saturates the logistic to ~0.73, three spreads to ~0.95.
        let spread = (distances[distances.len() - 1] - distances[0]).max(STD_FLOOR);
        Ok(AnomalyScorer {
            threshold,
            scale: spread,
            ..scorer
        })
    }

    /// Feature width the scorer was fitted on.
    pub fn input_dim(&self) -> usize {
        self.means.len()
    }

    /// Raw anomaly distance: RMS of the standardized per-feature
    /// deviations from the benign envelope. Rows of the wrong width
    /// compare only the overlapping prefix and count the missing features
    /// as maximally deviant, so the distance is total rather than partial.
    pub fn distance(&self, features: &[f32]) -> f64 {
        let width = self.means.len();
        if width == 0 {
            return 0.0;
        }
        let mut sum = 0.0f64;
        for i in 0..width {
            let z = match features.get(i) {
                Some(&x) if x.is_finite() => (f64::from(x) - self.means[i]) / self.stds[i],
                // Missing or non-finite feature: maximally deviant.
                _ => 1.0 / STD_FLOOR,
            };
            sum += z * z;
        }
        (sum / width as f64).sqrt()
    }

    /// Anomaly score in `(0, 1)`: a logistic over the distance centred on
    /// the fitted threshold, so `>= 0.5` ⇔ the distance exceeds the
    /// training quantile.
    pub fn score(&self, features: &[f32]) -> f64 {
        let d = self.distance(features);
        1.0 / (1.0 + (-(d - self.threshold) / self.scale).exp())
    }

    /// Whether the row deviates from the benign envelope past the fitted
    /// threshold.
    pub fn is_anomalous(&self, features: &[f32]) -> bool {
        self.score(features) >= 0.5
    }

    /// Approximate model size in bytes (for the workspace-wide
    /// `size_bytes` accounting convention).
    pub fn size_bytes(&self) -> usize {
        (self.means.len() + self.stds.len() + 2) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_cluster() -> Vec<Vec<f32>> {
        // A tight cluster around (1, 2) with mild jitter.
        (0..40)
            .map(|i| {
                let j = (i % 7) as f32 * 0.01;
                vec![1.0 + j, 2.0 - j]
            })
            .collect()
    }

    #[test]
    fn benign_rows_score_low_outliers_high() {
        let scorer = AnomalyScorer::fit(&benign_cluster(), &AnomalyConfig::default()).unwrap();
        assert!(scorer.score(&[1.0, 2.0]) < 0.5);
        assert!(scorer.score(&[50.0, -50.0]) > 0.5);
        assert!(scorer.is_anomalous(&[50.0, -50.0]));
    }

    #[test]
    fn fit_is_deterministic() {
        let a = AnomalyScorer::fit(&benign_cluster(), &AnomalyConfig::default()).unwrap();
        let b = AnomalyScorer::fit(&benign_cluster(), &AnomalyConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.score(&[3.0, 3.0]).to_bits(),
            b.score(&[3.0, 3.0]).to_bits()
        );
    }

    #[test]
    fn empty_training_set_is_a_typed_error() {
        assert_eq!(
            AnomalyScorer::fit(&[], &AnomalyConfig::default()),
            Err(FitError::EmptyTrainingSet)
        );
    }

    #[test]
    fn ragged_rows_are_a_typed_error() {
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        assert_eq!(
            AnomalyScorer::fit(&rows, &AnomalyConfig::default()),
            Err(FitError::RaggedRow(1))
        );
    }

    #[test]
    fn wrong_width_and_non_finite_rows_read_as_anomalous() {
        let scorer = AnomalyScorer::fit(&benign_cluster(), &AnomalyConfig::default()).unwrap();
        assert!(scorer.is_anomalous(&[1.0]), "short row");
        assert!(scorer.is_anomalous(&[f32::NAN, 2.0]), "NaN feature");
        assert!(!scorer.score(&[f32::INFINITY, 2.0]).is_nan());
    }

    #[test]
    fn constant_features_never_divide_by_zero() {
        let rows: Vec<Vec<f32>> = (0..10).map(|_| vec![3.0, 3.0]).collect();
        let scorer = AnomalyScorer::fit(&rows, &AnomalyConfig::default()).unwrap();
        assert!(scorer.score(&[3.0, 3.0]).is_finite());
        assert!(scorer.score(&[9.0, 9.0]) > scorer.score(&[3.0, 3.0]));
    }
}

//! Random forest (bagged CART trees) — a stronger non-differentiable
//! attacker model.
//!
//! The paper's HMD lineage (EnsembleHMD, RAID 2015 / TDSC 2018) shows
//! ensembles of specialised detectors outperform single models; the same
//! holds for the *attacker's proxy*. A random forest averages bootstrap
//! trees over random feature subsets, which smooths the staircase boundary
//! of a single CART tree and resists the label noise a Stochastic-HMD
//! feeds it — the natural "next move" for an adversary whose single-tree
//! proxy fails.

use crate::tree::{DecisionTree, TreeConfig};
use crate::{validate, FitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for random-forest training.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of bootstrap trees.
    pub trees: usize,
    /// Per-tree CART parameters.
    pub tree: TreeConfig,
    /// Fraction of features each tree sees (√d-style subsampling).
    pub feature_fraction: f64,
    /// Bootstrap/feature-sampling seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> ForestConfig {
        ForestConfig {
            trees: 25,
            tree: TreeConfig::default(),
            feature_fraction: 0.6,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    members: Vec<ForestMember>,
    width: usize,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ForestMember {
    /// Which input columns this tree consumes.
    features: Vec<usize>,
    tree: DecisionTree,
}

impl RandomForest {
    /// Fits a forest of bootstrap trees over random feature subsets.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] for unusable training data, including the
    /// degenerate case where every bootstrap draw is single-class.
    pub fn fit(
        inputs: &[Vec<f32>],
        labels: &[bool],
        config: &ForestConfig,
    ) -> Result<RandomForest, FitError> {
        let width = validate(inputs, labels)?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xf0e5_7000);
        let per_tree = ((width as f64 * config.feature_fraction).ceil() as usize).clamp(1, width);
        let mut members = Vec::with_capacity(config.trees.max(1));
        for _ in 0..config.trees.max(1) {
            // Bootstrap sample (with replacement).
            let sample: Vec<usize> = (0..inputs.len())
                .map(|_| rng.gen_range(0..inputs.len()))
                .collect();
            // Random feature subset (without replacement).
            let mut features: Vec<usize> = (0..width).collect();
            for i in (1..features.len()).rev() {
                features.swap(i, rng.gen_range(0..=i));
            }
            features.truncate(per_tree);
            features.sort_unstable();

            let sub_inputs: Vec<Vec<f32>> = sample
                .iter()
                .map(|&i| features.iter().map(|&f| inputs[i][f]).collect())
                .collect();
            let sub_labels: Vec<bool> = sample.iter().map(|&i| labels[i]).collect();
            match DecisionTree::fit(&sub_inputs, &sub_labels, &config.tree) {
                Ok(tree) => members.push(ForestMember { features, tree }),
                // A single-class bootstrap draw yields no tree; skip it.
                Err(FitError::SingleClass) => continue,
                Err(e) => return Err(e),
            }
        }
        if members.is_empty() {
            return Err(FitError::SingleClass);
        }
        Ok(RandomForest { members, width })
    }

    /// `P(malware | x)`: the mean vote of the member trees.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict_proba(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.width, "feature width mismatch");
        let total: f64 = self
            .members
            .iter()
            .map(|m| {
                let sub: Vec<f32> = m.features.iter().map(|&f| x[f]).collect();
                m.tree.predict_proba(&sub)
            })
            .sum();
        total / self.members.len() as f64
    }

    /// Hard decision at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Number of fitted member trees.
    pub fn tree_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ConfusionMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let centre = if malware { 0.7 } else { 0.3 };
            inputs.push(vec![
                centre + rng.gen_range(-0.2..0.2),
                centre + rng.gen_range(-0.25..0.25),
                rng.gen_range(0.0..1.0),
            ]);
            labels.push(malware);
        }
        (inputs, labels)
    }

    #[test]
    fn forest_learns_blobs() {
        let (inputs, labels) = blobs(300, 1);
        let forest = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).expect("fit");
        let m = ConfusionMatrix::from_pairs(
            inputs
                .iter()
                .zip(&labels)
                .map(|(x, &y)| (forest.predict(x), y)),
        );
        assert!(m.accuracy() > 0.9, "accuracy {}", m.accuracy());
        assert!(forest.tree_count() > 20);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (inputs, labels) = blobs(120, 2);
        let a = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (inputs, labels) = blobs(120, 3);
        let a = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).unwrap();
        let cfg = ForestConfig {
            seed: 1,
            ..ForestConfig::default()
        };
        let b = RandomForest::fit(&inputs, &labels, &cfg).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn forest_is_noise_robust() {
        // The reason an adaptive attacker reaches for a forest: flip 10% of
        // labels and compare a single deep tree against the forest on clean
        // evaluation labels.
        let (inputs, labels) = blobs(400, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let noisy: Vec<bool> = labels
            .iter()
            .map(|&l| if rng.gen_bool(0.10) { !l } else { l })
            .collect();
        let tree = DecisionTree::fit(&inputs, &noisy, &TreeConfig::default()).unwrap();
        let forest = RandomForest::fit(&inputs, &noisy, &ForestConfig::default()).unwrap();
        let acc = |pred: &dyn Fn(&[f32]) -> bool| {
            ConfusionMatrix::from_pairs(inputs.iter().zip(&labels).map(|(x, &y)| (pred(x), y)))
                .accuracy()
        };
        let tree_acc = acc(&|x| tree.predict(x));
        let forest_acc = acc(&|x| forest.predict(x));
        assert!(
            forest_acc >= tree_acc - 0.01,
            "forest should absorb label noise at least as well: {forest_acc} vs {tree_acc}"
        );
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (inputs, labels) = blobs(100, 5);
        let forest = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).unwrap();
        for x in &inputs {
            let p = forest.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_bad_data() {
        assert!(RandomForest::fit(&[], &[], &ForestConfig::default()).is_err());
        let inputs = vec![vec![1.0], vec![2.0]];
        assert!(RandomForest::fit(&inputs, &[true, true], &ForestConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (inputs, labels) = blobs(60, 6);
        let forest = RandomForest::fit(&inputs, &labels, &ForestConfig::default()).unwrap();
        let _ = forest.predict(&[0.1]);
    }
}

//! Feature standardisation.
//!
//! Logistic regression and MLP proxies converge faster on standardised
//! features (zero mean, unit variance per column). The scaler is fitted on
//! the attacker-training fold and applied to everything after — fitting it
//! on test data would leak.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error fitting a [`StandardScaler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitScalerError {
    /// No rows supplied.
    Empty,
    /// A row's width differs from the first row's.
    RaggedRow(usize),
}

impl fmt::Display for FitScalerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitScalerError::Empty => f.write_str("no rows to fit on"),
            FitScalerError::RaggedRow(i) => write!(f, "row {i} has inconsistent width"),
        }
    }
}

impl std::error::Error for FitScalerError {}

/// Per-column mean/std standardiser.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-column statistics.
    ///
    /// Constant columns get a standard deviation of 1 so transformation is
    /// always well defined.
    ///
    /// # Errors
    ///
    /// Returns [`FitScalerError`] for empty or ragged input.
    pub fn fit(rows: &[Vec<f32>]) -> Result<StandardScaler, FitScalerError> {
        if rows.is_empty() {
            return Err(FitScalerError::Empty);
        }
        let width = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != width {
                return Err(FitScalerError::RaggedRow(i));
            }
        }
        let n = rows.len() as f64;
        let mut means = vec![0.0f64; width];
        for r in rows {
            for (m, &v) in means.iter_mut().zip(r) {
                *m += f64::from(v);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0f64; width];
        for r in rows {
            for ((s, &v), m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (f64::from(v) - m) * (f64::from(v) - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(StandardScaler { means, stds })
    }

    /// Standardises one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches the fitted width.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.means.len(), "feature width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (m, s))| ((f64::from(v) - m) / s) as f32)
            .collect()
    }

    /// Standardises many rows.
    ///
    /// # Panics
    ///
    /// Panics if any row width mismatches the fitted width.
    pub fn transform_all(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Number of feature columns the scaler was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standardises_to_zero_mean_unit_variance() {
        let rows = vec![vec![1.0f32, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let scaler = StandardScaler::fit(&rows).expect("fits");
        let out = scaler.transform_all(&rows);
        for col in 0..2 {
            let mean: f32 = out.iter().map(|r| r[col]).sum::<f32>() / 3.0;
            let var: f32 = out.iter().map(|r| (r[col] - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-5, "column {col} var {var}");
        }
    }

    #[test]
    fn constant_columns_are_safe() {
        let rows = vec![vec![7.0f32], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&rows).expect("fits");
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[8.0]), vec![1.0]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert_eq!(StandardScaler::fit(&[]), Err(FitScalerError::Empty));
        let rows = vec![vec![1.0f32], vec![1.0, 2.0]];
        assert_eq!(
            StandardScaler::fit(&rows),
            Err(FitScalerError::RaggedRow(1))
        );
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn transform_checks_width() {
        let scaler = StandardScaler::fit(&[vec![1.0f32, 2.0]]).unwrap();
        let _ = scaler.transform(&[1.0]);
    }

    proptest! {
        #[test]
        fn transform_is_affine(
            a in -100.0f32..100.0, b in -100.0f32..100.0, x in -100.0f32..100.0
        ) {
            prop_assume!((a - b).abs() > 0.1);
            let scaler = StandardScaler::fit(&[vec![a], vec![b]]).unwrap();
            // Affine: midpoint maps to the midpoint of the images.
            let fa = scaler.transform(&[a])[0];
            let fb = scaler.transform(&[b])[0];
            let fm = scaler.transform(&[(a + b) / 2.0])[0];
            prop_assert!((fm - (fa + fb) / 2.0).abs() < 1e-3);
            let _ = x;
        }
    }
}

//! Logistic regression — the paper's "simple" attacker proxy model.

use crate::{validate, FitError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for logistic-regression training.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> LogisticConfig {
        LogisticConfig {
            learning_rate: 2.0,
            epochs: 1500,
            l2: 1e-5,
        }
    }
}

/// A fitted logistic-regression model.
///
/// Scores are `P(malware | x) = σ(w·x + b)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Fits a model by full-batch gradient descent on the logistic loss.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] for empty, mismatched, ragged, or
    /// single-class training data.
    pub fn fit(
        inputs: &[Vec<f32>],
        labels: &[bool],
        config: &LogisticConfig,
    ) -> Result<LogisticRegression, FitError> {
        let width = validate(inputs, labels)?;
        let n = inputs.len() as f64;
        let mut weights = vec![0.0f64; width];
        let mut bias = 0.0f64;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0f64; width];
            let mut grad_b = 0.0f64;
            for (x, &y) in inputs.iter().zip(labels) {
                let z: f64 = bias
                    + weights
                        .iter()
                        .zip(x)
                        .map(|(w, &v)| w * f64::from(v))
                        .sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - f64::from(u8::from(y));
                for (g, &v) in grad_w.iter_mut().zip(x) {
                    *g += err * f64::from(v);
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(LogisticRegression { weights, bias })
    }

    /// `P(malware | x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict_proba(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, &v)| w * f64::from(v))
                .sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard decision at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// The learned weight vector (one entry per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ConfusionMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let centre = if malware { 0.7 } else { 0.3 };
            inputs.push(vec![
                centre + rng.gen_range(-0.15..0.15),
                centre + rng.gen_range(-0.15..0.15),
            ]);
            labels.push(malware);
        }
        (inputs, labels)
    }

    #[test]
    fn learns_a_separable_problem() {
        let (inputs, labels) = separable_data(200, 1);
        let model = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default())
            .expect("fit succeeds");
        let m = ConfusionMatrix::from_pairs(
            inputs
                .iter()
                .zip(&labels)
                .map(|(x, &y)| (model.predict(x), y)),
        );
        assert!(m.accuracy() > 0.95, "accuracy {}", m.accuracy());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (inputs, labels) = separable_data(50, 2);
        let model = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default()).unwrap();
        for x in &inputs {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn weights_point_towards_malware() {
        let (inputs, labels) = separable_data(200, 3);
        let model = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default()).unwrap();
        // Malware has larger feature values, so weights must be positive.
        assert!(model.weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn rejects_bad_data() {
        assert!(LogisticRegression::fit(&[], &[], &LogisticConfig::default()).is_err());
        let inputs = vec![vec![1.0], vec![2.0]];
        assert!(
            LogisticRegression::fit(&inputs, &[true, true], &LogisticConfig::default()).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (inputs, labels) = separable_data(20, 4);
        let model = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default()).unwrap();
        let _ = model.predict_proba(&[1.0]);
    }

    #[test]
    fn fit_is_deterministic() {
        let (inputs, labels) = separable_data(50, 5);
        let a = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default()).unwrap();
        let b = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

//! CART decision tree — the paper's non-differentiable attacker proxy.
//!
//! The tree splits on Gini impurity with axis-aligned thresholds. Its
//! decision boundary is piecewise constant, which is precisely why the paper
//! includes it: gradient-based evasion does not apply, so the attack
//! framework must use search-based (greedy) evasion against it.

use crate::{validate, FitError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for decision-tree training.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 8,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        malware_fraction: f64,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART decision tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    width: usize,
    depth: usize,
    leaves: usize,
}

impl DecisionTree {
    /// Fits a tree by recursive Gini-impurity splitting.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] for empty, mismatched, ragged, or
    /// single-class training data.
    pub fn fit(
        inputs: &[Vec<f32>],
        labels: &[bool],
        config: &TreeConfig,
    ) -> Result<DecisionTree, FitError> {
        let width = validate(inputs, labels)?;
        let indices: Vec<usize> = (0..inputs.len()).collect();
        let root = build(inputs, labels, &indices, config, 0);
        let (depth, leaves) = shape(&root);
        Ok(DecisionTree {
            root,
            width,
            depth,
            leaves,
        })
    }

    /// `P(malware | x)` — the malware fraction of the reached leaf.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict_proba(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.width, "feature width mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { malware_fraction } => return *malware_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Hard decision at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training width.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// The fitted depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }
}

fn gini(malware: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = malware as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

#[allow(clippy::needless_range_loop)] // lock-step indexing across arrays
fn build(
    inputs: &[Vec<f32>],
    labels: &[bool],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let malware = indices.iter().filter(|&&i| labels[i]).count();
    let total = indices.len();
    let fraction = malware as f64 / total.max(1) as f64;
    if depth >= config.max_depth
        || total < config.min_samples_split
        || malware == 0
        || malware == total
    {
        return Node::Leaf {
            malware_fraction: fraction,
        };
    }

    let parent_impurity = gini(malware, total);
    let width = inputs[0].len();
    let mut best: Option<(usize, f32, f64)> = None;

    for feature in 0..width {
        // Sort sample indices by this feature and scan split points.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| inputs[a][feature].total_cmp(&inputs[b][feature]));
        let mut left_malware = 0usize;
        for (pos, &i) in sorted.iter().enumerate().take(total - 1) {
            if labels[i] {
                left_malware += 1;
            }
            let next = sorted[pos + 1];
            if inputs[i][feature] == inputs[next][feature] {
                continue; // cannot split between equal values
            }
            let left_total = pos + 1;
            let right_total = total - left_total;
            let right_malware = malware - left_malware;
            let weighted = (left_total as f64 * gini(left_malware, left_total)
                + right_total as f64 * gini(right_malware, right_total))
                / total as f64;
            let gain = parent_impurity - weighted;
            // f32 midpoints between adjacent representable values can
            // round UP to the larger value, which would send every sample
            // left and split nothing; fall back to the smaller value.
            let (lo, hi) = (inputs[i][feature], inputs[next][feature]);
            let mut threshold = (lo + hi) / 2.0;
            if threshold >= hi {
                threshold = lo;
            }
            // Zero-gain splits are allowed on impure nodes (as in CART):
            // XOR-like structure only pays off one level deeper.
            if gain >= 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, threshold, gain));
            }
        }
    }

    match best {
        None => Node::Leaf {
            malware_fraction: fraction,
        },
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| inputs[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(inputs, labels, &left_idx, config, depth + 1)),
                right: Box::new(build(inputs, labels, &right_idx, config, depth + 1)),
            }
        }
    }
}

fn shape(node: &Node) -> (usize, usize) {
    match node {
        Node::Leaf { .. } => (0, 1),
        Node::Split { left, right, .. } => {
            let (dl, ll) = shape(left);
            let (dr, lr) = shape(right);
            (1 + dl.max(dr), ll + lr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ConfusionMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let centre = if malware { 0.75 } else { 0.25 };
            inputs.push(vec![
                centre + rng.gen_range(-0.2..0.2),
                rng.gen_range(0.0..1.0),
            ]);
            labels.push(malware);
        }
        (inputs, labels)
    }

    #[test]
    fn learns_blobs() {
        let (inputs, labels) = blobs(300, 1);
        let tree = DecisionTree::fit(&inputs, &labels, &TreeConfig::default()).expect("fit");
        let m = ConfusionMatrix::from_pairs(
            inputs
                .iter()
                .zip(&labels)
                .map(|(x, &y)| (tree.predict(x), y)),
        );
        assert!(m.accuracy() > 0.9, "accuracy {}", m.accuracy());
    }

    #[test]
    fn xor_needs_depth_two() {
        let inputs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![false, true, true, false];
        let config = TreeConfig {
            max_depth: 3,
            min_samples_split: 2,
        };
        let tree = DecisionTree::fit(&inputs, &labels, &config).expect("fit");
        for (x, &y) in inputs.iter().zip(&labels) {
            assert_eq!(tree.predict(x), y, "sample {x:?}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (inputs, labels) = blobs(300, 2);
        let config = TreeConfig {
            max_depth: 2,
            min_samples_split: 2,
        };
        let tree = DecisionTree::fit(&inputs, &labels, &config).expect("fit");
        assert!(tree.depth() <= 2);
        assert!(tree.leaf_count() <= 4);
    }

    #[test]
    fn pure_split_makes_leaves() {
        let inputs = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let labels = vec![false, false, true, true];
        let tree = DecisionTree::fit(
            &inputs,
            &labels,
            &TreeConfig {
                max_depth: 5,
                min_samples_split: 2,
            },
        )
        .expect("fit");
        assert_eq!(tree.depth(), 1, "one split separates the classes");
        assert_eq!(tree.predict_proba(&[0.05]), 0.0);
        assert_eq!(tree.predict_proba(&[0.95]), 1.0);
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (inputs, labels) = blobs(100, 3);
        let tree = DecisionTree::fit(&inputs, &labels, &TreeConfig::default()).expect("fit");
        for x in &inputs {
            let p = tree.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_bad_data() {
        assert!(DecisionTree::fit(&[], &[], &TreeConfig::default()).is_err());
        let inputs = vec![vec![1.0], vec![2.0]];
        assert!(DecisionTree::fit(&inputs, &[false, false], &TreeConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (inputs, labels) = blobs(50, 4);
        let tree = DecisionTree::fit(&inputs, &labels, &TreeConfig::default()).unwrap();
        let _ = tree.predict(&[0.5, 0.5, 0.5]);
    }

    #[test]
    fn adjacent_f32_values_still_split() {
        // Regression: the midpoint of adjacent f32 values rounds up to the
        // larger value; the split must fall back to the smaller one instead
        // of producing an empty partition.
        let lo = 0.1f32;
        let hi = f32::from_bits(lo.to_bits() + 1);
        let inputs = vec![vec![lo], vec![lo], vec![hi], vec![hi]];
        let labels = vec![false, false, true, true];
        let cfg = TreeConfig {
            max_depth: 8,
            min_samples_split: 2,
        };
        let tree = DecisionTree::fit(&inputs, &labels, &cfg).expect("fit");
        assert_eq!(tree.depth(), 1, "one split separates adjacent values");
        assert!(!tree.predict(&[lo]));
        assert!(tree.predict(&[hi]));
    }

    #[test]
    fn fit_is_deterministic() {
        let (inputs, labels) = blobs(100, 5);
        let a = DecisionTree::fit(&inputs, &labels, &TreeConfig::default()).unwrap();
        let b = DecisionTree::fit(&inputs, &labels, &TreeConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

//! Binary-classification metrics: the quantities the paper reports.
//!
//! Convention: the *positive* class is **malware**, so a false positive is
//! a benign program flagged as malware and a false negative is a missed
//! malware — matching the paper's FPR/FNR in Figure 2(a).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2×2 confusion matrix for malware (positive) vs benign (negative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Malware classified as malware.
    pub true_positives: u64,
    /// Benign classified as benign.
    pub true_negatives: u64,
    /// Benign classified as malware.
    pub false_positives: u64,
    /// Malware classified as benign.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Builds a matrix from `(predicted, actual)` pairs, `true` = malware.
    pub fn from_pairs<I: IntoIterator<Item = (bool, bool)>>(pairs: I) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        for (predicted, actual) in pairs {
            m.record(predicted, actual);
        }
        m
    }

    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_positives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> u64 {
        self.true_positives + self.true_negatives + self.false_positives + self.false_negatives
    }

    /// Fraction of correct predictions; `0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// False-positive rate: benign flagged as malware; `0` when no benign.
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.true_negatives + self.false_positives;
        if negatives == 0 {
            return 0.0;
        }
        self.false_positives as f64 / negatives as f64
    }

    /// False-negative rate: malware that slipped through; `0` when no
    /// malware.
    pub fn false_negative_rate(&self) -> f64 {
        let positives = self.true_positives + self.false_negatives;
        if positives == 0 {
            return 0.0;
        }
        self.false_negatives as f64 / positives as f64
    }

    /// Detection rate (recall on the malware class): `1 − FNR`.
    pub fn detection_rate(&self) -> f64 {
        1.0 - self.false_negative_rate()
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.true_negatives += other.true_negatives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {:.2}% fpr {:.2}% fnr {:.2}% (tp {} tn {} fp {} fn {})",
            100.0 * self.accuracy(),
            100.0 * self.false_positive_rate(),
            100.0 * self.false_negative_rate(),
            self.true_positives,
            self.true_negatives,
            self.false_positives,
            self.false_negatives
        )
    }
}

/// Mean and population standard deviation of a series; `(0, 0)` when empty.
///
/// The paper reports "the mean and standard deviation" over 50 repetitions
/// of each stochastic experiment.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix::from_pairs([(true, true), (false, false)]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
        assert_eq!(m.detection_rate(), 1.0);
    }

    #[test]
    fn always_benign_classifier() {
        let m = ConfusionMatrix::from_pairs([(false, true), (false, true), (false, false)]);
        assert!((m.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.false_negative_rate(), 1.0);
        assert_eq!(m.detection_rate(), 0.0);
        assert_eq!(m.false_positive_rate(), 0.0);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::from_pairs([(true, true)]);
        let b = ConfusionMatrix::from_pairs([(false, true), (true, false)]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.false_negatives, 1);
        assert_eq!(a.false_positives, 1);
    }

    #[test]
    fn display_contains_metrics() {
        let m = ConfusionMatrix::from_pairs([(true, true), (false, false)]);
        let s = m.to_string();
        assert!(s.contains("acc 100.00%"), "{s}");
    }

    #[test]
    fn mean_std_of_constant_is_zero_spread() {
        let (mean, std) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(mean, 2.0);
        assert_eq!(std, 0.0);
    }

    #[test]
    fn mean_std_known_values() {
        let (mean, std) = mean_std(&[1.0, 3.0]);
        assert_eq!(mean, 2.0);
        assert_eq!(std, 1.0);
    }

    #[test]
    fn mean_std_empty_is_zero() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    proptest! {
        #[test]
        fn accuracy_is_a_probability(pairs in proptest::collection::vec(any::<(bool, bool)>(), 1..100)) {
            let m = ConfusionMatrix::from_pairs(pairs);
            prop_assert!((0.0..=1.0).contains(&m.accuracy()));
            prop_assert!((0.0..=1.0).contains(&m.false_positive_rate()));
            prop_assert!((0.0..=1.0).contains(&m.false_negative_rate()));
        }

        #[test]
        fn totals_are_consistent(pairs in proptest::collection::vec(any::<(bool, bool)>(), 0..100)) {
            let m = ConfusionMatrix::from_pairs(pairs.clone());
            prop_assert_eq!(m.total() as usize, pairs.len());
        }
    }
}

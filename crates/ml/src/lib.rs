//! Classical machine-learning models and classification metrics.
//!
//! The paper's attacker reverse-engineers the victim HMD with three model
//! families: a Multi-Layer Perceptron (provided by `shmd-ann`), Logistic
//! Regression "for its simplicity", and a Decision Tree "for its
//! non-differentiability". This crate provides the latter two, plus the
//! confusion-matrix metrics (accuracy, FPR, FNR) reported throughout the
//! paper's evaluation.
//!
//! # Example
//!
//! ```
//! use shmd_ml::logistic::{LogisticConfig, LogisticRegression};
//!
//! let inputs = vec![vec![0.0f32], vec![0.2], vec![0.8], vec![1.0]];
//! let labels = vec![false, false, true, true];
//! let model = LogisticRegression::fit(&inputs, &labels, &LogisticConfig::default())?;
//! assert!(model.predict_proba(&[0.9]) > 0.5);
//! # Ok::<(), shmd_ml::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod forest;
pub mod logistic;
pub mod metrics;
pub mod scaler;
pub mod tree;

pub use anomaly::{AnomalyConfig, AnomalyScorer};
pub use forest::{ForestConfig, RandomForest};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use metrics::{mean_std, ConfusionMatrix};
pub use scaler::{FitScalerError, StandardScaler};
pub use tree::{DecisionTree, TreeConfig};

use std::fmt;

/// Error fitting a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitError {
    /// The training set is empty.
    EmptyTrainingSet,
    /// Inputs and labels have different lengths.
    LengthMismatch {
        /// Number of input rows.
        inputs: usize,
        /// Number of labels.
        labels: usize,
    },
    /// An input row's width differs from the first row's.
    RaggedRow(usize),
    /// All labels belong to one class; a discriminative model cannot fit.
    SingleClass,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => f.write_str("training set is empty"),
            FitError::LengthMismatch { inputs, labels } => {
                write!(f, "{inputs} input rows but {labels} labels")
            }
            FitError::RaggedRow(i) => write!(f, "input row {i} has inconsistent width"),
            FitError::SingleClass => f.write_str("all labels belong to a single class"),
        }
    }
}

impl std::error::Error for FitError {}

pub(crate) fn validate(inputs: &[Vec<f32>], labels: &[bool]) -> Result<usize, FitError> {
    if inputs.is_empty() {
        return Err(FitError::EmptyTrainingSet);
    }
    if inputs.len() != labels.len() {
        return Err(FitError::LengthMismatch {
            inputs: inputs.len(),
            labels: labels.len(),
        });
    }
    let width = inputs[0].len();
    for (i, row) in inputs.iter().enumerate() {
        if row.len() != width {
            return Err(FitError::RaggedRow(i));
        }
    }
    if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
        return Err(FitError::SingleClass);
    }
    Ok(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_data() {
        let inputs = vec![vec![1.0], vec![2.0]];
        assert_eq!(validate(&inputs, &[true, false]), Ok(1));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate(&[], &[]), Err(FitError::EmptyTrainingSet));
    }

    #[test]
    fn validate_rejects_mismatch() {
        let inputs = vec![vec![1.0]];
        assert_eq!(
            validate(&inputs, &[true, false]),
            Err(FitError::LengthMismatch {
                inputs: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn validate_rejects_ragged() {
        let inputs = vec![vec![1.0], vec![1.0, 2.0]];
        assert_eq!(
            validate(&inputs, &[true, false]),
            Err(FitError::RaggedRow(1))
        );
    }

    #[test]
    fn validate_rejects_single_class() {
        let inputs = vec![vec![1.0], vec![2.0]];
        assert_eq!(validate(&inputs, &[true, true]), Err(FitError::SingleClass));
    }
}

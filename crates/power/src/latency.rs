//! Inference-time model.
//!
//! §VIII "Inference time": over 100 k detections the paper measures 7 µs
//! for the Stochastic-HMD, 7.7 µs for RHMD-2F, and 7.8 µs for RHMD-2F2P.
//! RHMD pays for randomly selecting a base model (and the resulting L1
//! evictions); undervolting costs nothing because the clock frequency is
//! unchanged.

use serde::{Deserialize, Serialize};
use shmd_volt::voltage::Volts;

/// Latency model of one detection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Time per multiply–accumulate, nanoseconds.
    mac_time_ns: f64,
    /// Fixed per-inference overhead (feature read-out, activation LUTs).
    fixed_overhead_ns: f64,
    /// RHMD's model-selection cost (RNG + indirect dispatch).
    rhmd_select_ns: f64,
    /// Extra L1 pressure per stored base detector beyond the first.
    rhmd_cache_ns_per_base: f64,
}

impl LatencyModel {
    /// Calibrated to the paper's measurements on the i7-5557U with its
    /// 71 KB detector (≈17.75 k weights).
    pub fn i7_5557u() -> LatencyModel {
        LatencyModel {
            mac_time_ns: 0.35,
            fixed_overhead_ns: 787.0,
            rhmd_select_ns: 450.0,
            rhmd_cache_ns_per_base: 87.0,
        }
    }

    /// Detection latency of a single-model HMD (baseline or stochastic),
    /// in microseconds.
    pub fn hmd_us(&self, macs: usize) -> f64 {
        (self.fixed_overhead_ns + self.mac_time_ns * macs as f64) / 1000.0
    }

    /// Detection latency of a Stochastic-HMD at any undervolt level: equal
    /// to the baseline, because voltage scaling leaves the cycle time
    /// untouched (the paper: "scaling the voltage has no effect on the
    /// inference time").
    pub fn stochastic_hmd_us(&self, macs: usize, _vdd: Volts) -> f64 {
        self.hmd_us(macs)
    }

    /// Detection latency of an RHMD with `bases` stored base detectors.
    ///
    /// # Panics
    ///
    /// Panics if `bases == 0`.
    pub fn rhmd_us(&self, macs: usize, bases: usize) -> f64 {
        assert!(bases > 0, "an RHMD needs at least one base detector");
        self.hmd_us(macs)
            + (self.rhmd_select_ns + self.rhmd_cache_ns_per_base * bases as f64) / 1000.0
    }

    /// MAC count of the paper's 71 KB detector (f32 weights).
    pub fn paper_detector_macs() -> usize {
        71 * 1024 / 4
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::i7_5557u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};

    #[test]
    fn matches_paper_inference_times() {
        let m = LatencyModel::i7_5557u();
        let macs = LatencyModel::paper_detector_macs();
        let hmd = m.hmd_us(macs);
        let rhmd_2f = m.rhmd_us(macs, 2);
        let rhmd_2f2p = m.rhmd_us(macs, 4);
        assert!(
            (hmd - 7.0).abs() < 0.2,
            "Stochastic-HMD: {hmd} µs (paper 7)"
        );
        assert!(
            (rhmd_2f - 7.7).abs() < 0.2,
            "RHMD-2F: {rhmd_2f} µs (paper 7.7)"
        );
        assert!(
            (rhmd_2f2p - 7.8).abs() < 0.2,
            "RHMD-2F2P: {rhmd_2f2p} µs (paper 7.8)"
        );
    }

    #[test]
    fn rhmd_overhead_is_at_least_10_percent() {
        // Paper: "an average of at least 10% performance overhead of the
        // simplest RHMD (RHMD-2F) over Stochastic-HMD".
        let m = LatencyModel::i7_5557u();
        let macs = LatencyModel::paper_detector_macs();
        assert!(m.rhmd_us(macs, 2) / m.hmd_us(macs) >= 1.08);
    }

    #[test]
    fn undervolting_does_not_slow_inference() {
        let m = LatencyModel::i7_5557u();
        let macs = 1000;
        let nominal = m.stochastic_hmd_us(macs, NOMINAL_CORE_VOLTAGE);
        let deep = m.stochastic_hmd_us(
            macs,
            NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-140)),
        );
        assert_eq!(nominal, deep);
    }

    #[test]
    fn more_bases_cost_more() {
        let m = LatencyModel::i7_5557u();
        assert!(m.rhmd_us(1000, 6) > m.rhmd_us(1000, 2));
    }

    #[test]
    #[should_panic(expected = "at least one base")]
    fn zero_bases_panics() {
        let _ = LatencyModel::i7_5557u().rhmd_us(100, 0);
    }
}

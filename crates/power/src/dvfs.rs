//! Undervolting vs DVFS: why the defense costs no performance.
//!
//! Conventional power management (DVFS) scales voltage *and* frequency
//! together: power falls roughly with `V²·f` but every computation slows by
//! `1/f`. The paper's undervolting keeps the clock at 2.2 GHz and pushes
//! the voltage alone into the timing-slack margin — "scaling the voltage
//! has no effect on the cycle time since we are only scaling the CPU
//! voltage but not frequency". This module quantifies the comparison the
//! paper's "security and energy efficiency improved at the same time,
//! without performance loss" conclusion rests on.

use crate::cmos::CmosPowerModel;
use crate::latency::LatencyModel;
use serde::{Deserialize, Serialize};
use shmd_volt::voltage::{Volts, NOMINAL_CORE_VOLTAGE};

/// An operating point: supply voltage and clock frequency.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core supply voltage.
    pub vdd: Volts,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
}

/// What one strategy delivers for a detection workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Core power, watts.
    pub power_w: f64,
    /// Detection latency, microseconds.
    pub latency_us: f64,
    /// Energy per detection, microjoules.
    pub energy_uj: f64,
}

/// Compares undervolting against DVFS for the detection core.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DvfsComparison {
    power: CmosPowerModel,
    latency: LatencyModel,
    nominal_freq_ghz: f64,
}

impl DvfsComparison {
    /// The paper's platform: 2.2 GHz nominal.
    pub fn i7_5557u() -> DvfsComparison {
        DvfsComparison {
            power: CmosPowerModel::i7_5557u(),
            latency: LatencyModel::i7_5557u(),
            nominal_freq_ghz: 2.2,
        }
    }

    /// Outcome of running `macs` MACs per detection at an operating point.
    ///
    /// Frequency scaling stretches latency by `f_nom / f` and shrinks the
    /// *dynamic* power share by `f / f_nom` (dynamic power is `C·V²·f`;
    /// leakage depends on voltage alone); voltage scaling alone leaves the
    /// clock — and therefore latency — untouched.
    pub fn outcome(&self, point: OperatingPoint, macs: usize) -> StrategyOutcome {
        let power_w = self
            .power
            .core_power_at_freq_w(point.vdd, point.freq_ghz / self.nominal_freq_ghz);
        let latency_us = self.latency.hmd_us(macs) * self.nominal_freq_ghz / point.freq_ghz;
        StrategyOutcome {
            power_w,
            latency_us,
            energy_uj: power_w * latency_us,
        }
    }

    /// The undervolting strategy: voltage down, frequency fixed.
    pub fn undervolting(&self, vdd: Volts, macs: usize) -> StrategyOutcome {
        self.outcome(
            OperatingPoint {
                vdd,
                freq_ghz: self.nominal_freq_ghz,
            },
            macs,
        )
    }

    /// A DVFS point scaling frequency proportionally to voltage (the
    /// classic linear V-f curve).
    pub fn dvfs(&self, vdd: Volts, macs: usize) -> StrategyOutcome {
        let ratio = vdd.as_f64() / NOMINAL_CORE_VOLTAGE.as_f64();
        self.outcome(
            OperatingPoint {
                vdd,
                freq_ghz: self.nominal_freq_ghz * ratio,
            },
            macs,
        )
    }
}

impl Default for DvfsComparison {
    fn default() -> DvfsComparison {
        DvfsComparison::i7_5557u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_volt::voltage::Millivolts;

    const MACS: usize = 18_176; // the paper's 71 KB detector

    fn cmp() -> DvfsComparison {
        DvfsComparison::i7_5557u()
    }

    fn operating_vdd() -> Volts {
        NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-134))
    }

    #[test]
    fn undervolting_keeps_latency_constant() {
        let c = cmp();
        let nominal = c.undervolting(NOMINAL_CORE_VOLTAGE, MACS);
        let undervolted = c.undervolting(operating_vdd(), MACS);
        assert_eq!(nominal.latency_us, undervolted.latency_us);
        assert!(undervolted.power_w < nominal.power_w);
    }

    #[test]
    fn dvfs_saves_power_but_costs_latency() {
        let c = cmp();
        let nominal = c.undervolting(NOMINAL_CORE_VOLTAGE, MACS);
        let dvfs = c.dvfs(operating_vdd(), MACS);
        assert!(dvfs.power_w < nominal.power_w);
        assert!(
            dvfs.latency_us > nominal.latency_us * 1.05,
            "DVFS must slow detection: {} vs {}",
            dvfs.latency_us,
            nominal.latency_us
        );
    }

    #[test]
    fn at_equal_voltage_undervolting_dominates_dvfs_on_energy() {
        let c = cmp();
        let v = operating_vdd();
        let uv = c.undervolting(v, MACS);
        let dvfs = c.dvfs(v, MACS);
        assert!(uv.latency_us < dvfs.latency_us);
        // Same voltage ⇒ DVFS draws *less* power (its dynamic C·V²·f share
        // scales with the slower clock), but it repays the gap with
        // interest: leakage integrates over the stretched detection, so
        // undervolting still wins energy per detection outright — and the
        // detection finishes sooner.
        assert!(dvfs.power_w < uv.power_w);
        assert!(uv.energy_uj < dvfs.energy_uj);
    }

    #[test]
    fn dvfs_at_half_frequency_draws_strictly_less_power_than_undervolting() {
        // Regression for the frequency-blind power model: `outcome` used to
        // charge full nominal-clock dynamic power to every operating point,
        // making DVFS and undervolting indistinguishable at equal voltage.
        let c = cmp();
        let v = operating_vdd();
        let uv = c.undervolting(v, MACS);
        let half = c.outcome(
            OperatingPoint {
                vdd: v,
                freq_ghz: c.nominal_freq_ghz / 2.0,
            },
            MACS,
        );
        assert!(
            half.power_w < uv.power_w,
            "half-clock DVFS power {} must undercut undervolting power {}",
            half.power_w,
            uv.power_w
        );
        // And the latency stretch is exactly the clock ratio.
        assert!((half.latency_us - 2.0 * uv.latency_us).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let c = cmp();
        let o = c.undervolting(operating_vdd(), MACS);
        assert!((o.energy_uj - o.power_w * o.latency_us).abs() < 1e-9);
    }
}

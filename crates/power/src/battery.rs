//! Battery-life impact for mobile/edge/IoT deployments.
//!
//! The paper motivates undervolting's by-product power saving "specifically
//! for mobile, edge, and IoT devices" (its §III even cites the Apple Watch
//! as a dual-core deployment target). This model converts the power figures
//! into the quantity a product team asks about: how much battery does
//! always-on detection cost, and how much does the Stochastic-HMD's
//! undervolting give back?

use crate::cmos::{CmosPowerModel, PowerScope};
use crate::latency::LatencyModel;
use serde::{Deserialize, Serialize};
use shmd_volt::voltage::Volts;
use std::fmt;

/// An always-on detection duty cycle on a battery-powered device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionDutyCycle {
    /// Detections per second while the device is awake.
    pub detections_per_second: f64,
    /// MACs per detection (model size).
    pub macs: usize,
}

/// Error: the duty cycle demands more detection time per second than a
/// second contains — the device cannot physically keep up, so projecting
/// a battery fraction from it would silently extrapolate fiction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InfeasibleDuty {
    /// Detection microseconds demanded per wall-clock second (> 10⁶).
    pub busy_us_per_second: f64,
}

impl fmt::Display for InfeasibleDuty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duty cycle demands {:.0} µs of detection per second (max 1e6): \
             the device cannot keep up",
            self.busy_us_per_second
        )
    }
}

impl std::error::Error for InfeasibleDuty {}

impl Default for DetectionDutyCycle {
    fn default() -> DetectionDutyCycle {
        DetectionDutyCycle {
            detections_per_second: 100.0,
            macs: LatencyModel::paper_detector_macs(),
        }
    }
}

/// Battery-life model around the calibrated power/latency figures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatteryModel {
    /// Battery capacity in joules (e.g. a 1.1 Wh watch battery ≈ 4000 J).
    pub capacity_j: f64,
    /// Power model of the detection core.
    pub power: CmosPowerModel,
    /// Latency model (detection duration).
    pub latency: LatencyModel,
}

impl BatteryModel {
    /// A small wearable-class battery with the paper-calibrated models.
    pub fn wearable() -> BatteryModel {
        BatteryModel {
            capacity_j: 4000.0,
            power: CmosPowerModel::i7_5557u(),
            latency: LatencyModel::i7_5557u(),
        }
    }

    /// Energy of one detection at the given core voltage, in joules.
    pub fn energy_per_detection_j(&self, duty: &DetectionDutyCycle, vdd: Volts) -> f64 {
        let seconds = self.latency.hmd_us(duty.macs) * 1e-6;
        self.power.power_w(vdd, PowerScope::Core) * seconds
    }

    /// Fraction of each second the core spends detecting under this duty
    /// cycle (undervolting leaves the clock alone, so this is
    /// voltage-independent). Above 1.0 the duty cycle is infeasible.
    pub fn utilization(&self, duty: &DetectionDutyCycle) -> f64 {
        duty.detections_per_second * self.latency.hmd_us(duty.macs) * 1e-6
    }

    /// Fraction of the battery per day that always-on detection costs at
    /// the given voltage.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleDuty`] when `detections_per_second ×
    /// latency_us` exceeds 10⁶ — the requested rate needs more than one
    /// second of detection per second of wall clock, so no finite battery
    /// fraction describes it.
    pub fn battery_per_day(
        &self,
        duty: &DetectionDutyCycle,
        vdd: Volts,
    ) -> Result<f64, InfeasibleDuty> {
        let utilization = self.utilization(duty);
        if utilization > 1.0 {
            return Err(InfeasibleDuty {
                busy_us_per_second: utilization * 1e6,
            });
        }
        let per_second = self.energy_per_detection_j(duty, vdd) * duty.detections_per_second;
        Ok(per_second * 86_400.0 / self.capacity_j)
    }

    /// Detections per joule at the given voltage.
    pub fn detections_per_joule(&self, duty: &DetectionDutyCycle, vdd: Volts) -> f64 {
        1.0 / self.energy_per_detection_j(duty, vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};

    fn setup() -> (BatteryModel, DetectionDutyCycle) {
        (BatteryModel::wearable(), DetectionDutyCycle::default())
    }

    #[test]
    fn undervolting_extends_battery() {
        let (battery, duty) = setup();
        let nominal = battery
            .battery_per_day(&duty, NOMINAL_CORE_VOLTAGE)
            .expect("default duty is feasible");
        let undervolted = battery
            .battery_per_day(
                &duty,
                NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-134)),
            )
            .expect("default duty is feasible");
        assert!(undervolted < nominal);
        let saving = 1.0 - undervolted / nominal;
        assert!(
            (0.15..=0.40).contains(&saving),
            "core-scope saving at the operating point: {saving}"
        );
    }

    #[test]
    fn energy_scales_with_model_size() {
        let (battery, duty) = setup();
        let half = DetectionDutyCycle {
            macs: duty.macs / 2,
            ..duty
        };
        let full_e = battery.energy_per_detection_j(&duty, NOMINAL_CORE_VOLTAGE);
        let half_e = battery.energy_per_detection_j(&half, NOMINAL_CORE_VOLTAGE);
        assert!(half_e < full_e);
    }

    #[test]
    fn detections_per_joule_is_consistent() {
        let (battery, duty) = setup();
        let v = NOMINAL_CORE_VOLTAGE;
        let per_j = battery.detections_per_joule(&duty, v);
        let e = battery.energy_per_detection_j(&duty, v);
        assert!((per_j * e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn always_on_detection_is_affordable() {
        // Sanity: 100 detections/s of a 71 KB model must not drain a watch
        // battery in a day.
        let (battery, duty) = setup();
        let fraction = battery
            .battery_per_day(&duty, NOMINAL_CORE_VOLTAGE)
            .expect("default duty is feasible");
        assert!(
            fraction < 1.0,
            "always-on detection uses {fraction} batteries/day"
        );
    }

    #[test]
    fn infeasible_duty_is_rejected_not_extrapolated() {
        // Regression: at detections_per_second × latency_us > 10⁶ the
        // device cannot keep up, yet the model used to report a finite
        // battery fraction as if it could.
        let (battery, duty) = setup();
        let latency_us = battery.latency.hmd_us(duty.macs);
        let infeasible = DetectionDutyCycle {
            detections_per_second: 2e6 / latency_us,
            ..duty
        };
        assert!(battery.utilization(&infeasible) > 1.0);
        let err = battery
            .battery_per_day(&infeasible, NOMINAL_CORE_VOLTAGE)
            .expect_err("an over-committed duty cycle must be rejected");
        assert!(
            (err.busy_us_per_second - 2e6).abs() < 1.0,
            "demanded {} µs/s",
            err.busy_us_per_second
        );
        assert!(err.to_string().contains("cannot keep up"));
        // The feasibility boundary itself is fine: exactly one second of
        // detection per second is the densest schedulable duty.
        let saturated = DetectionDutyCycle {
            detections_per_second: 1e6 / latency_us,
            ..duty
        };
        assert!(battery
            .battery_per_day(&saturated, NOMINAL_CORE_VOLTAGE)
            .is_ok());
    }
}

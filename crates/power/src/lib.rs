//! Power, latency, memory, and RNG-cost models for HMD deployments.
//!
//! This crate reproduces the paper's §VIII performance evaluation:
//!
//! - [`cmos`] — supply-voltage-dependent core power (dynamic `∝ C·V²·f`
//!   plus exponential leakage), the source of Figure 7's power-savings
//!   curves and the "~15% power savings" headline;
//! - [`latency`] — the inference-time model behind the 7 µs / 7.7 µs /
//!   7.8 µs comparison (Stochastic-HMD vs RHMD-2F vs RHMD-2F2P), including
//!   the observation that undervolting does not change latency because the
//!   clock frequency is untouched;
//! - [`memory`] — model storage and Equation (1)'s storage savings;
//! - [`rng_cost`] — the overheads of the software alternative (injecting
//!   noise from a TRNG/PRNG after every MAC): ≈62×/4× time and
//!   ≈112×/5.7× energy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod cmos;
pub mod dvfs;
pub mod latency;
pub mod memory;
pub mod rng_cost;

pub use battery::{BatteryModel, DetectionDutyCycle, InfeasibleDuty};
pub use cmos::{CmosPowerModel, PowerScope};
pub use dvfs::{DvfsComparison, OperatingPoint, StrategyOutcome};
pub use latency::LatencyModel;
pub use memory::{storage_savings, MemoryModel};
pub use rng_cost::{NoiseSource, RngCostModel};

//! Costs of the software alternative: RNG-driven noise injection.
//!
//! Related randomisation defenses query a randomness source after every MAC
//! to add noise. §VIII "Comparison with TRNG" measures the consequences:
//! a TRNG-based implementation adds ≈62× performance and ≈112× energy
//! overhead; an in-core PRNG (the Lewis–Goodman–Miller generator the paper
//! cites) still adds ≈4× and ≈5.7×. Undervolting adds zero of either —
//! the noise source *is* the datapath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the injected randomness comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseSource {
    /// Undervolting: the stochastic datapath itself (no per-MAC query).
    Undervolting,
    /// An in-core pseudo-random generator queried per MAC.
    Prng,
    /// The shared off-core true-random generator queried per MAC.
    Trng,
}

impl fmt::Display for NoiseSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NoiseSource::Undervolting => "undervolting",
            NoiseSource::Prng => "PRNG",
            NoiseSource::Trng => "TRNG",
        })
    }
}

/// Per-MAC cost model of noise injection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RngCostModel {
    /// Effective cycles per MAC in the dense inference loop.
    mac_cycles: f64,
    /// Cycles per PRNG query (in-core ALU work).
    prng_cycles: f64,
    /// Cycles per TRNG query (off-core round trip; shared between cores).
    trng_cycles: f64,
    /// Energy per MAC, picojoules.
    mac_energy_pj: f64,
    /// Energy per PRNG query, picojoules.
    prng_energy_pj: f64,
    /// Energy per TRNG query, picojoules (off-core transfers dominate).
    trng_energy_pj: f64,
}

impl RngCostModel {
    /// Calibrated to the paper's measurements.
    pub fn i7_5557u() -> RngCostModel {
        RngCostModel {
            mac_cycles: 4.0,
            prng_cycles: 12.0,
            trng_cycles: 244.0,
            mac_energy_pj: 1.0,
            prng_energy_pj: 4.7,
            trng_energy_pj: 111.0,
        }
    }

    /// Performance overhead factor of running inference with per-MAC noise
    /// from `source`, relative to the plain (or undervolted) datapath.
    pub fn time_overhead(&self, source: NoiseSource) -> f64 {
        match source {
            NoiseSource::Undervolting => 1.0,
            NoiseSource::Prng => (self.mac_cycles + self.prng_cycles) / self.mac_cycles,
            NoiseSource::Trng => (self.mac_cycles + self.trng_cycles) / self.mac_cycles,
        }
    }

    /// Energy overhead factor, relative to the plain datapath.
    pub fn energy_overhead(&self, source: NoiseSource) -> f64 {
        match source {
            NoiseSource::Undervolting => 1.0,
            NoiseSource::Prng => (self.mac_energy_pj + self.prng_energy_pj) / self.mac_energy_pj,
            NoiseSource::Trng => (self.mac_energy_pj + self.trng_energy_pj) / self.mac_energy_pj,
        }
    }

    /// Absolute inference time in microseconds for `macs` MACs at
    /// `clock_ghz`, with noise from `source`.
    pub fn inference_us(&self, macs: usize, clock_ghz: f64, source: NoiseSource) -> f64 {
        let cycles = self.mac_cycles * macs as f64 * self.time_overhead(source);
        cycles / clock_ghz / 1000.0
    }
}

impl Default for RngCostModel {
    fn default() -> RngCostModel {
        RngCostModel::i7_5557u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_trng_overheads() {
        // Paper: "the TRNG based implementation adds ≈62× performance and
        // ≈112× energy consumption overheads".
        let m = RngCostModel::i7_5557u();
        let t = m.time_overhead(NoiseSource::Trng);
        let e = m.energy_overhead(NoiseSource::Trng);
        assert!(
            (55.0..=70.0).contains(&t),
            "TRNG time overhead {t}× (paper ≈62×)"
        );
        assert!(
            (100.0..=125.0).contains(&e),
            "TRNG energy overhead {e}× (paper ≈112×)"
        );
    }

    #[test]
    fn matches_paper_prng_overheads() {
        // Paper: "the PRNG based implementation adds ≈4× performance and
        // ≈5.7× energy consumption overheads".
        let m = RngCostModel::i7_5557u();
        let t = m.time_overhead(NoiseSource::Prng);
        let e = m.energy_overhead(NoiseSource::Prng);
        assert!(
            (3.0..=5.0).contains(&t),
            "PRNG time overhead {t}× (paper ≈4×)"
        );
        assert!(
            (5.0..=6.5).contains(&e),
            "PRNG energy overhead {e}× (paper ≈5.7×)"
        );
    }

    #[test]
    fn undervolting_is_free() {
        let m = RngCostModel::i7_5557u();
        assert_eq!(m.time_overhead(NoiseSource::Undervolting), 1.0);
        assert_eq!(m.energy_overhead(NoiseSource::Undervolting), 1.0);
    }

    #[test]
    fn trng_dwarfs_prng() {
        let m = RngCostModel::i7_5557u();
        assert!(m.time_overhead(NoiseSource::Trng) > 10.0 * m.time_overhead(NoiseSource::Prng));
    }

    #[test]
    fn absolute_times_scale_with_macs() {
        let m = RngCostModel::i7_5557u();
        let t1 = m.inference_us(1000, 2.2, NoiseSource::Undervolting);
        let t2 = m.inference_us(2000, 2.2, NoiseSource::Undervolting);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(NoiseSource::Undervolting.to_string(), "undervolting");
        assert_eq!(NoiseSource::Trng.to_string(), "TRNG");
    }
}

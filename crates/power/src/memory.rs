//! Model storage and Equation (1)'s storage savings.
//!
//! §VIII "Memory space": RHMD stores one model per base detector;
//! Stochastic-HMD stores exactly one. The paper's detector occupies 71 KB —
//! more than twice the 32 KB L1 data cache of contemporary cores, so every
//! extra base detector costs cache pressure too.

use serde::{Deserialize, Serialize};

/// The paper's per-detector model size in bytes.
pub const PAPER_DETECTOR_BYTES: usize = 71 * 1024;

/// The L1 data-cache size the paper cites (Intel Tiger Lake).
pub const L1_DCACHE_BYTES: usize = 32 * 1024;

/// Equation (1): storage savings of a Stochastic-HMD over an RHMD with
/// `base_detectors` stored models, as a fraction.
///
/// # Panics
///
/// Panics if `base_detectors == 0`.
pub fn storage_savings(base_detectors: usize) -> f64 {
    assert!(
        base_detectors > 0,
        "an RHMD needs at least one base detector"
    );
    (base_detectors as f64 - 1.0) / base_detectors as f64
}

/// Memory footprint of an HMD deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bytes per stored detector model.
    pub detector_bytes: usize,
}

impl MemoryModel {
    /// The paper's 71 KB detector.
    pub fn paper() -> MemoryModel {
        MemoryModel {
            detector_bytes: PAPER_DETECTOR_BYTES,
        }
    }

    /// Total bytes an RHMD with `base_detectors` models stores.
    pub fn rhmd_bytes(&self, base_detectors: usize) -> usize {
        self.detector_bytes * base_detectors
    }

    /// Bytes a (Stochastic-)HMD stores: one model.
    pub fn stochastic_bytes(&self) -> usize {
        self.detector_bytes
    }

    /// How many L1 data caches the deployment's models span (cache
    /// pressure indicator).
    pub fn l1_footprint(&self, base_detectors: usize) -> f64 {
        self.rhmd_bytes(base_detectors) as f64 / L1_DCACHE_BYTES as f64
    }
}

impl Default for MemoryModel {
    fn default() -> MemoryModel {
        MemoryModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_examples() {
        // Paper: "Stochastic-HMD storage saving over an RHMD-2F ... is 50%".
        assert_eq!(storage_savings(2), 0.5);
        assert_eq!(storage_savings(1), 0.0);
        assert_eq!(storage_savings(4), 0.75);
        assert!((storage_savings(6) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one base detector")]
    fn zero_detectors_panics() {
        let _ = storage_savings(0);
    }

    #[test]
    fn paper_detector_exceeds_l1() {
        // Paper: "every HMD takes 71 KB of memory, while the L1 cache size
        // ... is 32 KB".
        let m = MemoryModel::paper();
        assert!(m.l1_footprint(1) > 2.0);
        assert_eq!(m.stochastic_bytes(), 71 * 1024);
    }

    #[test]
    fn rhmd_scales_linearly() {
        let m = MemoryModel::paper();
        assert_eq!(m.rhmd_bytes(4), 4 * m.stochastic_bytes());
    }
}

//! CMOS power vs supply voltage.
//!
//! Dynamic power scales as `C·V²·f` and leakage super-linearly in `V`
//! (DIBL), so undervolting at constant frequency yields super-linear power
//! savings — the "by-product power saving" of the defense. The model
//! distinguishes the undervolted *core* from the rest of the package
//! (uncore, DRAM I/O), which stays at nominal voltage: Figure 7 reports
//! core power, while the paper's "~15% savings" trade-off statement is a
//! package-level number.

use serde::{Deserialize, Serialize};
use shmd_volt::voltage::{Volts, NOMINAL_CORE_VOLTAGE};

/// Which power domain a query refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerScope {
    /// The undervolted CPU core only (Figure 7's measurements).
    Core,
    /// The whole package; only the core share scales with voltage.
    Package,
}

/// A calibrated CMOS power model of the detection core.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CmosPowerModel {
    /// Core power at nominal voltage, watts.
    core_power_nominal_w: f64,
    /// Fraction of nominal core power that is dynamic (vs leakage).
    dynamic_fraction: f64,
    /// Exponential leakage sensitivity to Vdd, 1/volt.
    leakage_k: f64,
    /// Non-scaling package power (uncore etc.), watts.
    uncore_power_w: f64,
    /// RHMD's power overhead factor over a baseline HMD at equal voltage
    /// (longer inference, model-selection work, cache pressure).
    rhmd_overhead: f64,
    vdd_nominal: Volts,
}

impl CmosPowerModel {
    /// A model calibrated to the paper's i7-5557U at 2.2 GHz.
    pub fn i7_5557u() -> CmosPowerModel {
        CmosPowerModel {
            core_power_nominal_w: 11.0,
            dynamic_fraction: 0.72,
            leakage_k: 4.0,
            uncore_power_w: 9.0,
            rhmd_overhead: 1.12,
            vdd_nominal: NOMINAL_CORE_VOLTAGE,
        }
    }

    /// Core power at a supply voltage, in watts (nominal clock).
    pub fn core_power_w(&self, vdd: Volts) -> f64 {
        self.core_power_at_freq_w(vdd, 1.0)
    }

    /// Core power with the clock scaled to `freq_ratio` of nominal, in
    /// watts. Dynamic power is `C·V²·f`, so only the dynamic component
    /// tracks the frequency ratio; leakage depends on voltage alone.
    /// This is why DVFS (voltage *and* frequency down) draws less power
    /// than undervolting at the same voltage — and why it repays that
    /// gap with interest in latency (see [`crate::dvfs`]).
    pub fn core_power_at_freq_w(&self, vdd: Volts, freq_ratio: f64) -> f64 {
        let r = vdd.as_f64() / self.vdd_nominal.as_f64();
        let dynamic = self.dynamic_fraction * r * r * freq_ratio;
        let leakage = (1.0 - self.dynamic_fraction)
            * r
            * (self.leakage_k * (vdd.as_f64() - self.vdd_nominal.as_f64())).exp();
        self.core_power_nominal_w * (dynamic + leakage)
    }

    /// Power in the requested scope, watts.
    pub fn power_w(&self, vdd: Volts, scope: PowerScope) -> f64 {
        match scope {
            PowerScope::Core => self.core_power_w(vdd),
            PowerScope::Package => self.core_power_w(vdd) + self.uncore_power_w,
        }
    }

    /// Fractional power saving of an undervolted Stochastic-HMD over a
    /// baseline HMD at nominal voltage.
    pub fn savings_over_baseline(&self, vdd: Volts, scope: PowerScope) -> f64 {
        let base = self.power_w(self.vdd_nominal, scope);
        1.0 - self.power_w(vdd, scope) / base
    }

    /// Fractional power saving of an undervolted Stochastic-HMD over an
    /// RHMD (which runs at nominal voltage *and* pays its switching
    /// overhead).
    pub fn savings_over_rhmd(&self, vdd: Volts, scope: PowerScope) -> f64 {
        let rhmd = match scope {
            PowerScope::Core => self.core_power_w(self.vdd_nominal) * self.rhmd_overhead,
            PowerScope::Package => {
                self.core_power_w(self.vdd_nominal) * self.rhmd_overhead + self.uncore_power_w
            }
        };
        1.0 - self.power_w(vdd, scope) / rhmd
    }

    /// The nominal supply voltage the model is calibrated to.
    pub fn vdd_nominal(&self) -> Volts {
        self.vdd_nominal
    }
}

impl Default for CmosPowerModel {
    fn default() -> CmosPowerModel {
        CmosPowerModel::i7_5557u()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use shmd_volt::voltage::Millivolts;

    fn volts(v: f64) -> Volts {
        Volts(v)
    }

    #[test]
    fn nominal_power_is_the_reference() {
        let m = CmosPowerModel::i7_5557u();
        assert!((m.core_power_w(NOMINAL_CORE_VOLTAGE) - 11.0).abs() < 1e-9);
        assert_eq!(
            m.savings_over_baseline(NOMINAL_CORE_VOLTAGE, PowerScope::Core),
            0.0
        );
    }

    #[test]
    fn fig7_deep_undervolt_saves_over_75_percent_vs_rhmd() {
        // Paper Fig. 7: "over 75% power saving compared to RHMD ... under
        // 40% voltage scaling" (1.18 V → 0.68 V).
        let m = CmosPowerModel::i7_5557u();
        let s = m.savings_over_rhmd(volts(0.68), PowerScope::Core);
        assert!(s > 0.75, "savings over RHMD at 0.68 V: {s}");
    }

    #[test]
    fn operating_point_saves_about_15_percent_package() {
        // Paper §IX: "~15% power saving" at the selected (er = 0.1)
        // operating point; the package-level number.
        let m = CmosPowerModel::i7_5557u();
        let s = m.savings_over_baseline(
            NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-134)),
            PowerScope::Package,
        );
        assert!((0.10..=0.22).contains(&s), "operating-point savings: {s}");
    }

    #[test]
    fn scheduler_selected_operating_points_pin_the_paper_claims() {
        // The budget scheduler derives its offsets from the reference
        // device's calibration curve rather than hardcoded millivolt
        // figures. Pin both paper power claims against what it actually
        // selects: the ~15% package band at the er = 0.1 selection, and
        // Fig. 7's >75% core-scope claim as the limit the deepening
        // direction approaches (the calibrated sweep freezes well before
        // Fig. 7's 40% voltage scaling, so deeper must always mean more
        // core-scope saving on the way there).
        use shmd_volt::calibration::{Calibrator, DeviceProfile};
        let m = CmosPowerModel::i7_5557u();
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        let selected = curve.offset_for_error_rate(0.1).expect("reachable");
        let selected_vdd = NOMINAL_CORE_VOLTAGE.with_offset(selected);
        let s = m.savings_over_baseline(selected_vdd, PowerScope::Package);
        assert!(
            (0.10..=0.22).contains(&s),
            "package savings at the selected offset {selected}: {s}"
        );
        // Deepening toward the freeze guard strictly grows the core-scope
        // saving over RHMD...
        let deepest_vdd = NOMINAL_CORE_VOLTAGE.with_offset(curve.freeze_offset());
        assert!(
            m.savings_over_rhmd(deepest_vdd, PowerScope::Core)
                > m.savings_over_rhmd(selected_vdd, PowerScope::Core)
        );
        // ...and the direction's limit, Fig. 7's 0.68 V, clears 75%.
        assert!(m.savings_over_rhmd(volts(0.68), PowerScope::Core) > 0.75);
    }

    #[test]
    fn rhmd_draws_more_than_baseline() {
        let m = CmosPowerModel::i7_5557u();
        let at_nominal = m.savings_over_rhmd(NOMINAL_CORE_VOLTAGE, PowerScope::Core);
        assert!(
            at_nominal > 0.05,
            "even at nominal voltage a single-model HMD beats RHMD: {at_nominal}"
        );
    }

    #[test]
    fn package_savings_are_diluted_by_uncore() {
        let m = CmosPowerModel::i7_5557u();
        let v = volts(0.88);
        assert!(
            m.savings_over_baseline(v, PowerScope::Package)
                < m.savings_over_baseline(v, PowerScope::Core)
        );
    }

    proptest! {
        #[test]
        fn power_is_monotone_in_voltage(v in 0.5f64..1.18) {
            let m = CmosPowerModel::i7_5557u();
            prop_assert!(m.core_power_w(volts(v)) < m.core_power_w(volts(v + 0.01)));
        }

        #[test]
        fn savings_grow_with_undervolt(v in 0.5f64..1.17) {
            let m = CmosPowerModel::i7_5557u();
            for scope in [PowerScope::Core, PowerScope::Package] {
                prop_assert!(
                    m.savings_over_baseline(volts(v), scope)
                        > m.savings_over_baseline(volts(v + 0.01), scope)
                );
            }
        }

        #[test]
        fn savings_over_rhmd_exceed_savings_over_baseline(v in 0.5f64..=1.18) {
            // RHMD pays its switching overhead in *both* scopes: the core
            // overhead factor dominates Core, and it survives the uncore
            // dilution in Package.
            let m = CmosPowerModel::i7_5557u();
            for scope in [PowerScope::Core, PowerScope::Package] {
                prop_assert!(
                    m.savings_over_rhmd(volts(v), scope)
                        > m.savings_over_baseline(volts(v), scope)
                );
            }
        }

        #[test]
        fn frequency_scaling_only_touches_the_dynamic_share(v in 0.6f64..=1.18, f in 0.1f64..=1.0) {
            let m = CmosPowerModel::i7_5557u();
            let full = m.core_power_w(volts(v));
            let scaled = m.core_power_at_freq_w(volts(v), f);
            // Scaled power sits strictly between leakage-only (f → 0) and
            // full-clock power, and the removed share is linear in f.
            prop_assert!(scaled < full);
            prop_assert!(scaled > m.core_power_at_freq_w(volts(v), 0.0));
            let removed_half = full - m.core_power_at_freq_w(volts(v), 0.5);
            let removed = full - scaled;
            prop_assert!((removed - 2.0 * removed_half * (1.0 - f)).abs() < 1e-9);
        }
    }
}

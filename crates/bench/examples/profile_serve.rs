//! Decomposes the per-query cost of the serving hot path at the bench
//! fixture's scale (16 → 8 → 1 network by default, the wider 16 → 32 → 1
//! deployment with `--wide`; er = 0.1): fault-stream setup, the scalar
//! inference, and the batched inference at several widths, each against
//! its exact (er = 0) counterpart so the event-side cost falls out by
//! subtraction. Each component is timed in a tight loop so the split
//! between shared per-query overhead, lane-amortizable work, and the
//! batching-immune event floor is visible directly — detector-level
//! numbers live in `batch_bench`.

use hmd_bench::setup;
use hmd_bench::Args;
use shmd_ann::network::{BatchScratch, InferenceScratch};
use shmd_volt::fault::{BatchFaultStream, FaultStream, LaneCorruptor};
use std::hint::black_box;
use std::time::Instant;
use stochastic_hmd::StochasticHmd;

fn time<F: FnMut() -> u64>(n: u64, mut f: F) -> f64 {
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc = acc.wrapping_add(f());
    }
    black_box(acc);
    t.elapsed().as_secs_f64() / n as f64 * 1e9
}

fn main() {
    let args = Args::parse_from(["--fast".to_string()]);
    let dataset = setup::dataset(&args);
    let wide = std::env::args().any(|a| a == "--wide");
    let baseline = if wide {
        setup::victim_with_hidden(&dataset, 0, &args, 32)
    } else {
        setup::victim(&dataset, 0, &args)
    };
    let spec = baseline.spec();
    let features: Vec<Vec<f32>> = (0..64)
        .map(|i| spec.extract(dataset.trace(i % dataset.len())))
        .collect();
    let hmd = StochasticHmd::from_baseline(&baseline, 0.1, 7).expect("valid error rate");
    let model = hmd.fault_model();

    // Ground truth: events per query (faulty + absorbed ~ multiplies*er).
    {
        let mut scratch = InferenceScratch::new();
        let mut stream = FaultStream::new(model, 1);
        for q in 0..1000u64 {
            let f = &features[(q as usize) & 63];
            hmd.score_features_with(f, &mut stream, &mut scratch);
        }
        let st = stream.stats();
        println!(
            "per query: multiplies {:.1}, faulty {:.2}, flips/fault {:.2}, nominal events {:.2}",
            st.multiplies as f64 / 1000.0,
            st.faulty as f64 / 1000.0,
            st.flips_per_fault(),
            st.multiplies as f64 / 1000.0 * model.error_rate(),
        );
    }

    let n = 2_000_000u64;
    println!(
        "FaultStream::new          {:6.1} ns",
        time(n, || {
            FaultStream::new(model, black_box(7)).corrupt_product(1) as u64
        })
    );
    println!(
        "BatchFaultStream::new b8  {:6.1} ns",
        time(n / 4, || {
            let mut s = BatchFaultStream::<8>::new(model, black_box([7; 8]));
            s.fault(0, 1) as u64
        })
    );

    let mut scratch = InferenceScratch::new();
    let mut pos = 0u64;
    let scalar = time(n, || {
        let f = &features[(pos as usize) & 63];
        pos += 1;
        let mut stream = FaultStream::new(model, pos);
        hmd.score_features_with(black_box(f), &mut stream, &mut scratch)
            .to_bits()
    });
    println!("scalar query (stream+infer) {scalar:6.1} ns");

    let mut exact_scratch = InferenceScratch::new();
    let exact_hmd = StochasticHmd::from_baseline(&baseline, 0.0, 7).expect("valid");
    let exact_model = exact_hmd.fault_model();
    let exact = time(n, || {
        let f = &features[(pos as usize) & 63];
        pos += 1;
        let mut stream = FaultStream::new(exact_model, pos);
        exact_hmd
            .score_features_with(black_box(f), &mut stream, &mut exact_scratch)
            .to_bits()
    });
    println!("scalar query exact          {exact:6.1} ns");

    macro_rules! batched {
        ($lanes:literal) => {{
            let mut scratch = BatchScratch::<$lanes>::new();
            let blocks = n / $lanes;
            let per_block = time(blocks, || {
                let fs: [&[f32]; $lanes] = std::array::from_fn(|l| {
                    let f: &[f32] = &features[((pos as usize) + l) & 63];
                    f
                });
                pos += $lanes;
                let seeds: [u64; $lanes] = std::array::from_fn(|l| pos + l as u64);
                let mut stream = BatchFaultStream::<$lanes>::new(model, seeds);
                let out = hmd.score_features_batch_with(black_box(&fs), &mut stream, &mut scratch);
                out[0].to_bits()
            });
            let per_block_exact = time(blocks, || {
                let fs: [&[f32]; $lanes] = std::array::from_fn(|l| {
                    let f: &[f32] = &features[((pos as usize) + l) & 63];
                    f
                });
                pos += $lanes;
                let seeds: [u64; $lanes] = std::array::from_fn(|l| pos + l as u64);
                let mut stream = BatchFaultStream::<$lanes>::new(exact_model, seeds);
                let out =
                    exact_hmd.score_features_batch_with(black_box(&fs), &mut stream, &mut scratch);
                out[0].to_bits()
            });
            println!(
                "b{:<2} query er=0.1 {:6.1} ns/q ({:.2}x)   exact {:6.1} ns/q ({:.2}x)   event side {:6.1} ns/q",
                $lanes,
                per_block / $lanes as f64,
                scalar / (per_block / $lanes as f64),
                per_block_exact / $lanes as f64,
                exact / (per_block_exact / $lanes as f64),
                (per_block - per_block_exact) / $lanes as f64,
            );
        }};
    }
    batched!(4);
    batched!(8);
    batched!(16);
    println!("scalar event side           {:6.1} ns/q", scalar - exact);
}

//! Power-Pareto measurement: what each undervolted operating point costs
//! and buys, plus an energy-aware scheduled pool under a service power
//! budget.
//!
//! Two halves, written together to `BENCH_7.json` by the `power_bench`
//! binary:
//!
//! - **operating points**: a sweep over (target error rate × die
//!   temperature) through the calibrated curve of the reference device —
//!   supply voltage, core/package power, savings over the baseline HMD
//!   and over RHMD, and (at the calibration temperature) the detection
//!   accuracy and evasive-malware detection rate that the paper trades
//!   those watts against. Rows where the operating point would freeze the
//!   die at that temperature are flagged, not hidden: they are exactly
//!   the points the budget scheduler's floor clamp refuses to schedule.
//! - **scheduled service**: a supervised pool with a
//!   [`stochastic_hmd::supervisor::PowerBudgetPolicy`] riding a drifting
//!   thermal environment. The budget is chosen *from measurement* —
//!   midway between the pool's unpressured draw and its band-cap floor —
//!   so the gate always exercises real budget pressure, at every scale.
//!   The run must hold the budget, never freeze a shard, replay
//!   bit-identically serial vs threaded, and survive a mid-stream
//!   checkpoint/restore with its accrued energy and scheduler targets
//!   intact.
//!
//! Honest-noise note: the calibrated sweep stops at the device's freeze
//! offset, far shallower than Figure 7's 0.68 V endpoint — the >75%
//! saving over RHMD is therefore reported against the *voltage axis*
//! ([`fig7_limit`]), not claimed at any schedulable operating point. See
//! EXPERIMENTS.md.

use crate::cli::Args;
use crate::setup::OPERATING_ERROR_RATE;
use shmd_attack::campaign::AttackCampaign;
use shmd_attack::reverse::ReverseConfig;
use shmd_attack::ProxyKind;
use shmd_power::cmos::{CmosPowerModel, PowerScope};
use shmd_volt::calibration::{CalibrationCurve, DeviceProfile};
use shmd_volt::environment::{delivered_error_rate_at, freezes_at, EnvironmentConfig};
use shmd_volt::voltage::{Volts, NOMINAL_CORE_VOLTAGE};
use shmd_workload::dataset::Dataset;
use stochastic_hmd::checkpoint::ServiceCheckpoint;
use stochastic_hmd::exec::{derive_seed, ExecConfig};
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::supervisor::{PowerBudgetPolicy, SupervisorConfig};
use stochastic_hmd::train::evaluate;
use stochastic_hmd::BaselineHmd;

/// Target error rates the Pareto sweep walks, nominal-to-deep.
pub const PARETO_ERROR_RATES: [f64; 4] = [0.05, OPERATING_ERROR_RATE, 0.2, 0.3];

/// Die temperatures the sweep samples: a cool morning, the calibration
/// point, and a loaded afternoon. Temperature inversion makes the cool
/// die the dangerous one.
pub const PARETO_TEMPS_C: [f64; 3] = [45.0, 49.0, 58.0];

/// Batches the scheduled-service run replays.
pub const SERVICE_BATCHES: usize = 40;

/// Shards in the scheduled pool.
pub const SERVICE_SHARDS: usize = 3;

/// Seed tag separating the sweep's RNG streams from the figures'.
const TAG_PARETO: u64 = 0x07;

/// One (target error rate × temperature) cell of the Pareto sweep.
#[derive(Clone, Debug)]
pub struct OperatingPoint {
    /// Calibration target error rate.
    pub target_er: f64,
    /// Die temperature, °C.
    pub temp_c: f64,
    /// Curve-derived undervolt offset, mV.
    pub offset_mv: i32,
    /// Supply voltage at the offset, volts.
    pub vdd: f64,
    /// Error rate the die physically delivers there at this temperature.
    pub delivered_er: f64,
    /// Whether the operating point crosses the freeze threshold at this
    /// temperature (temperature inversion: cool dies freeze shallower).
    pub freezes: bool,
    /// Busy core power, watts.
    pub core_power_w: f64,
    /// Package power (core + uncore), watts.
    pub package_power_w: f64,
    /// Fractional core-power saving over the baseline HMD at nominal.
    pub core_saving_vs_baseline: f64,
    /// Fractional package-power saving over the baseline HMD at nominal.
    pub package_saving_vs_baseline: f64,
    /// Fractional core-power saving over RHMD (nominal + overhead).
    pub core_saving_vs_rhmd: f64,
    /// Detection accuracy at this target rate — measured once per rate,
    /// on the calibration-temperature row only.
    pub accuracy: Option<f64>,
    /// Evasive-malware detection rate under the MLP transfer attack —
    /// calibration-temperature rows only.
    pub evasion_detection: Option<f64>,
}

/// Figure 7's voltage-axis endpoint: the analytic saving over RHMD at
/// 0.68 V, far deeper than any schedulable operating point of the
/// calibrated device.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Limit {
    /// The endpoint supply voltage, volts.
    pub vdd: f64,
    /// Core-power saving over RHMD there.
    pub core_saving_vs_rhmd: f64,
}

/// The analytic Figure 7 endpoint.
pub fn fig7_limit() -> Fig7Limit {
    let vdd = Volts(0.68);
    Fig7Limit {
        vdd: vdd.as_f64(),
        core_saving_vs_rhmd: CmosPowerModel::i7_5557u().savings_over_rhmd(vdd, PowerScope::Core),
    }
}

/// Runs the (target error rate × temperature) sweep. Accuracy and the
/// evasion campaign run once per target rate, attached to its
/// calibration-temperature row.
pub fn pareto_sweep(
    dataset: &Dataset,
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    device: &DeviceProfile,
    args: &Args,
) -> Vec<OperatingPoint> {
    let model = CmosPowerModel::i7_5557u();
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let mut rows = Vec::new();
    for (i, &target_er) in PARETO_ERROR_RATES.iter().enumerate() {
        let offset = curve
            .offset_for_error_rate(target_er)
            .expect("sweep rates are reachable on the reference device");
        let vdd = NOMINAL_CORE_VOLTAGE.with_offset(offset);
        let core_power_w = model.power_w(vdd, PowerScope::Core);
        let package_power_w = model.power_w(vdd, PowerScope::Package);
        // Security/accuracy cost of the rate, measured once at the
        // calibration temperature (the fault law depends on the
        // delivered rate, not on which temperature delivered it).
        let seed = derive_seed(args.seed, &[TAG_PARETO, i as u64]);
        let mut protected =
            StochasticHmd::from_baseline(baseline, target_er, seed).expect("valid rate");
        let accuracy = evaluate(&mut protected, dataset, split.testing()).accuracy();
        let campaign = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed));
        let report = campaign
            .run(&mut protected, dataset, rotation)
            .expect("attack campaign runs");
        let evasion_detection = report.transfer.assumed_detection_rate();
        for &temp_c in &PARETO_TEMPS_C {
            let at_calibration = (temp_c - device.temp_c).abs() < f64::EPSILON;
            rows.push(OperatingPoint {
                target_er,
                temp_c,
                offset_mv: offset.get(),
                vdd: vdd.as_f64(),
                delivered_er: delivered_error_rate_at(device, offset, temp_c),
                freezes: freezes_at(device, offset, temp_c),
                core_power_w,
                package_power_w,
                core_saving_vs_baseline: model.savings_over_baseline(vdd, PowerScope::Core),
                package_saving_vs_baseline: model.savings_over_baseline(vdd, PowerScope::Package),
                core_saving_vs_rhmd: model.savings_over_rhmd(vdd, PowerScope::Core),
                accuracy: at_calibration.then_some(accuracy),
                evasion_detection: at_calibration.then_some(evasion_detection),
            });
        }
    }
    rows
}

/// The scheduled-service measurement: a budgeted pool in a drifting
/// thermal world, with its thread-invariance and restore verdicts.
#[derive(Clone, Debug)]
pub struct ServiceRun {
    /// Shards in the pool.
    pub shards: usize,
    /// Batches replayed.
    pub batches: usize,
    /// Queries served.
    pub queries: u64,
    /// The pool's projected draw with an unconstrained budget, watts.
    pub unpressured_w: f64,
    /// The pool's projected draw at the policy band cap, watts.
    pub floor_w: f64,
    /// The budget the measured run was held to (midway between the two,
    /// so the gate always exercises real pressure), watts.
    pub budget_w: f64,
    /// Projected draw at the end of the budgeted run, watts.
    pub projected_w: f64,
    /// Energy accrued across the pool over the run, microjoules.
    pub total_energy_uj: f64,
    /// Deepest scheduler target reached by any shard.
    pub max_target_er: f64,
    /// Shard crashes (with no chaos plan, only a freeze could crash — so
    /// this must be zero).
    pub crashes: u64,
    /// Verdict checksum of the serial budgeted run.
    pub checksum: u64,
    /// Serial vs threaded replay bit-identical (verdicts + telemetry).
    pub thread_invariant: bool,
    /// Mid-stream checkpoint/restore resumed bit-identically (verdicts +
    /// energy + scheduler state).
    pub restore_invariant: bool,
}

/// The scheduled pool's world: the reference device under a drifting
/// office thermal trace, supervised every batch, budgeted by `policy`.
fn service_supervision(seed: u64, policy: PowerBudgetPolicy) -> SupervisorConfig {
    let device = DeviceProfile::reference();
    let environment = EnvironmentConfig::drifting(device.temp_c, seed);
    SupervisorConfig::new(device)
        .with_environment(environment)
        .with_power_budget(policy)
}

fn service_config(seed: u64, batch_size: usize, exec: ExecConfig) -> ServeConfig {
    ServeConfig::new(SERVICE_SHARDS)
        .with_seed(seed)
        .with_target_error_rate(0.2)
        .with_batch_size(batch_size)
        .with_exec(exec)
}

/// Replays the feature stream through a fresh budgeted deployment.
fn replay(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    seed: u64,
    batch_size: usize,
    budget_w: f64,
    exec: ExecConfig,
) -> stochastic_hmd::telemetry::TelemetrySnapshot {
    let policy = PowerBudgetPolicy::new(budget_w);
    let mut service = MonitoringService::supervised(
        baseline,
        service_supervision(seed, policy),
        service_config(seed, batch_size, exec),
    )
    .expect("the reference device calibrates at er = 0.2");
    for batch in features {
        service.process_feature_batch(batch);
    }
    service.snapshot()
}

/// Builds the service's feature stream from the dataset.
pub fn service_stream(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    batch_size: usize,
) -> Vec<Vec<Vec<f32>>> {
    let spec = baseline.spec();
    (0..SERVICE_BATCHES)
        .map(|b| {
            (0..batch_size)
                .map(|i| spec.extract(dataset.trace((b * batch_size + i) % dataset.len())))
                .collect()
        })
        .collect()
}

/// Measures the scheduled service: probes the attainable power window,
/// budgets the pool to its midpoint, and verdicts thread invariance and
/// checkpoint/restore.
pub fn measure_service(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    seed: u64,
    batch_size: usize,
    exec: &ExecConfig,
) -> ServiceRun {
    let features = service_stream(baseline, dataset, batch_size);

    // Probe the attainable window: an unconstrained budget leaves the
    // scheduler's opportunistic phase alone; a zero budget drives every
    // shard to the policy band cap (held best-effort — the scheduler
    // never freezes a shard to make a number).
    let unpressured_w = replay(
        baseline,
        &features,
        seed,
        batch_size,
        f64::MAX,
        ExecConfig::serial(),
    )
    .service_power_w
    .expect("a budget policy always publishes its projection");
    let floor_w = replay(
        baseline,
        &features,
        seed,
        batch_size,
        0.0,
        ExecConfig::serial(),
    )
    .service_power_w
    .expect("a budget policy always publishes its projection");
    // Midway between the two: attainable, but only under real pressure.
    // On a run whose thermal trace leaves no headroom the midpoint
    // degenerates to the unpressured draw, which is still a valid hold.
    let budget_w = f64::midpoint(floor_w, unpressured_w);

    let serial = replay(
        baseline,
        &features,
        seed,
        batch_size,
        budget_w,
        ExecConfig::serial(),
    );
    let threaded = replay(baseline, &features, seed, batch_size, budget_w, *exec);
    let thread_invariant = serial.without_timing() == threaded.without_timing();

    // Checkpoint mid-stream through the binary codec, restore at a
    // different thread count, and replay the tail: energy, scheduler
    // targets, and the open load window must all survive.
    let policy = PowerBudgetPolicy::new(budget_w);
    let mut interrupted = MonitoringService::supervised(
        baseline,
        service_supervision(seed, policy),
        service_config(seed, batch_size, ExecConfig::serial()),
    )
    .expect("deploys");
    let cut = SERVICE_BATCHES / 2;
    for batch in &features[..cut] {
        interrupted.process_feature_batch(batch);
    }
    let bytes = interrupted.checkpoint().encode();
    drop(interrupted);
    let restore_invariant = match ServiceCheckpoint::decode(&bytes) {
        Ok(decoded) => match MonitoringService::restore(
            baseline,
            Some(service_supervision(seed, policy)),
            &decoded,
            ExecConfig::threads(4),
        ) {
            Ok(mut restored) => {
                for batch in &features[cut..] {
                    restored.process_feature_batch(batch);
                }
                restored.snapshot().without_timing() == serial.without_timing()
            }
            Err(_) => false,
        },
        Err(_) => false,
    };

    ServiceRun {
        shards: SERVICE_SHARDS,
        batches: SERVICE_BATCHES,
        queries: serial.queries,
        unpressured_w,
        floor_w,
        budget_w,
        projected_w: serial
            .service_power_w
            .expect("the budgeted run publishes its projection"),
        total_energy_uj: serial.total_energy_uj(),
        max_target_er: serial
            .shards
            .iter()
            .filter_map(|s| s.power_target_er)
            .fold(0.0, f64::max),
        crashes: serial.total_crashes(),
        checksum: serial.verdict_checksum,
        thread_invariant,
        restore_invariant,
    }
}

/// Renders both halves as the hand-built JSON written to `BENCH_7.json`
/// (checksums as decimal strings because they exceed 2^53).
pub fn render_json(
    points: &[OperatingPoint],
    limit: Fig7Limit,
    service: &ServiceRun,
    seed: u64,
    scale: &str,
    threads: usize,
) -> String {
    let opt = |v: Option<f64>| v.map_or("null".to_string(), |v| format!("{v:.4}"));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"power_pareto\",\n");
    out.push_str("  \"unit\": \"watts\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"selected_operating_point\": {OPERATING_ERROR_RATE},\n"
    ));
    out.push_str("  \"operating_points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"target_er\": {}, \"temp_c\": {:.1}, \"offset_mv\": {}, \
             \"vdd\": {:.4}, \"delivered_er\": {:.4}, \"freezes\": {}, \
             \"core_power_w\": {:.4}, \"package_power_w\": {:.4}, \
             \"core_saving_vs_baseline\": {:.4}, \"package_saving_vs_baseline\": {:.4}, \
             \"core_saving_vs_rhmd\": {:.4}, \"accuracy\": {}, \
             \"evasion_detection\": {}}}{}\n",
            p.target_er,
            p.temp_c,
            p.offset_mv,
            p.vdd,
            p.delivered_er,
            p.freezes,
            p.core_power_w,
            p.package_power_w,
            p.core_saving_vs_baseline,
            p.package_saving_vs_baseline,
            p.core_saving_vs_rhmd,
            opt(p.accuracy),
            opt(p.evasion_detection),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"fig7_limit\": {{\"vdd\": {:.2}, \"core_saving_vs_rhmd\": {:.4}, \
         \"note\": \"voltage-axis endpoint; deeper than the calibrated device's freeze offset\"}},\n",
        limit.vdd, limit.core_saving_vs_rhmd
    ));
    out.push_str(&format!(
        "  \"service\": {{\"shards\": {}, \"batches\": {}, \"queries\": {}, \
         \"unpressured_w\": {:.4}, \"floor_w\": {:.4}, \"budget_w\": {:.4}, \
         \"projected_w\": {:.4}, \"total_energy_uj\": {:.1}, \"max_target_er\": {:.2}, \
         \"crashes\": {}, \"checksum\": \"{}\", \"thread_invariant\": {}, \
         \"restore_invariant\": {}}}\n",
        service.shards,
        service.batches,
        service.queries,
        service.unpressured_w,
        service.floor_w,
        service.budget_w,
        service.projected_w,
        service.total_energy_uj,
        service.max_target_er,
        service.crashes,
        service.checksum,
        service.thread_invariant,
        service.restore_invariant,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;

    fn fixture() -> (Dataset, BaselineHmd) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        (dataset, baseline)
    }

    #[test]
    fn service_holds_its_measured_budget_without_freezing() {
        let (dataset, baseline) = fixture();
        let run = measure_service(&baseline, &dataset, 11, 16, &ExecConfig::threads(4));
        assert!(
            run.projected_w <= run.budget_w + 1e-9,
            "projected {} W over the {} W budget",
            run.projected_w,
            run.budget_w
        );
        assert!(run.floor_w <= run.unpressured_w + 1e-9);
        assert_eq!(run.crashes, 0, "the floor clamp must prevent freezes");
        assert!(run.total_energy_uj > 0.0);
        assert!(
            run.thread_invariant,
            "budgeted replay diverged across threads"
        );
        assert!(
            run.restore_invariant,
            "budget state lost in checkpoint round trip"
        );
        assert_eq!(run.queries, (SERVICE_BATCHES * 16) as u64);
    }

    #[test]
    fn fig7_limit_clears_the_paper_claim() {
        assert!(fig7_limit().core_saving_vs_rhmd > 0.75);
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = OperatingPoint {
            target_er: 0.1,
            temp_c: 49.0,
            offset_mv: -134,
            vdd: 1.046,
            delivered_er: 0.1,
            freezes: false,
            core_power_w: 7.9,
            package_power_w: 16.9,
            core_saving_vs_baseline: 0.28,
            package_saving_vs_baseline: 0.15,
            core_saving_vs_rhmd: 0.36,
            accuracy: Some(0.94),
            evasion_detection: None,
        };
        let service = ServiceRun {
            shards: 3,
            batches: 40,
            queries: 640,
            unpressured_w: 23.1,
            floor_w: 23.0,
            budget_w: 23.05,
            projected_w: 23.0,
            total_energy_uj: 1234.5,
            max_target_er: 0.3,
            crashes: 0,
            checksum: u64::MAX,
            thread_invariant: true,
            restore_invariant: true,
        };
        let doc = render_json(&[p], fig7_limit(), &service, 42, "fast", 8);
        assert!(doc.contains("\"bench\": \"power_pareto\""));
        assert!(doc.contains("\"package_saving_vs_baseline\": 0.1500"));
        assert!(doc.contains("\"evasion_detection\": null"));
        assert!(doc.contains("\"checksum\": \"18446744073709551615\""));
        assert!(doc.contains("\"restore_invariant\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! The adaptive-attacker arena: denoising, transfer, and workload-drift
//! attacks driven against the **live** monitoring service, with the
//! uncertainty-aware re-query counter measured on the defender's side.
//!
//! Every prior attack bench reverse-engineers a bare detector; this one
//! routes the adversary through [`stochastic_hmd::arena::ArenaOracle`],
//! so each query advances the real serving stream, draws the real
//! per-position fault stream, and pays the real query bill. The
//! `arena_bench` binary writes the standing security matrix to
//! `BENCH_9.json`:
//!
//! - **denoise** — the §IX cost curve made explicit: per delivered error
//!   rate, the minimal queries-per-sample a majority-voting attacker
//!   needs before its proxy recovers the clean boundary;
//! - **transfer** — (attacker family × victim × error rate): proxies
//!   trained on the live service's stochastic labels, replayed as
//!   proxy-evading malware at the same live victim; offline RHMD rows
//!   (with and without the Tang-style anomaly member) for detector
//!   diversity;
//! - **requery** — accuracy lost to boundary-band label noise at a high
//!   error rate, and how much of it the ensemble re-query claws back,
//!   with honest re-query cost accounting;
//! - **drift** — seeded Dirichlet family-mix shifts through a supervised
//!   pool at a fixed fault rate: the delivered-rate watchdog must not
//!   fire on pure workload drift;
//! - **determinism** — serial vs threaded replays and a mid-arena
//!   checkpoint/restore, all required bit-identical.

use shmd_attack::arena::{denoise_cost_search, DenoiseCurve, DEFAULT_QUERY_LADDER};
use shmd_attack::reverse::{reverse_engineer, ReverseConfig};
use shmd_attack::transfer::{transferability, DEFAULT_DETECTION_PERIODS};
use shmd_attack::{EvasionConfig, ProxyKind};
use shmd_ml::anomaly::{AnomalyConfig, AnomalyScorer};
use shmd_volt::calibration::{CalibrationCurve, Calibrator, DeviceProfile};
use shmd_workload::dataset::Dataset;
use shmd_workload::drift::{DriftSchedule, DriftStream};
use shmd_workload::trace::Trace;
use std::time::Instant;
use stochastic_hmd::arena::ArenaOracle;
use stochastic_hmd::detector::{Detector, Label};
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, RequeryConfig, ServeConfig};
use stochastic_hmd::supervisor::SupervisorConfig;
use stochastic_hmd::BaselineHmd;

use crate::cli::Scale;

/// Proxy families the transfer attacker trains on the live labels.
pub const ATTACKER_FAMILIES: [ProxyKind; 3] = [
    ProxyKind::Mlp,
    ProxyKind::RandomForest,
    ProxyKind::LogisticRegression,
];

/// Slack below the clean-oracle agreement that defines the denoising
/// attacker's target: the attack "succeeds" at a rung when the denoised
/// proxy is within this margin of what a noise-free oracle yields.
pub const DENOISE_SLACK: f64 = 0.03;

/// Accuracy losses below this are considered within quantisation noise
/// of the eval stream; the re-query recovery gate passes trivially when
/// the high-error deployment never lost this much to begin with.
pub const TINY_LOSS: f64 = 0.02;

/// Scale-dependent shape of the arena run.
#[derive(Clone, Debug)]
pub struct ArenaPlan {
    /// Delivered error rates swept (first entry must be `0.0`: the
    /// baseline victim every gate compares against).
    pub error_rates: Vec<f64>,
    /// Times the test fold is tiled into the accuracy eval stream (each
    /// repetition lands at fresh stream positions, so repeated samples
    /// draw independent fault streams).
    pub eval_reps: usize,
    /// Queries per eval batch.
    pub eval_batch: usize,
    /// Error rate of the re-query scenario (the band-edge noise source).
    pub requery_er: f64,
    /// Confidence half-band around the decision threshold.
    pub requery_band: f64,
    /// Extra stochastic draws per band hit.
    pub requery_replicas: usize,
    /// Batches of the drift replay.
    pub drift_batches: u64,
    /// Queries per drift batch.
    pub drift_batch: usize,
    /// Dirichlet segments across the drift replay.
    pub drift_segments: usize,
    /// Shards of every deployed pool.
    pub shards: usize,
}

impl ArenaPlan {
    /// The plan for a benchmark scale.
    pub fn for_scale(scale: Scale) -> ArenaPlan {
        match scale {
            Scale::Fast => ArenaPlan {
                error_rates: vec![0.0, 0.1, 0.3],
                eval_reps: 20,
                eval_batch: 256,
                requery_er: 0.3,
                // At er 0.3 a fault flip saturates the logistic score, so
                // the only robust posture on the tiny fast-scale eval is
                // to treat every verdict as uncertain; the larger scales
                // afford the selective 0.499 band.
                requery_band: 0.5,
                requery_replicas: 14,
                drift_batches: 12,
                drift_batch: 512,
                drift_segments: 4,
                shards: 2,
            },
            Scale::Medium => ArenaPlan {
                error_rates: vec![0.0, 0.05, 0.1, 0.2, 0.3],
                eval_reps: 24,
                eval_batch: 512,
                requery_er: 0.3,
                requery_band: 0.499,
                requery_replicas: 14,
                drift_batches: 24,
                drift_batch: 1024,
                drift_segments: 6,
                shards: 4,
            },
            Scale::Paper => ArenaPlan {
                error_rates: vec![0.0, 0.05, 0.1, 0.2, 0.3],
                eval_reps: 40,
                eval_batch: 1024,
                requery_er: 0.3,
                requery_band: 0.499,
                requery_replicas: 14,
                drift_batches: 48,
                drift_batch: 2048,
                drift_segments: 8,
                shards: 4,
            },
        }
    }
}

/// A [`Detector`] wrapper that counts queries, so offline victims get
/// the same honest query-cost accounting the live [`ArenaOracle`] keeps.
struct Metered<'a> {
    inner: &'a mut dyn Detector,
    queries: u64,
}

impl Detector for Metered<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn score(&mut self, trace: &Trace) -> f64 {
        self.queries += 1;
        self.inner.score(trace)
    }
    fn classify(&mut self, trace: &Trace) -> Label {
        self.queries += 1;
        self.inner.classify(trace)
    }
}

/// Shared calibration curve for every deployment in the arena.
pub fn calibration() -> CalibrationCurve {
    Calibrator::new()
        .with_step(2)
        .calibrate(&DeviceProfile::reference())
}

/// Deploys an unsupervised pool at a delivered error rate.
fn deploy(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    plan: &ArenaPlan,
    er: f64,
    seed: u64,
    exec: ExecConfig,
    requery: Option<RequeryConfig>,
) -> MonitoringService {
    let mut config = ServeConfig::new(plan.shards)
        .with_seed(seed)
        .with_target_error_rate(er)
        .with_batch_size(plan.eval_batch)
        .with_exec(exec);
    if let Some(rq) = requery {
        config = config.with_requery(rq);
    }
    MonitoringService::deploy(baseline, curve, config)
        .expect("the reference device calibrates at every swept error rate")
}

/// Fits the Tang-style anomaly member on the benign rows of the victim
/// training fold.
pub fn benign_anomaly_scorer(baseline: &BaselineHmd, dataset: &Dataset) -> AnomalyScorer {
    let split = dataset.three_fold_split(0);
    let labeled = dataset.labeled_features(split.victim_training(), baseline.spec());
    let benign: Vec<Vec<f32>> = labeled
        .inputs
        .iter()
        .zip(&labeled.labels)
        .filter(|(_, &malware)| !malware)
        .map(|(row, _)| row.clone())
        .collect();
    AnomalyScorer::fit(&benign, &AnomalyConfig::default())
        .expect("generated datasets always hold benign training rows")
}

/// The tiled accuracy eval stream: test-fold features and ground-truth
/// labels repeated `eval_reps` times (fresh stream positions per tile).
pub fn eval_stream(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    reps: usize,
) -> (Vec<Vec<f32>>, Vec<bool>) {
    let split = dataset.three_fold_split(0);
    let labeled = dataset.labeled_features(split.testing(), baseline.spec());
    let mut features = Vec::with_capacity(labeled.inputs.len() * reps);
    let mut truth = Vec::with_capacity(labeled.labels.len() * reps);
    for _ in 0..reps.max(1) {
        features.extend(labeled.inputs.iter().cloned());
        truth.extend(labeled.labels.iter().copied());
    }
    (features, truth)
}

/// Streams `features` through `service` in plan-sized batches and
/// returns the fraction of verdicts matching `truth`.
fn serve_accuracy(
    service: &mut MonitoringService,
    plan: &ArenaPlan,
    features: &[Vec<f32>],
    truth: &[bool],
) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (batch, labels) in features
        .chunks(plan.eval_batch)
        .zip(truth.chunks(plan.eval_batch))
    {
        for (verdict, &label) in service.process_feature_batch(batch).iter().zip(labels) {
            total += 1;
            if verdict.label.is_malware() == label {
                correct += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    correct as f64 / total as f64
}

/// One error rate's denoising cost-curve cell.
#[derive(Clone, Debug)]
pub struct DenoiseCell {
    /// Delivered multiplication error rate of the live victim.
    pub error_rate: f64,
    /// The measured curve (rungs climbed, agreements, per-rung costs).
    pub curve: DenoiseCurve,
    /// Victim queries the oracle metered across the whole search.
    pub oracle_queries: u64,
}

/// Sweeps the denoising attacker across delivered error rates, all
/// against live service oracles. Returns the target agreement used and
/// the per-rate cells.
pub fn denoise_sweep(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
) -> (f64, Vec<DenoiseCell>) {
    let split = dataset.three_fold_split(0);
    let cfg = ReverseConfig::new(ProxyKind::LogisticRegression);
    // Calibrate the attacker's target from a clean oracle: the agreement
    // a single-query attack achieves when the service delivers no
    // faults. Every noisy rung is then chasing this same boundary.
    let mut clean = ArenaOracle::new(deploy(
        baseline,
        curve,
        plan,
        0.0,
        seed ^ 0xa1,
        ExecConfig::serial(),
        None,
    ));
    let mut reference = baseline.clone();
    let clean_curve = denoise_cost_search(
        &mut clean,
        &mut reference,
        dataset,
        split.attacker_training(),
        split.testing(),
        &cfg,
        &[1],
        1.1, // unreachable: measure the k = 1 rung, never stop early
    )
    .expect("clean denoise search");
    let clean_agreement = clean_curve.points[0].agreement;
    let target = (clean_agreement - DENOISE_SLACK).max(0.5);

    let cells = plan
        .error_rates
        .iter()
        .map(|&er| {
            let mut oracle = ArenaOracle::new(deploy(
                baseline,
                curve,
                plan,
                er,
                seed ^ 0xa2,
                ExecConfig::serial(),
                None,
            ));
            let mut reference = baseline.clone();
            let curve = denoise_cost_search(
                &mut oracle,
                &mut reference,
                dataset,
                split.attacker_training(),
                split.testing(),
                &cfg,
                &DEFAULT_QUERY_LADDER,
                target,
            )
            .expect("denoise search");
            DenoiseCell {
                error_rate: er,
                oracle_queries: oracle.queries(),
                curve,
            }
        })
        .collect();
    (target, cells)
}

/// One transfer-matrix cell: an attacker family against a victim.
#[derive(Clone, Debug)]
pub struct TransferCell {
    /// Victim kind: `"service"`, `"rhmd"`, or `"rhmd+anomaly"`.
    pub victim: &'static str,
    /// Delivered error rate (live service rows; `0.0` for offline rows).
    pub error_rate: f64,
    /// Attacker proxy family.
    pub attacker: ProxyKind,
    /// Malware samples the proxy detected (and so tried to evade).
    pub attempted: usize,
    /// Samples whose evasion converged against the proxy.
    pub evaded_proxy: usize,
    /// Evasive samples that also evaded the victim.
    pub evaded_victim: usize,
    /// Scalar transfer success (non-converged counted as no success).
    pub success: f64,
    /// Victim queries the attack spent (reverse-engineering included).
    pub query_cost: u64,
}

/// Accuracy of one victim at one error rate, relative to the baseline.
#[derive(Clone, Debug)]
pub struct AccuracyCell {
    /// Victim kind, as in [`TransferCell::victim`].
    pub victim: &'static str,
    /// Delivered error rate.
    pub error_rate: f64,
    /// Eval-stream accuracy against ground truth.
    pub accuracy: f64,
    /// `accuracy − accuracy(er = 0)` for the same victim kind.
    pub delta: f64,
}

/// Runs one attacker family against one (already metered) victim.
fn attack_cell(
    victim: &mut dyn Detector,
    dataset: &Dataset,
    attacker: ProxyKind,
    seed: u64,
) -> Result<(usize, usize, usize, f64), shmd_attack::ReverseError> {
    let split = dataset.three_fold_split(0);
    let cfg = ReverseConfig {
        seed,
        ..ReverseConfig::new(attacker)
    };
    let proxy = reverse_engineer(victim, dataset, split.attacker_training(), &cfg)?;
    let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
    let outcome = transferability(
        victim,
        &proxy,
        dataset,
        &malware,
        &EvasionConfig::default(),
        DEFAULT_DETECTION_PERIODS,
    );
    Ok((
        outcome.attempted,
        outcome.evaded_proxy,
        outcome.evaded_victim,
        outcome.assumed_success_rate(),
    ))
}

/// Sweeps the transfer matrix: every attacker family against the live
/// service at every error rate, plus offline RHMD rows (with and without
/// the anomaly member) for detector diversity. Also measures per-victim
/// eval accuracy so the matrix carries the defender's accuracy bill.
pub fn transfer_sweep(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
) -> (Vec<TransferCell>, Vec<AccuracyCell>) {
    let (eval_features, truth) = eval_stream(baseline, dataset, plan.eval_reps);
    let mut cells = Vec::new();
    let mut accuracies = Vec::new();
    let mut service_base_acc = 0.0;

    for &er in &plan.error_rates {
        // Accuracy of this deployment, on a fresh service so the eval
        // stream does not perturb the attack's stream positions.
        let mut acc_service = deploy(
            baseline,
            curve,
            plan,
            er,
            seed ^ 0xb1,
            ExecConfig::serial(),
            None,
        );
        let accuracy = serve_accuracy(&mut acc_service, plan, &eval_features, &truth);
        if er == 0.0 {
            service_base_acc = accuracy;
        }
        accuracies.push(AccuracyCell {
            victim: "service",
            error_rate: er,
            accuracy,
            delta: accuracy - service_base_acc,
        });

        for (a, &attacker) in ATTACKER_FAMILIES.iter().enumerate() {
            let mut oracle = ArenaOracle::new(deploy(
                baseline,
                curve,
                plan,
                er,
                seed ^ 0xb2 ^ ((a as u64) << 8),
                ExecConfig::serial(),
                None,
            ));
            // A degenerate oracle at this rate records a never-converged
            // attack rather than aborting the matrix.
            let (attempted, evaded_proxy, evaded_victim, success) =
                attack_cell(&mut oracle, dataset, attacker, seed).unwrap_or((0, 0, 0, 0.0));
            cells.push(TransferCell {
                victim: "service",
                error_rate: er,
                attacker,
                attempted,
                evaded_proxy,
                evaded_victim,
                success,
                query_cost: oracle.queries(),
            });
        }
    }

    // Offline RHMD rows: switching-ensemble victims, bare Detector path.
    let split = dataset.three_fold_split(0);
    let construction = stochastic_hmd::RhmdConstruction::TwoFeatures;
    let train_cfg = stochastic_hmd::train::HmdTrainConfig::fast();
    let rhmd_rows: Vec<(&'static str, stochastic_hmd::Rhmd)> = [
        (
            "rhmd",
            stochastic_hmd::Rhmd::train(
                dataset,
                split.victim_training(),
                construction,
                &train_cfg,
                seed ^ 0xc1,
            ),
        ),
        (
            "rhmd+anomaly",
            stochastic_hmd::Rhmd::train_with_anomaly(
                dataset,
                split.victim_training(),
                construction,
                &train_cfg,
                seed ^ 0xc1,
            ),
        ),
    ]
    .into_iter()
    .filter_map(|(name, r)| r.ok().map(|r| (name, r)))
    .collect();

    for (name, rhmd) in rhmd_rows {
        // Accuracy over the tiled eval stream (each tile re-rolls the
        // switching draw).
        let mut scorer = rhmd.clone();
        let split = dataset.three_fold_split(0);
        let test = split.testing();
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..plan.eval_reps.max(1) {
            for &i in test {
                total += 1;
                if scorer.classify(dataset.trace(i)).is_malware() == dataset.program(i).is_malware()
                {
                    correct += 1;
                }
            }
        }
        let accuracy = if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        };
        accuracies.push(AccuracyCell {
            victim: name,
            error_rate: 0.0,
            accuracy,
            delta: accuracy - service_base_acc,
        });

        for &attacker in &ATTACKER_FAMILIES {
            let mut fresh = rhmd.clone();
            let mut metered = Metered {
                inner: &mut fresh,
                queries: 0,
            };
            let (attempted, evaded_proxy, evaded_victim, success) =
                attack_cell(&mut metered, dataset, attacker, seed).unwrap_or((0, 0, 0, 0.0));
            cells.push(TransferCell {
                victim: name,
                error_rate: 0.0,
                attacker,
                attempted,
                evaded_proxy,
                evaded_victim,
                success,
                query_cost: metered.queries,
            });
        }
    }

    (cells, accuracies)
}

/// The re-query scenario's outcome, determinism verdicts included.
#[derive(Clone, Debug)]
pub struct RequeryOutcome {
    /// Error rate of the noisy deployments.
    pub error_rate: f64,
    /// Confidence half-band.
    pub band: f64,
    /// Stochastic replicas re-queried per band hit.
    pub replicas: usize,
    /// Accuracy of the clean (er = 0) deployment.
    pub acc_clean: f64,
    /// Accuracy at `error_rate` without re-query.
    pub acc_noisy: f64,
    /// Accuracy at `error_rate` with the ensemble re-query (stochastic
    /// replicas + anomaly vote).
    pub acc_requery: f64,
    /// Fraction of the lost accuracy the re-query recovered.
    pub recovered: f64,
    /// Queries whose primary score landed in the band.
    pub band_hits: u64,
    /// Extra ensemble draws spent.
    pub requeries: u64,
    /// Queries served by the re-query deployment.
    pub served: u64,
    /// Serial verdict checksum of the re-query replay.
    pub serial_checksum: u64,
    /// Threaded verdict checksum of the same replay.
    pub threaded_checksum: u64,
    /// Whether serial and threaded replays matched bit-for-bit
    /// (checksums and timing-stripped telemetry).
    pub thread_invariant: bool,
    /// Whether a mid-stream checkpoint/restore converged to the same
    /// final checksum as the uninterrupted run.
    pub restore_identical: bool,
}

impl RequeryOutcome {
    /// Accuracy lost to the error rate without the counter.
    pub fn lost(&self) -> f64 {
        self.acc_clean - self.acc_noisy
    }

    /// Whether the recovery gate holds: at least half the lost accuracy
    /// recovered, or nothing meaningful was lost.
    pub fn recovers_half(&self) -> bool {
        self.lost() < TINY_LOSS || self.recovered >= 0.5
    }

    /// Extra ensemble draws per served query — the defender's honest
    /// re-query bill.
    pub fn requery_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.requeries as f64 / self.served as f64
    }
}

/// Replays the eval stream through a re-query deployment, returning the
/// accuracy, final checksum, and timing-stripped snapshot.
#[allow(clippy::too_many_arguments)]
fn requery_replay(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    plan: &ArenaPlan,
    features: &[Vec<f32>],
    truth: &[bool],
    seed: u64,
    exec: ExecConfig,
    scorer: &AnomalyScorer,
) -> (f64, u64, stochastic_hmd::telemetry::TelemetrySnapshot) {
    let rq = RequeryConfig::new(plan.requery_band, plan.requery_replicas);
    let mut service = deploy(baseline, curve, plan, plan.requery_er, seed, exec, Some(rq));
    service
        .install_anomaly_scorer(scorer.clone())
        .expect("the scorer was fitted on this baseline's features");
    let accuracy = serve_accuracy(&mut service, plan, features, truth);
    (
        accuracy,
        service.verdict_checksum(),
        service.snapshot().without_timing(),
    )
}

/// Measures the uncertainty-aware re-query counter at the band edge,
/// plus the arena's determinism gates (serial vs threaded replay and a
/// mid-stream checkpoint/restore).
pub fn requery_recovery(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
    exec: &ExecConfig,
) -> RequeryOutcome {
    let (features, truth) = eval_stream(baseline, dataset, plan.eval_reps);
    let scorer = benign_anomaly_scorer(baseline, dataset);

    // Clean and noisy (no re-query) references.
    let mut clean = deploy(
        baseline,
        curve,
        plan,
        0.0,
        seed ^ 0xd1,
        ExecConfig::serial(),
        None,
    );
    let acc_clean = serve_accuracy(&mut clean, plan, &features, &truth);
    let mut noisy = deploy(
        baseline,
        curve,
        plan,
        plan.requery_er,
        seed ^ 0xd2,
        ExecConfig::serial(),
        None,
    );
    let acc_noisy = serve_accuracy(&mut noisy, plan, &features, &truth);

    // The counter, serial and threaded: same seed, only the worker pool
    // differs.
    let (acc_requery, serial_checksum, serial_snap) = requery_replay(
        baseline,
        curve,
        plan,
        &features,
        &truth,
        seed ^ 0xd3,
        ExecConfig::serial(),
        &scorer,
    );
    let (_, threaded_checksum, threaded_snap) = requery_replay(
        baseline,
        curve,
        plan,
        &features,
        &truth,
        seed ^ 0xd3,
        *exec,
        &scorer,
    );
    let thread_invariant = serial_checksum == threaded_checksum && serial_snap == threaded_snap;

    // Mid-arena checkpoint: serve half the stream, checkpoint, continue;
    // a restored service must replay the tail to the same checksum.
    let restore_identical = {
        let rq = RequeryConfig::new(plan.requery_band, plan.requery_replicas);
        let mut original = deploy(
            baseline,
            curve,
            plan,
            plan.requery_er,
            seed ^ 0xd3,
            ExecConfig::serial(),
            Some(rq),
        );
        original
            .install_anomaly_scorer(scorer.clone())
            .expect("dims match");
        let half = features.len() / 2;
        let (head_f, tail_f) = features.split_at(half);
        let (head_t, tail_t) = truth.split_at(half);
        let _ = serve_accuracy(&mut original, plan, head_f, head_t);
        let checkpoint = original.checkpoint();
        let _ = serve_accuracy(&mut original, plan, tail_f, tail_t);

        match MonitoringService::restore(baseline, None, &checkpoint, ExecConfig::serial()) {
            Ok(mut resumed) => {
                // The anomaly member is not checkpointed; the caller
                // re-installs it, exactly as documented.
                resumed
                    .install_anomaly_scorer(scorer.clone())
                    .expect("dims match");
                let _ = serve_accuracy(&mut resumed, plan, tail_f, tail_t);
                resumed.verdict_checksum() == original.verdict_checksum()
                    && resumed.snapshot().without_timing() == original.snapshot().without_timing()
            }
            Err(_) => false,
        }
    };

    let lost = acc_clean - acc_noisy;
    let recovered = if lost.abs() < f64::EPSILON {
        0.0
    } else {
        (acc_requery - acc_noisy) / lost
    };
    RequeryOutcome {
        error_rate: plan.requery_er,
        band: plan.requery_band,
        replicas: plan.requery_replicas,
        acc_clean,
        acc_noisy,
        acc_requery,
        recovered,
        band_hits: serial_snap.band_hits,
        requeries: serial_snap.requeries,
        served: serial_snap.queries,
        serial_checksum,
        threaded_checksum,
        thread_invariant,
        restore_identical,
    }
}

/// The workload-drift scenario's outcome.
#[derive(Clone, Debug)]
pub struct DriftOutcome {
    /// Dirichlet segments the schedule shifted through.
    pub segments: usize,
    /// Queries replayed.
    pub queries: u64,
    /// Watchdog drift detections — must be zero: the mix shifted, the
    /// physics did not.
    pub drift_events: u64,
    /// Shard crashes (scripted or physics) — also expected zero.
    pub crashes: u64,
    /// Recalibrations the pool ran (generation bumps past deploy).
    pub retries: u64,
    /// Serial verdict checksum.
    pub checksum: u64,
    /// Whether the threaded replay matched the serial one.
    pub thread_invariant: bool,
}

/// Replays a Dirichlet mix-shift stream through a supervised pool at a
/// fixed fault rate.
fn drift_replay(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
    exec: ExecConfig,
) -> (stochastic_hmd::telemetry::TelemetrySnapshot, u64) {
    let total = plan.drift_batches * plan.drift_batch as u64;
    let per_segment = (total / plan.drift_segments.max(1) as u64).max(1);
    let schedule = DriftSchedule::dirichlet(plan.drift_segments, per_segment, 0.5, seed)
        .expect("segment and span counts are positive");
    let stream = DriftStream::new(dataset, &schedule, seed ^ 0xe1)
        .expect("generated datasets cover every family");
    let spec = baseline.spec();

    let config = ServeConfig::new(plan.shards)
        .with_seed(seed ^ 0xe2)
        .with_target_error_rate(crate::setup::OPERATING_ERROR_RATE)
        .with_batch_size(plan.drift_batch)
        .with_exec(exec);
    let mut service = MonitoringService::supervised(
        baseline,
        SupervisorConfig::new(DeviceProfile::reference()),
        config,
    )
    .expect("the reference device calibrates at the operating point");

    let mut position = 0u64;
    for _ in 0..plan.drift_batches {
        let batch: Vec<Vec<f32>> = (0..plan.drift_batch)
            .map(|i| spec.extract(dataset.trace(stream.pick(position + i as u64))))
            .collect();
        service.process_feature_batch(&batch);
        position += plan.drift_batch as u64;
    }
    (
        service.snapshot().without_timing(),
        service.verdict_checksum(),
    )
}

/// Runs the drift scenario serial and threaded and folds the verdicts.
pub fn drift_scenario(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
    exec: &ExecConfig,
) -> DriftOutcome {
    let (serial, serial_checksum) =
        drift_replay(baseline, dataset, plan, seed, ExecConfig::serial());
    let (threaded, threaded_checksum) = drift_replay(baseline, dataset, plan, seed, *exec);
    DriftOutcome {
        segments: plan.drift_segments,
        queries: serial.queries,
        drift_events: serial.total_drift_events(),
        crashes: serial.total_crashes(),
        retries: serial.total_retries(),
        checksum: serial_checksum,
        thread_invariant: serial == threaded && serial_checksum == threaded_checksum,
    }
}

/// Everything `arena_bench` measures, ready to render and gate.
#[derive(Clone, Debug)]
pub struct ArenaMatrix {
    /// The denoising attacker's target agreement.
    pub denoise_target: f64,
    /// Per-error-rate denoising cost cells.
    pub denoise: Vec<DenoiseCell>,
    /// The transfer matrix.
    pub transfer: Vec<TransferCell>,
    /// Per-victim accuracy cells.
    pub accuracy: Vec<AccuracyCell>,
    /// The re-query counter's outcome.
    pub requery: RequeryOutcome,
    /// The workload-drift scenario's outcome.
    pub drift: DriftOutcome,
    /// Wall-clock seconds the whole arena took.
    pub elapsed_s: f64,
}

impl ArenaMatrix {
    /// Mean transfer success against the live service at one error rate.
    pub fn service_success_at(&self, er: f64) -> f64 {
        let cells: Vec<&TransferCell> = self
            .transfer
            .iter()
            .filter(|c| c.victim == "service" && (c.error_rate - er).abs() < 1e-12)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|c| c.success).sum::<f64>() / cells.len() as f64
    }

    /// Mean transfer success pooled over every live-service cell with
    /// `error_rate >= min_er` — the undervolted side of the Figure-4
    /// comparison, pooled across rates and attacker families so the gate
    /// rides the trend rather than one small-sample cell.
    pub fn pooled_service_success(&self, min_er: f64) -> f64 {
        let cells: Vec<&TransferCell> = self
            .transfer
            .iter()
            .filter(|c| c.victim == "service" && c.error_rate >= min_er)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|c| c.success).sum::<f64>() / cells.len() as f64
    }

    /// The denoising cost curve's monotonicity gate: required
    /// queries-per-sample never drops as the delivered error rate grows.
    pub fn denoise_monotone(&self) -> bool {
        self.denoise
            .windows(2)
            .all(|w| w[0].curve.required_or_saturated() <= w[1].curve.required_or_saturated())
    }
}

/// Runs the whole arena at one seed.
pub fn run_arena(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    plan: &ArenaPlan,
    seed: u64,
    exec: &ExecConfig,
) -> ArenaMatrix {
    let start = Instant::now();
    let curve = calibration();
    let (denoise_target, denoise) = denoise_sweep(baseline, &curve, dataset, plan, seed);
    let (transfer, accuracy) = transfer_sweep(baseline, &curve, dataset, plan, seed);
    let requery = requery_recovery(baseline, &curve, dataset, plan, seed, exec);
    let drift = drift_scenario(baseline, dataset, plan, seed, exec);
    ArenaMatrix {
        denoise_target,
        denoise,
        transfer,
        accuracy,
        requery,
        drift,
        elapsed_s: start.elapsed().as_secs_f64(),
    }
}

fn proxy_name(kind: ProxyKind) -> &'static str {
    match kind {
        ProxyKind::Mlp => "mlp",
        ProxyKind::LogisticRegression => "logistic",
        ProxyKind::DecisionTree => "tree",
        ProxyKind::RandomForest => "forest",
    }
}

/// Renders the matrix as the hand-built JSON written to `BENCH_9.json`
/// (the vendored `serde` is a no-op shim; checksums are decimal strings
/// because they exceed 2^53). Timing lives only under `"timing"` so CI
/// can strip it and diff serial vs threaded runs byte-for-byte.
pub fn render_json(matrix: &ArenaMatrix, seed: u64, scale: &str, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"adaptive_arena\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"timing\": {{\"elapsed_s\": {:.3}}},\n",
        matrix.elapsed_s
    ));
    out.push_str(&format!(
        "  \"denoise_target_agreement\": {:.4},\n",
        matrix.denoise_target
    ));
    out.push_str("  \"denoise_curve\": [\n");
    for (i, cell) in matrix.denoise.iter().enumerate() {
        let required = match cell.curve.required {
            Some(k) => format!("{k}"),
            None => "null".to_string(),
        };
        let points: Vec<String> = cell
            .curve
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"queries_per_sample\": {}, \"query_cost\": {}, \"agreement\": {:.4}}}",
                    p.queries_per_sample, p.query_cost, p.agreement
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"error_rate\": {:.2}, \"required_queries_per_sample\": {}, \
             \"total_query_cost\": {}, \"oracle_queries\": {}, \"points\": [{}]}}{}\n",
            cell.error_rate,
            required,
            cell.curve.total_query_cost(),
            cell.oracle_queries,
            points.join(", "),
            if i + 1 == matrix.denoise.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"transfer\": [\n");
    for (i, c) in matrix.transfer.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"victim\": \"{}\", \"error_rate\": {:.2}, \"attacker\": \"{}\", \
             \"attempted\": {}, \"evaded_proxy\": {}, \"evaded_victim\": {}, \
             \"success\": {:.4}, \"query_cost\": {}}}{}\n",
            c.victim,
            c.error_rate,
            proxy_name(c.attacker),
            c.attempted,
            c.evaded_proxy,
            c.evaded_victim,
            c.success,
            c.query_cost,
            if i + 1 == matrix.transfer.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"accuracy\": [\n");
    for (i, c) in matrix.accuracy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"victim\": \"{}\", \"error_rate\": {:.2}, \"accuracy\": {:.4}, \
             \"delta\": {:.4}}}{}\n",
            c.victim,
            c.error_rate,
            c.accuracy,
            c.delta,
            if i + 1 == matrix.accuracy.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n");
    let rq = &matrix.requery;
    out.push_str(&format!(
        "  \"requery\": {{\"error_rate\": {:.2}, \"band\": {:.2}, \"replicas\": {}, \
         \"acc_clean\": {:.4}, \"acc_noisy\": {:.4}, \"acc_requery\": {:.4}, \
         \"recovered\": {:.4}, \"band_hits\": {}, \"requeries\": {}, \"served\": {}, \
         \"requery_rate\": {:.4}}},\n",
        rq.error_rate,
        rq.band,
        rq.replicas,
        rq.acc_clean,
        rq.acc_noisy,
        rq.acc_requery,
        rq.recovered,
        rq.band_hits,
        rq.requeries,
        rq.served,
        rq.requery_rate(),
    ));
    let d = &matrix.drift;
    out.push_str(&format!(
        "  \"drift\": {{\"segments\": {}, \"queries\": {}, \"drift_events\": {}, \
         \"crashes\": {}, \"retries\": {}, \"checksum\": \"{}\", \
         \"thread_invariant\": {}}},\n",
        d.segments, d.queries, d.drift_events, d.crashes, d.retries, d.checksum, d.thread_invariant,
    ));
    out.push_str(&format!(
        "  \"determinism\": {{\"serial_checksum\": \"{}\", \"threaded_checksum\": \"{}\", \
         \"thread_invariant\": {}, \"restore_identical\": {}}}\n",
        rq.serial_checksum, rq.threaded_checksum, rq.thread_invariant, rq.restore_identical,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;

    fn fixture() -> (Dataset, BaselineHmd, ArenaPlan) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        let mut plan = ArenaPlan::for_scale(Scale::Fast);
        // Tiny eval stream: the unit tests check plumbing, not power.
        plan.eval_reps = 4;
        plan.drift_batches = 4;
        plan.drift_batch = 128;
        (dataset, baseline, plan)
    }

    #[test]
    fn requery_scenario_is_deterministic_and_restorable() {
        let (dataset, baseline, plan) = fixture();
        let curve = calibration();
        let outcome = requery_recovery(
            &baseline,
            &curve,
            &dataset,
            &plan,
            11,
            &ExecConfig::threads(4),
        );
        assert!(outcome.thread_invariant, "requery replay diverged");
        assert!(outcome.restore_identical, "restore diverged");
        assert!(outcome.band_hits > 0, "the band must see hits at er 0.3");
        assert!(outcome.requeries > 0);
        assert!((0.0..=1.0).contains(&outcome.acc_clean));
    }

    #[test]
    fn drift_does_not_trip_the_watchdog() {
        let (dataset, baseline, plan) = fixture();
        let outcome = drift_scenario(&baseline, &dataset, &plan, 7, &ExecConfig::threads(4));
        assert_eq!(
            outcome.drift_events, 0,
            "pure workload drift must not fire the delivered-rate watchdog"
        );
        assert!(outcome.thread_invariant, "drift replay diverged");
        assert_eq!(
            outcome.queries,
            plan.drift_batches * plan.drift_batch as u64
        );
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let matrix = ArenaMatrix {
            denoise_target: 0.85,
            denoise: vec![DenoiseCell {
                error_rate: 0.1,
                oracle_queries: 132,
                curve: DenoiseCurve {
                    target_agreement: 0.85,
                    points: vec![],
                    required: Some(3),
                },
            }],
            transfer: vec![TransferCell {
                victim: "service",
                error_rate: 0.1,
                attacker: ProxyKind::Mlp,
                attempted: 10,
                evaded_proxy: 8,
                evaded_victim: 2,
                success: 0.25,
                query_cost: 44,
            }],
            accuracy: vec![AccuracyCell {
                victim: "service",
                error_rate: 0.1,
                accuracy: 0.9,
                delta: -0.02,
            }],
            requery: RequeryOutcome {
                error_rate: 0.3,
                band: 0.15,
                replicas: 14,
                acc_clean: 0.95,
                acc_noisy: 0.85,
                acc_requery: 0.92,
                recovered: 0.7,
                band_hits: 5,
                requeries: 70,
                served: 100,
                serial_checksum: 7,
                threaded_checksum: 7,
                thread_invariant: true,
                restore_identical: true,
            },
            drift: DriftOutcome {
                segments: 4,
                queries: 1000,
                drift_events: 0,
                crashes: 0,
                retries: 0,
                checksum: 9,
                thread_invariant: true,
            },
            elapsed_s: 1.5,
        };
        let doc = render_json(&matrix, 42, "fast", 8);
        assert!(doc.contains("\"bench\": \"adaptive_arena\""));
        assert!(doc.contains("\"required_queries_per_sample\": 3"));
        assert!(doc.contains("\"restore_identical\": true"));
        assert!(doc.contains("\"drift_events\": 0"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // Timing is confined to the strippable key.
        assert!(doc.contains("\"timing\": {\"elapsed_s\""));
    }

    #[test]
    fn requery_gate_logic() {
        let mut rq = RequeryOutcome {
            error_rate: 0.3,
            band: 0.15,
            replicas: 14,
            acc_clean: 0.95,
            acc_noisy: 0.85,
            acc_requery: 0.90,
            recovered: 0.5,
            band_hits: 0,
            requeries: 0,
            served: 0,
            serial_checksum: 0,
            threaded_checksum: 0,
            thread_invariant: true,
            restore_identical: true,
        };
        assert!(rq.recovers_half());
        rq.recovered = 0.49;
        assert!(!rq.recovers_half());
        // Tiny loss: trivially recovered.
        rq.acc_noisy = rq.acc_clean - 0.01;
        assert!(rq.recovers_half());
    }
}

//! Plain-text table printing for experiment output.

/// Prints a titled rule.
pub fn title(text: &str) {
    println!("\n=== {text} ===");
}

/// Prints a header row followed by a rule.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Prints one data row (already formatted cells).
pub fn row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats `mean ± std` percentages.
pub fn pct_pm(mean: f64, std: f64) -> String {
    format!("{:.1}±{:.1}%", mean * 100.0, std * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.941), "94.1%");
        assert_eq!(pct_pm(0.5, 0.012), "50.0±1.2%");
    }
}

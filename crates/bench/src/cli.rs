//! Minimal flag parsing shared by all experiment binaries.

use stochastic_hmd::exec::ExecConfig;

const USAGE: &str = "flags: --seed N  --reps N  --threads N  --paper  --fast";

/// Dataset scale selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke-test dataset (~120 programs).
    Fast,
    /// Default medium dataset (~720 programs) — minutes, not hours.
    Medium,
    /// The paper's full 3 000 + 600 dataset.
    Paper,
}

/// Parsed command-line arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Args {
    /// Master seed.
    pub seed: u64,
    /// Stochastic repetitions (`None`: experiment default).
    pub reps: Option<usize>,
    /// Worker threads (`None`: one per hardware thread). Results are
    /// bit-identical at any thread count.
    pub threads: Option<usize>,
    /// Dataset scale.
    pub scale: Scale,
}

impl Args {
    /// Parses `std::env::args()`, exiting with a usage message on
    /// malformed flags.
    pub fn parse() -> Args {
        match Args::try_from_iter(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags (tests); binaries
    /// should use [`Args::parse`], which exits cleanly instead.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Args {
        match Args::try_from_iter(args) {
            Ok(args) => args,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parses an explicit argument list, reporting malformed flags as a
    /// message rather than panicking.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed flag.
    pub fn try_from_iter<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args {
            seed: 42,
            reps: None,
            threads: None,
            scale: Scale::Medium,
        };
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("--seed expects an integer, got {v}"))?;
                }
                "--reps" => {
                    let v = it.next().ok_or("--reps needs a value")?;
                    out.reps = Some(
                        v.parse()
                            .map_err(|_| format!("--reps expects an integer, got {v}"))?,
                    );
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    out.threads = Some(
                        v.parse()
                            .map_err(|_| format!("--threads expects an integer, got {v}"))?,
                    );
                }
                "--paper" => out.scale = Scale::Paper,
                "--fast" => out.scale = Scale::Fast,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}; try --help")),
            }
        }
        Ok(out)
    }

    /// The execution configuration from `--threads` (auto-sized when the
    /// flag is absent).
    pub fn exec(&self) -> ExecConfig {
        ExecConfig::from_flag(self.threads)
    }

    /// Repetitions to use, given an experiment default.
    pub fn reps_or(&self, default: usize) -> usize {
        self.reps.unwrap_or(match self.scale {
            Scale::Fast => default.div_ceil(10),
            _ => default,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 42);
        assert_eq!(a.reps, None);
        assert_eq!(a.scale, Scale::Medium);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--seed", "7", "--reps", "3", "--threads", "2", "--paper"]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.reps, Some(3));
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.exec().thread_count(), 2);
        assert_eq!(a.scale, Scale::Paper);
    }

    #[test]
    fn threads_default_to_auto() {
        let a = parse(&[]);
        assert_eq!(a.threads, None);
        assert!(a.exec().thread_count() >= 1);
    }

    #[test]
    fn fast_scales_down_default_reps() {
        let a = parse(&["--fast"]);
        assert_eq!(a.reps_or(50), 5);
        let b = parse(&[]);
        assert_eq!(b.reps_or(50), 50);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    fn try_from_iter_reports_errors_without_panicking() {
        let err = Args::try_from_iter(["--seed".to_string()]).unwrap_err();
        assert!(err.contains("--seed needs a value"));
        let err = Args::try_from_iter(["--reps".to_string(), "abc".to_string()]).unwrap_err();
        assert!(err.contains("expects an integer"));
        let err = Args::try_from_iter(["--bogus".to_string()]).unwrap_err();
        assert!(err.contains("unknown flag"));
    }
}

//! Batched-serving measurement: the structure-of-arrays lane-parallel
//! inference path vs the scalar serving path, swept over lane widths and
//! error rates.
//!
//! PR 7 taught the serving engine to score `B` same-shard queries
//! simultaneously: activations live in lane-major planes, the inner MAC
//! loop is a straight-line `i64` loop over `[i64; LANES]` accumulator
//! lanes, and each lane owns its per-query derived fault stream whose gap
//! countdown is decremented in whole fault-free runs. This module replays
//! the same query stream through deployments that differ *only* in
//! [`stochastic_hmd::serve::ServeConfig::lanes`] and records per-width
//! throughput next to two identity verdicts (`BENCH_6.json` at the
//! repository root, written by the `batch_bench` binary):
//!
//! - **`matches_scalar`** — the batched deployment's verdict checksum and
//!   timing-stripped telemetry are bit-identical to the `lanes = 1`
//!   deployment's. Batching is a wall-clock arrangement, never a semantic
//!   one: every lane's fault stream is seeded per query from the stream
//!   position exactly as the scalar path seeds it.
//! - **`thread_invariant`** — the same width fanned across a worker pool
//!   matches its own serial replay, so lanes and threads compose.
//!
//! Two measurement choices keep the numbers honest on shared hardware:
//!
//! - **Pre-extracted features.** Throughput is timed through
//!   [`MonitoringService::process_feature_batch`] on feature vectors
//!   extracted once up front, the same engine-level measurement BENCH_2
//!   used for the scalar path. Trace feature extraction is identical on
//!   both sides and untouched by this PR, so including it would only
//!   dilute the quantity under test (the lane-parallel inference engine);
//!   the identity verdicts still cover the full verdict pipeline.
//! - **Paired interleaved timing.** The scalar and batched deployments
//!   advance through the stream *alternately, one chunk at a time*, each
//!   accumulating only its own elapsed time. A noisy host changes speed
//!   in epochs much longer than one chunk, so an epoch inflates both
//!   sides of the ratio equally instead of whichever deployment happened
//!   to run during it.
//!
//! The speedup that matters is *single-thread* `batched_qps / scalar_qps`
//! at the paper's er = 0.1 operating point: unlike thread scaling it is
//! not capped by the host's core count, so the `--check` floor applies
//! unclamped even in a 1-core container.

use shmd_volt::calibration::CalibrationCurve;
use shmd_workload::dataset::Dataset;
use shmd_workload::trace::Trace;
use std::time::{Duration, Instant};
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::BaselineHmd;

/// Lane widths the batched-serving benchmark sweeps: the scalar path, the
/// half-width and default widths, and the widest supported batch.
pub const BENCH_LANE_WIDTHS: [usize; 4] = [1, 4, 8, 16];

/// Error rates the sweep covers: two practical operating points around
/// the paper's selected er = 0.1, and a deep-undervolt point where faults
/// stop being rare and the fault-event path dominates.
pub const BENCH_BATCH_ERROR_RATES: [f64; 3] = [0.05, 0.1, 0.3];

/// Shard-pool size every deployment uses. Small enough that each claimed
/// query range contributes many full lane blocks per shard, large enough
/// that the per-shard regrouping actually exercises the routing.
pub const BENCH_BATCH_SHARDS: usize = 4;

/// One (error rate, lane width) measurement.
#[derive(Clone, Debug)]
pub struct BatchPoint {
    /// Topology label of the deployment's network (e.g. `16-8-1`).
    pub network: String,
    /// Calibration target error rate of the deployment.
    pub error_rate: f64,
    /// Lane width of the batched deployment (1 = the scalar path).
    pub lanes: usize,
    /// Queries replayed per deployment.
    pub queries: usize,
    /// Queries per second of the `lanes = 1` deployment, serial pool,
    /// timed on pre-extracted features in paired alternation with this
    /// width — the scalar serving path this PR's speedup is measured
    /// against.
    pub scalar_qps: f64,
    /// Queries per second of this width's deployment, serial pool, timed
    /// on pre-extracted features (the other half of the pairing).
    pub batched_qps: f64,
    /// Queries per second of this width fanned across the worker pool.
    pub threaded_qps: f64,
    /// Verdict checksum of this width's serial replay.
    pub checksum: u64,
    /// Whether this width's verdict checksum *and* timing-stripped
    /// telemetry matched the `lanes = 1` deployment bit-for-bit.
    pub matches_scalar: bool,
    /// Whether this width's threaded replay matched its serial one.
    pub thread_invariant: bool,
    /// Shards serving the baseline fallback after deployment.
    pub degraded_shards: usize,
}

impl BatchPoint {
    /// Single-thread `batched_qps / scalar_qps`.
    pub fn speedup(&self) -> f64 {
        self.batched_qps / self.scalar_qps
    }
}

/// Deploys a fresh service for `config` and replays the feature stream
/// through it in `batch_size` chunks, returning the finished service and
/// its queries-per-second.
fn replay(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    config: ServeConfig,
    features: &[Vec<f32>],
) -> (MonitoringService, f64) {
    let chunk_len = config.batch_size.max(1);
    let mut service =
        MonitoringService::deploy(baseline, curve, config).expect("benchmark config is valid");
    let start = Instant::now();
    for chunk in features.chunks(chunk_len) {
        service.process_feature_batch(chunk);
    }
    let qps = features.len() as f64 / start.elapsed().as_secs_f64();
    (service, qps)
}

/// Deploys a scalar (`lanes = 1`) and a `lanes`-wide service and replays
/// the feature stream through both *in alternation*, one chunk at a time,
/// timing each side separately. Both deployments see every host-speed
/// epoch, so their throughput ratio is robust to machine noise that would
/// skew back-to-back runs.
fn paired_replay(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    config: ServeConfig,
    lanes: usize,
    features: &[Vec<f32>],
) -> (MonitoringService, f64, MonitoringService, f64) {
    let chunk_len = config.batch_size.max(1);
    let serial = config.with_exec(ExecConfig::serial());
    let mut scalar = MonitoringService::deploy(baseline, curve, serial.with_lanes(1))
        .expect("benchmark config is valid");
    let mut wide = MonitoringService::deploy(baseline, curve, serial.with_lanes(lanes))
        .expect("benchmark config is valid");
    let mut scalar_elapsed = Duration::ZERO;
    let mut wide_elapsed = Duration::ZERO;
    for chunk in features.chunks(chunk_len) {
        let t = Instant::now();
        scalar.process_feature_batch(chunk);
        scalar_elapsed += t.elapsed();
        let t = Instant::now();
        wide.process_feature_batch(chunk);
        wide_elapsed += t.elapsed();
    }
    let n = features.len() as f64;
    let scalar_qps = n / scalar_elapsed.as_secs_f64();
    let wide_qps = n / wide_elapsed.as_secs_f64();
    (scalar, scalar_qps, wide, wide_qps)
}

/// Measures one error rate across [`BENCH_LANE_WIDTHS`]: per width a
/// paired scalar/batched serial replay (timed) plus a threaded replay of
/// the same stream, with the two identity verdicts evaluated on verdict
/// checksums and timing-stripped telemetry.
pub fn measure_rate(
    baseline: &BaselineHmd,
    network: &str,
    curve: &CalibrationCurve,
    queries: &[&Trace],
    er: f64,
    seed: u64,
    exec: &ExecConfig,
) -> Vec<BatchPoint> {
    // Extraction is deterministic and shared by every deployment, so the
    // verdict stream over these vectors is identical to processing the
    // traces; doing it once up front keeps it out of every timed region.
    let spec = baseline.spec();
    let features: Vec<Vec<f32>> = queries.iter().map(|t| spec.extract(t)).collect();
    let config = ServeConfig::new(BENCH_BATCH_SHARDS)
        .with_seed(seed)
        .with_target_error_rate(er);
    BENCH_LANE_WIDTHS
        .iter()
        .map(|&lanes| {
            let (scalar, scalar_qps, serial, batched_qps) =
                paired_replay(baseline, curve, config, lanes, &features);
            let (threaded, threaded_qps) = replay(
                baseline,
                curve,
                config.with_lanes(lanes).with_exec(*exec),
                &features,
            );
            let scalar_snapshot = scalar.snapshot().without_timing();
            let serial_snapshot = serial.snapshot().without_timing();
            let threaded_snapshot = threaded.snapshot().without_timing();
            BatchPoint {
                network: network.to_string(),
                error_rate: er,
                lanes,
                queries: queries.len(),
                scalar_qps,
                batched_qps,
                threaded_qps,
                checksum: serial_snapshot.verdict_checksum,
                matches_scalar: serial_snapshot == scalar_snapshot,
                thread_invariant: threaded_snapshot == serial_snapshot,
                degraded_shards: serial_snapshot.degraded_shards(),
            }
        })
        .collect()
}

/// Sweeps [`BENCH_BATCH_ERROR_RATES`] × [`BENCH_LANE_WIDTHS`] over a
/// stream drawn from `dataset` (queries cycle through the whole dataset).
pub fn measure_sweep(
    baseline: &BaselineHmd,
    network: &str,
    curve: &CalibrationCurve,
    dataset: &Dataset,
    seed: u64,
    queries: usize,
    exec: &ExecConfig,
) -> Vec<BatchPoint> {
    let stream: Vec<&Trace> = (0..queries)
        .map(|i| dataset.trace(i % dataset.len()))
        .collect();
    BENCH_BATCH_ERROR_RATES
        .iter()
        .flat_map(|&er| measure_rate(baseline, network, curve, &stream, er, seed, exec))
        .collect()
}

/// Renders the sweep as the hand-built JSON written to `BENCH_6.json`.
///
/// The vendored `serde` is a no-op shim, so the document is formatted
/// here; checksums are decimal strings to stay integer-exact in any
/// reader (they exceed 2^53).
pub fn render_json(points: &[BatchPoint], seed: u64, scale: &str, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"batched_serving\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        crate::serve::hardware_threads()
    ));
    out.push_str(&format!("  \"shards\": {BENCH_BATCH_SHARDS},\n"));
    out.push_str(
        "  \"measurement\": \"pre-extracted features, scalar/batched deployments \
         timed in paired chunk alternation\",\n",
    );
    out.push_str(
        "  \"engine\": \"structure-of-arrays lane batching: lane-major activation \
         planes, straight-line i64 MAC over accumulator lanes, per-lane derived \
         fault streams drained in whole fault-free runs, precomputed flip-position \
         tables\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"network\": \"{}\", \"error_rate\": {}, \"lanes\": {}, \"queries\": {}, \
             \"scalar_qps\": {:.1}, \"batched_qps\": {:.1}, \"speedup\": {:.3}, \
             \"threaded_qps\": {:.1}, \"checksum\": \"{}\", \"matches_scalar\": {}, \
             \"thread_invariant\": {}, \"degraded_shards\": {}}}{}\n",
            p.network,
            p.error_rate,
            p.lanes,
            p.queries,
            p.scalar_qps,
            p.batched_qps,
            p.speedup(),
            p.threaded_qps,
            p.checksum,
            p.matches_scalar,
            p.thread_invariant,
            p.degraded_shards,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;
    use shmd_volt::calibration::{Calibrator, DeviceProfile};

    fn fixture() -> (Dataset, BaselineHmd, CalibrationCurve) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        (dataset, baseline, curve)
    }

    #[test]
    fn every_width_matches_scalar_and_is_thread_invariant() {
        let (dataset, baseline, curve) = fixture();
        let stream: Vec<&Trace> = (0..80).map(|i| dataset.trace(i % dataset.len())).collect();
        let points = measure_rate(
            &baseline,
            "16-8-1",
            &curve,
            &stream,
            0.1,
            7,
            &ExecConfig::threads(4),
        );
        assert_eq!(points.len(), BENCH_LANE_WIDTHS.len());
        for p in &points {
            assert!(p.scalar_qps.is_finite() && p.scalar_qps > 0.0);
            assert!(p.batched_qps.is_finite() && p.batched_qps > 0.0);
            assert!(
                p.matches_scalar,
                "lane width {} changed the verdict stream",
                p.lanes
            );
            assert!(
                p.thread_invariant,
                "lane width {} is not thread-invariant",
                p.lanes
            );
            assert_eq!(p.degraded_shards, 0);
        }
        // Every width folded the same stream: one checksum across widths.
        assert!(
            points.iter().all(|p| p.checksum == points[0].checksum),
            "widths disagree on the verdict checksum"
        );
    }

    #[test]
    fn feature_replay_matches_trace_replay() {
        // The timed path feeds pre-extracted features; the claim that this
        // is the same stream the trace pipeline serves must hold exactly.
        let (dataset, baseline, curve) = fixture();
        let stream: Vec<&Trace> = (0..40).map(|i| dataset.trace(i % dataset.len())).collect();
        let spec = baseline.spec();
        let features: Vec<Vec<f32>> = stream.iter().map(|t| spec.extract(t)).collect();
        let config = ServeConfig::new(2).with_seed(3).with_target_error_rate(0.1);
        let mut via_traces = MonitoringService::deploy(&baseline, &curve, config).expect("valid");
        via_traces.process_stream(&stream);
        let (via_features, _) = replay(&baseline, &curve, config, &features);
        assert_eq!(
            via_traces.snapshot().without_timing(),
            via_features.snapshot().without_timing(),
            "pre-extracted feature replay diverged from the trace pipeline"
        );
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = BatchPoint {
            network: "16-8-1".to_string(),
            error_rate: 0.1,
            lanes: 8,
            queries: 100,
            scalar_qps: 1000.0,
            batched_qps: 2000.0,
            threaded_qps: 1900.0,
            checksum: 42,
            matches_scalar: true,
            thread_invariant: true,
            degraded_shards: 0,
        };
        let doc = render_json(&[p], 42, "fast", 1);
        assert!(doc.contains("\"speedup\": 2.000"));
        assert!(doc.contains("\"matches_scalar\": true"));
        assert!(doc.contains("\"thread_invariant\": true"));
        assert!(doc.contains("\"checksum\": \"42\""));
        assert!(doc.contains("\"lanes\": 8"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

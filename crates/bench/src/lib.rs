//! Experiment harness for the Stochastic-HMD reproduction.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §4 for the index). The heavy lifting lives
//! in [`experiments`] so that integration tests can exercise the exact same
//! code paths at reduced scale.
//!
//! Common flags for all binaries:
//!
//! ```text
//! --seed N      master seed (default 42)
//! --reps N      stochastic repetitions (default: experiment-specific)
//! --paper       full paper-scale dataset (3000 malware + 600 benign)
//! --fast        tiny dataset for smoke runs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod arena;
pub mod batch;
pub mod chaos;
pub mod cli;
pub mod daemon;
pub mod durability;
pub mod experiments;
pub mod perf;
pub mod power;
pub mod serve;
pub mod setup;
pub mod table;

pub use cli::Args;

//! The paper's experiments as reusable functions.
//!
//! Each figure binary is a thin printer over one of these functions, so
//! integration tests can run the identical code at reduced scale.

use crate::cli::Args;
use crate::setup::{train_config, victim, OPERATING_ERROR_RATE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shmd_attack::campaign::{AttackCampaign, AttackTrainingSet};
use shmd_attack::reverse::ReverseConfig;
use shmd_attack::ProxyKind;
use shmd_volt::entropy::approximate_entropy;
use shmd_volt::fault::{FaultInjector, FaultModel, FaultStats};
use shmd_volt::multiplier::MultiplierTimingModel;
use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use shmd_workload::dataset::Dataset;
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::exec::{derive_seed, parallel_map_n};
use stochastic_hmd::rhmd::{Rhmd, RhmdConstruction};
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::evaluate;

/// Seed-derivation tags separating the figures' RNG streams under one
/// master seed (each tag is its figure number).
const TAG_FIG1: u64 = 0x01;
const TAG_SECURITY: u64 = 0x03;
const TAG_RHMD: u64 = 0x05;
const TAG_TRADEOFF: u64 = 0x08;

/// Figure 1 data: bit-wise fault rates of the undervolted multiplier.
#[derive(Clone, Debug)]
pub struct Fig1Data {
    /// Per-bit error rate (flips per multiplication).
    pub bitwise_rates: Vec<f64>,
    /// Overall observed multiplication error rate.
    pub observed_error_rate: f64,
    /// Approximate entropy of the fault-location series (stochasticity).
    pub apen: f64,
    /// The undervolt offset used.
    pub offset: Millivolts,
}

/// Reproduces §II's characterisation: repeatedly multiply random operand
/// sets on the undervolted timing model and record where faults land.
///
/// Each operand set is an independent task whose operands and injector
/// seed are derived from the master seed and the set's index, so the
/// result is bit-identical at any thread count; fault locations are
/// concatenated in set order before the ApEn computation.
pub fn characterize_fig1(
    operand_sets: usize,
    reps_per_set: usize,
    seed: u64,
    exec: &stochastic_hmd::exec::ExecConfig,
) -> Fig1Data {
    let offset = Millivolts::new(-130);
    let timing = MultiplierTimingModel::broadwell_2_2ghz();
    let vdd = NOMINAL_CORE_VOLTAGE.with_offset(offset);
    let per_set = parallel_map_n(exec, operand_sets, |si| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, &[TAG_FIG1, si as u64]));
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        let model = FaultModel::at_voltage_for_operands(&timing, vdd, a, b)
            .expect("timing probabilities are valid");
        let mut injector = FaultInjector::new(model, rng.gen());
        let product = a.wrapping_mul(b);
        let mut locations: Vec<u8> = Vec::new();
        for _ in 0..reps_per_set {
            let corrupted = injector.corrupt_unsigned(product);
            if corrupted != product {
                let diff = corrupted ^ product;
                locations.push(diff.trailing_zeros() as u8);
            }
        }
        (injector.stats(), locations)
    });
    let mut stats = FaultStats {
        multiplies: 0,
        faulty: 0,
        bit_flips: vec![0; 64],
    };
    let mut locations: Vec<u8> = Vec::new();
    for (set_stats, set_locations) in per_set {
        stats.merge(&set_stats);
        locations.extend(set_locations);
    }
    Fig1Data {
        bitwise_rates: stats.bitwise_error_rates(),
        observed_error_rate: stats.observed_error_rate(),
        apen: approximate_entropy(&locations, 1),
        offset,
    }
}

/// One row of the Figures 3 & 4 matrix.
#[derive(Clone, Debug)]
pub struct SecurityRow {
    /// Proxy model family.
    pub proxy: ProxyKind,
    /// Which fold the attacker trained on.
    pub training_set: AttackTrainingSet,
    /// RE effectiveness against the baseline HMD (Fig. 3, "Baseline").
    pub baseline_effectiveness: f64,
    /// RE effectiveness against the Stochastic-HMD (Fig. 3).
    pub stochastic_effectiveness: f64,
    /// Transfer success against the baseline HMD (Fig. 4, "Baseline").
    pub baseline_transfer_success: f64,
    /// Transfer success against the Stochastic-HMD (Fig. 4).
    pub stochastic_transfer_success: f64,
}

/// Runs the full security matrix (Figures 3 and 4): every proxy × training
/// set, against the baseline and the er = 0.1 Stochastic-HMD, averaged over
/// `rotations` cross-validation rotations.
pub fn security_matrix(dataset: &Dataset, args: &Args, rotations: usize) -> Vec<SecurityRow> {
    const TRAINING_SETS: [AttackTrainingSet; 2] = [
        AttackTrainingSet::VictimTraining,
        AttackTrainingSet::AttackerTraining,
    ];
    let exec = args.exec();
    let seeds = args.reps_or(3) as u64;
    // Train each rotation's victim once (it is deterministic per rotation),
    // not once per proxy × training-set cell.
    let victims = parallel_map_n(&exec, rotations, |rotation| victim(dataset, rotation, args));

    let combos: Vec<(usize, ProxyKind, usize, AttackTrainingSet)> = ProxyKind::ALL
        .iter()
        .enumerate()
        .flat_map(|(pi, &proxy)| {
            TRAINING_SETS
                .into_iter()
                .enumerate()
                .map(move |(ti, training_set)| (pi, proxy, ti, training_set))
        })
        .collect();

    // One task per (proxy, training set, rotation): a baseline campaign and
    // `seeds` stochastic campaigns, every seed derived from the cell's
    // coordinates.
    let cells = parallel_map_n(&exec, combos.len() * rotations, |cell| {
        let (pi, proxy, ti, training_set) = combos[cell / rotations];
        let rotation = cell % rotations;
        let coords = [TAG_SECURITY, pi as u64, ti as u64, rotation as u64];
        let base = &victims[rotation];
        let campaign = AttackCampaign::new(
            ReverseConfig::new(proxy).with_seed(derive_seed(args.seed, &coords)),
        )
        .with_training_set(training_set);

        let mut acc = [0.0f64; 4];
        let mut baseline = base.clone();
        let report = campaign
            .run(&mut baseline, dataset, rotation)
            .expect("attack on generated data succeeds");
        acc[0] = report.re_effectiveness;
        acc[2] = report.transfer.assumed_success_rate();

        // The stochastic victim's outcome depends on its fault draws;
        // average several injector seeds per rotation.
        for s in 0..seeds {
            let mut protected = StochasticHmd::from_baseline(
                base,
                OPERATING_ERROR_RATE,
                derive_seed(
                    args.seed,
                    &[TAG_SECURITY, pi as u64, ti as u64, rotation as u64, s],
                ),
            )
            .expect("valid error rate");
            let report = campaign
                .run(&mut protected, dataset, rotation)
                .expect("attack on generated data succeeds");
            acc[1] += report.re_effectiveness / seeds as f64;
            acc[3] += report.transfer.assumed_success_rate() / seeds as f64;
        }
        acc
    });

    let n = rotations as f64;
    combos
        .iter()
        .enumerate()
        .map(|(ci, &(_, proxy, _, training_set))| {
            let mut acc = [0.0f64; 4];
            for rotation_acc in &cells[ci * rotations..(ci + 1) * rotations] {
                for (total, part) in acc.iter_mut().zip(rotation_acc) {
                    *total += part;
                }
            }
            SecurityRow {
                proxy,
                training_set,
                baseline_effectiveness: acc[0] / n,
                stochastic_effectiveness: acc[1] / n,
                baseline_transfer_success: acc[2] / n,
                stochastic_transfer_success: acc[3] / n,
            }
        })
        .collect()
}

/// One bar group of Figures 5 & 6.
#[derive(Clone, Debug)]
pub struct RhmdRow {
    /// Defender name (`RHMD-2F` … or `Stochastic-HMD`).
    pub name: String,
    /// Fraction of evasive malware detected (Fig. 5).
    pub evasive_detected: f64,
    /// Baseline detection accuracy (Fig. 6).
    pub accuracy: f64,
}

/// Runs the RHMD comparison (Figures 5 and 6): each RHMD construction and
/// the er = 0.1 Stochastic-HMD, attacked with an MLP proxy that uses all
/// the construction's feature vectors.
pub fn rhmd_comparison(dataset: &Dataset, args: &Args) -> Vec<RhmdRow> {
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let cfg = train_config(args);
    let exec = args.exec();
    let seeds = args.reps_or(3) as u64;
    // Defender index `di`: the four RHMD constructions, then the
    // Stochastic-HMD. One task per (defender, seed) cell.
    let defenders = RhmdConstruction::ALL.len() + 1;
    let base = victim(dataset, rotation, args);
    let cells = parallel_map_n(&exec, defenders * seeds as usize, |cell| {
        let di = cell / seeds as usize;
        let s = (cell % seeds as usize) as u64;
        let cell_seed = derive_seed(args.seed, &[TAG_RHMD, di as u64, s]);
        if let Some(&construction) = RhmdConstruction::ALL.get(di) {
            let mut rhmd = Rhmd::train(
                dataset,
                split.victim_training(),
                construction,
                &cfg,
                cell_seed,
            )
            .expect("training succeeds");
            let accuracy = evaluate(&mut rhmd, dataset, split.testing()).accuracy();
            // "We reverse-engineer each RHMD construction using all the
            // feature vectors used in the construction."
            let campaign = AttackCampaign::new(
                ReverseConfig::new(ProxyKind::Mlp)
                    .with_specs(construction.specs())
                    .with_seed(args.seed),
            );
            let report = campaign
                .run(&mut rhmd, dataset, rotation)
                .expect("attack succeeds");
            (report.transfer.assumed_detection_rate(), accuracy)
        } else {
            let mut protected =
                StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, cell_seed)
                    .expect("valid error rate");
            let accuracy = evaluate(&mut protected, dataset, split.testing()).accuracy();
            let campaign =
                AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed));
            let report = campaign
                .run(&mut protected, dataset, rotation)
                .expect("attack succeeds");
            (report.transfer.assumed_detection_rate(), accuracy)
        }
    });

    (0..defenders)
        .map(|di| {
            let per_seed = &cells[di * seeds as usize..(di + 1) * seeds as usize];
            let detected: f64 = per_seed.iter().map(|c| c.0).sum();
            let accuracy: f64 = per_seed.iter().map(|c| c.1).sum();
            RhmdRow {
                name: RhmdConstruction::ALL
                    .get(di)
                    .map_or_else(|| "Stochastic-HMD".to_string(), ToString::to_string),
                evasive_detected: detected / seeds as f64,
                accuracy: accuracy / seeds as f64,
            }
        })
        .collect()
}

/// One point of the Figure 8 trade-off curves.
#[derive(Clone, Debug)]
pub struct TradeoffRow {
    /// Multiplication error rate.
    pub error_rate: f64,
    /// Baseline detection accuracy at this rate.
    pub accuracy: f64,
    /// Transferability robustness: fraction of evasive malware detected.
    pub transfer_robustness: f64,
    /// Reverse-engineering robustness: `1 − RE effectiveness`.
    pub re_robustness: f64,
}

/// Runs the Figure 8 trade-off sweep with an MLP attacker on the
/// attacker-training fold.
pub fn tradeoff_sweep(dataset: &Dataset, args: &Args, er_grid: &[f64]) -> Vec<TradeoffRow> {
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let base = victim(dataset, rotation, args);
    parallel_map_n(&args.exec(), er_grid.len(), |i| {
        let er = er_grid[i];
        let mut protected = StochasticHmd::from_baseline(
            &base,
            er,
            derive_seed(args.seed, &[TAG_TRADEOFF, i as u64]),
        )
        .expect("valid error rate");
        let accuracy = evaluate(&mut protected, dataset, split.testing()).accuracy();
        let campaign = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed));
        let report = campaign
            .run(&mut protected, dataset, rotation)
            .expect("attack succeeds");
        TradeoffRow {
            error_rate: er,
            accuracy,
            transfer_robustness: report.transfer.assumed_detection_rate(),
            re_robustness: 1.0 - report.re_effectiveness,
        }
    })
}

/// The er values Figure 2(b) plots confidence distributions for.
pub const FIG2B_ERROR_RATES: [f64; 3] = [0.1, 0.5, 1.0];

/// The frequency feature spec used throughout the figures.
pub fn primary_spec() -> FeatureSpec {
    FeatureSpec::frequency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;

    fn fast_args() -> Args {
        Args::parse_from(["--fast".to_string(), "--seed".to_string(), "3".to_string()])
    }

    #[test]
    fn fig1_characterisation_has_paper_properties() {
        // −130 mV faults are rare (~0.1% of multiplies), so the ApEn series
        // needs many operand sets to fill up.
        let data = characterize_fig1(30_000, 10, 9, &stochastic_hmd::exec::ExecConfig::auto());
        assert_eq!(data.bitwise_rates.len(), 64);
        assert_eq!(data.bitwise_rates[63], 0.0, "sign bit never flips");
        for bit in 0..8 {
            assert_eq!(data.bitwise_rates[bit], 0.0, "LSB {bit} never flips");
        }
        assert!(data.observed_error_rate > 0.0, "−130 mV must fault");
        assert!(data.apen > 0.5, "fault locations must look stochastic");
    }

    #[test]
    fn security_matrix_shape_matches_figures_3_and_4() {
        let args = fast_args();
        let dataset = setup::dataset(&args);
        let rows = security_matrix(&dataset, &args, 1);
        assert_eq!(rows.len(), 6, "3 proxies × 2 training sets");
        for row in &rows {
            for v in [
                row.baseline_effectiveness,
                row.stochastic_effectiveness,
                row.baseline_transfer_success,
                row.stochastic_transfer_success,
            ] {
                assert!((0.0..=1.0).contains(&v), "{row:?}");
            }
            assert!(row.baseline_effectiveness > 0.7, "{row:?}");
        }
        // Averaged over proxies, stochasticity must not make RE easier
        // (per-cell values are too noisy at this test scale to compare).
        let base_mean: f64 =
            rows.iter().map(|r| r.baseline_effectiveness).sum::<f64>() / rows.len() as f64;
        let sto_mean: f64 =
            rows.iter().map(|r| r.stochastic_effectiveness).sum::<f64>() / rows.len() as f64;
        assert!(
            base_mean >= sto_mean - 0.03,
            "stochasticity must not make RE easier on average: {base_mean} vs {sto_mean}"
        );
    }

    #[test]
    fn rhmd_comparison_includes_all_defenders() {
        let args = fast_args();
        let dataset = setup::dataset(&args);
        let rows = rhmd_comparison(&dataset, &args);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].name, "Stochastic-HMD");
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.evasive_detected), "{row:?}");
            assert!(row.accuracy > 0.7, "{row:?}");
        }
    }

    #[test]
    fn tradeoff_sweep_covers_the_grid() {
        let args = fast_args();
        let dataset = setup::dataset(&args);
        let rows = tradeoff_sweep(&dataset, &args, &[0.0, 0.1]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].accuracy >= rows[1].accuracy - 0.08);
        // At er = 0 there is no stochasticity, so RE is easy.
        assert!(rows[0].re_robustness < 0.2, "{:?}", rows[0]);
    }
}

//! Daemon benchmark: the wire → admission → verdict path end to end —
//! ingest throughput, reject accounting under overload (predicted vs
//! observed, conservation law), a mid-stream rolling upgrade (zero
//! committed queries lost, verdict checksum bit-identical to a
//! never-upgraded reference, serial and worker-pool successors), and an
//! exhaustive hostile-bytes corpus over every wire frame kind.
//!
//! Writes `BENCH_8.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--check` exits non-zero if any invariant fails —
//! that mode is what CI runs (with `--fast`) as the daemon smoke test;
//! CI also diffs serial vs 8-thread JSON with `threads`/`timing`
//! stripped, so everything else in the document must be bit-identical.

use hmd_bench::cli::Scale;
use hmd_bench::{daemon, setup, table, Args};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_8.json");
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("flags: --seed N  --threads N  --paper  --fast  --check  --out PATH");
            std::process::exit(2);
        }
    };

    let (scale_name, batch_size) = match args.scale {
        Scale::Fast => ("fast", 8),
        Scale::Medium => ("medium", 32),
        Scale::Paper => ("paper", 128),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let exec = args.exec();

    let report = daemon::measure(&baseline, &dataset, args.seed, batch_size, &exec);

    table::title(&format!(
        "Monitoring daemon, {} shards, rolling upgrade mid-stream ({scale_name})",
        daemon::DAEMON_SHARDS
    ));
    table::header(&["measure", "value", "verdict"]);
    table::row(&[
        "ingest throughput".into(),
        format!("{:.0} queries/s", report.throughput.qps),
        format!("{} queries", report.throughput.queries),
    ]);
    table::row(&[
        "overload accounting".into(),
        format!(
            "{} offered / {} admitted",
            report.overload.stats.offered_frames, report.overload.stats.admitted_frames
        ),
        if report.overload.conserved && report.overload.predicted {
            "exact".into()
        } else {
            "DIVERGED".into()
        },
    ]);
    for (name, p) in [
        ("upgrade (serial)", &report.upgrade_serial),
        ("upgrade (pool)", &report.upgrade_threaded),
    ] {
        table::row(&[
            name.into(),
            format!(
                "drain {} batches, gap {} rejects, handoff {} B",
                p.drained_batches, p.drain_rejects, p.handoff_bytes
            ),
            if p.identical {
                "identical".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }
    table::row(&[
        "hostile corpus".into(),
        format!(
            "{} inputs over {} kinds",
            report.hostile.inputs, report.hostile.kinds
        ),
        format!("{} survivors", report.hostile.survivors),
    ]);
    println!("(the upgrade drains, checkpoints, hands off, and the successor proves checksum identity before serving)");

    let doc = daemon::render_json(&report, args.seed, scale_name, exec.thread_count());
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        if !report.overload.conserved {
            eprintln!("FAIL: admission accounting broke conservation");
            failed = true;
        }
        if !report.overload.predicted {
            eprintln!("FAIL: admission counters diverged from their predicted values");
            failed = true;
        }
        if !report.upgrade_serial.identical {
            eprintln!("FAIL: serial upgrade lost queries or diverged from the reference");
            failed = true;
        }
        if !report.upgrade_threaded.identical {
            eprintln!("FAIL: worker-pool upgrade lost queries or diverged from the reference");
            failed = true;
        }
        if report.upgrade_serial.checksum != report.upgrade_threaded.checksum {
            eprintln!("FAIL: serial and pooled upgrades disagree");
            failed = true;
        }
        if report.hostile.survivors != 0 {
            eprintln!(
                "FAIL: {} hostile inputs decoded as valid frames",
                report.hostile.survivors
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: accounting exact, upgrade lossless and bit-identical at every \
             thread count, hostile corpus fully rejected"
        );
    }
}

//! Figure 8: the trade-off between detection accuracy, transferability
//! robustness, and reverse-engineering robustness as the error rate sweeps
//! 0 → 1.

use hmd_bench::experiments::tradeoff_sweep;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();
    let rows = tradeoff_sweep(&dataset, &args, &grid);

    table::title("Figure 8: Stochastic-HMD trade-off");
    table::header(&["er", "accuracy", "transfer rob.", "RE rob."]);
    for r in &rows {
        table::row(&[
            format!("{:.1}", r.error_rate),
            table::pct(r.accuracy),
            table::pct(r.transfer_robustness),
            table::pct(r.re_robustness),
        ]);
    }
    println!();
    println!("paper: region 1 (er <= 0.2) is the practical trade-off zone;");
    println!("       er > 0.2 (region 2) costs too much accuracy to deploy");
}

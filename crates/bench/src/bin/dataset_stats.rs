//! Dataset report: per-family instruction mixes, class separability, and
//! fold balance of the synthetic corpus (the §IV substitute).

use hmd_bench::{setup, table, Args};
use shmd_workload::features::FeatureSpec;
use shmd_workload::isa::InsnCategory;

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);

    table::title(&format!("Dataset: {} programs", dataset.len()));
    // Per-family mean frequencies for a few informative categories.
    let interesting = [
        InsnCategory::BinaryArithmetic,
        InsnCategory::DataTransfer,
        InsnCategory::ControlTransfer,
        InsnCategory::System,
        InsnCategory::Simd,
    ];
    let mut header = vec!["family".to_string(), "count".to_string()];
    header.extend(interesting.iter().map(|c| c.to_string()));
    table::header(&header.iter().map(String::as_str).collect::<Vec<_>>());

    let mut by_family: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for (i, p) in dataset.programs().iter().enumerate() {
        by_family.entry(p.class().to_string()).or_default().push(i);
    }
    let spec = FeatureSpec::frequency();
    for (family, indices) in &by_family {
        let mut mean = [0.0f64; 16];
        for &i in indices {
            for (m, v) in mean.iter_mut().zip(spec.extract(dataset.trace(i))) {
                *m += f64::from(v);
            }
        }
        let mut row = vec![family.clone(), indices.len().to_string()];
        for c in interesting {
            row.push(format!("{:.3}", mean[c.index()] / indices.len() as f64));
        }
        table::row(&row);
    }

    // Fold balance.
    let split = dataset.three_fold_split(0);
    println!();
    println!(
        "folds: victim {} / attacker {} / test {}",
        split.victim_training().len(),
        split.attacker_training().len(),
        split.testing().len()
    );
}

//! Extension: continuous monitoring — time-to-detection, and what the
//! moving-target defense buys when malware executes over many windows.
//!
//! A deterministic HMD that misses an evasive sample misses it on every
//! window; a Stochastic-HMD re-rolls its decision boundary each window, so
//! an evasive sample must win *every* draw to complete. This is the
//! deployment-mode view of the paper's conclusion.

use hmd_bench::setup::OPERATING_ERROR_RATE;
use hmd_bench::{setup, table, Args};
use shmd_attack::evasion::{generate_evasive_malware, EvasionConfig};
use shmd_attack::reverse::{reverse_engineer, ReverseConfig};
use shmd_attack::ProxyKind;
use shmd_workload::trace::Trace;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::monitor::monitor_all;
use stochastic_hmd::stochastic::StochasticHmd;

const WARMUP_WINDOWS: usize = 4;

fn report(label: &str, detector: &mut dyn Detector, traces: &[(usize, &Trace)]) {
    let r = monitor_all(detector, traces, WARMUP_WINDOWS);
    table::row(&[
        label.to_string(),
        table::pct(r.detection_rate()),
        r.mean_time_to_detection()
            .map_or_else(|| "-".to_string(), |t| format!("{t:.1} win")),
    ]);
}

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let split = dataset.three_fold_split(0);
    let base = setup::victim(&dataset, 0, &args);

    // Natural malware from the test fold.
    let natural: Vec<(usize, &Trace)> = dataset
        .malware_indices(split.testing())
        .map(|i| (i, dataset.trace(i)))
        .collect();

    // Evasive malware crafted against an MLP proxy of the baseline.
    let mut victim_for_re = base.clone();
    let proxy = reverse_engineer(
        &mut victim_for_re,
        &dataset,
        split.attacker_training(),
        &ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed),
    )
    .expect("RE succeeds");
    let targets: Vec<usize> = dataset
        .malware_indices(split.testing())
        .filter(|&i| proxy.predict_trace(dataset.trace(i)))
        .collect();
    let evasive = generate_evasive_malware(&proxy, &dataset, &targets, &EvasionConfig::default());
    let evasive_traces: Vec<(usize, &Trace)> =
        evasive.iter().map(|s| (s.program_idx, &s.trace)).collect();

    table::title(&format!(
        "Continuous monitoring ({} natural, {} evasive malware; warm-up {} windows)",
        natural.len(),
        evasive_traces.len(),
        WARMUP_WINDOWS
    ));
    table::header(&["defender / workload", "detected", "mean TTD"]);

    let mut baseline = base.clone();
    report("baseline / natural", &mut baseline, &natural);
    let mut protected =
        StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed).expect("valid");
    report("stochastic / natural", &mut protected, &natural);

    let mut baseline = base.clone();
    report("baseline / evasive", &mut baseline, &evasive_traces);
    let mut protected =
        StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed ^ 1).expect("valid");
    report("stochastic / evasive", &mut protected, &evasive_traces);

    println!();
    println!("evasive samples that beat the deterministic baseline beat it forever;");
    println!("the stochastic detector keeps re-rolling its boundary every window");
}

//! Adaptive-attacker arena benchmark: denoising, transfer, and drift
//! attacks against the live monitoring service, with the
//! uncertainty-aware ensemble re-query measured as the counter.
//!
//! Writes `BENCH_9.json` (override with `--out PATH`) and prints the same
//! numbers as tables. `--check` exits non-zero when any arena gate fails:
//!
//! 1. the denoising attacker's required queries-per-sample is not
//!    monotone nondecreasing in the delivered error rate;
//! 2. mean transfer success against the undervolted live service
//!    (error rate ≥ 0.1) exceeds success against the fault-free victim;
//! 3. the ensemble re-query recovers less than half the accuracy the
//!    band-edge error rate cost (unless nothing meaningful was lost);
//! 4. any scenario is not thread-invariant (serial ≠ threaded replay),
//!    the mid-arena checkpoint/restore diverges, or pure workload drift
//!    fires the delivered-rate watchdog.
//!
//! CI runs `--fast --threads 8 --check` as the arena smoke test and
//! diffs the timing-stripped JSON of a serial rerun against it.

use hmd_bench::arena::{self, ArenaPlan};
use hmd_bench::cli::Scale;
use hmd_bench::{setup, table, Args};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_9.json");
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("flags: --seed N  --threads N  --paper  --fast  --check  --out PATH");
            std::process::exit(2);
        }
    };

    let scale_name = match args.scale {
        Scale::Fast => "fast",
        Scale::Medium => "medium",
        Scale::Paper => "paper",
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let exec = args.exec();
    let plan = ArenaPlan::for_scale(args.scale);

    let matrix = arena::run_arena(&baseline, &dataset, &plan, args.seed, &exec);

    table::title(&format!(
        "Denoising cost curve, target agreement {:.2} ({scale_name})",
        matrix.denoise_target
    ));
    table::header(&["error rate", "required k", "search cost", "oracle queries"]);
    for cell in &matrix.denoise {
        table::row(&[
            format!("{:.2}", cell.error_rate),
            match cell.curve.required {
                Some(k) => format!("{k}"),
                None => "saturated".into(),
            },
            format!("{}", cell.curve.total_query_cost()),
            format!("{}", cell.oracle_queries),
        ]);
    }

    table::title("Transfer matrix (live service + offline RHMD rows)");
    table::header(&[
        "victim",
        "er",
        "attacker",
        "attempted",
        "evasive",
        "transferred",
        "success",
        "queries",
    ]);
    for c in &matrix.transfer {
        table::row(&[
            c.victim.to_string(),
            format!("{:.2}", c.error_rate),
            c.attacker.to_string(),
            format!("{}", c.attempted),
            format!("{}", c.evaded_proxy),
            format!("{}", c.evaded_victim),
            format!("{:.2}", c.success),
            format!("{}", c.query_cost),
        ]);
    }

    table::title("Defender accuracy (eval stream, vs ground truth)");
    table::header(&["victim", "er", "accuracy", "delta vs er=0"]);
    for c in &matrix.accuracy {
        table::row(&[
            c.victim.to_string(),
            format!("{:.2}", c.error_rate),
            format!("{:.3}", c.accuracy),
            format!("{:+.3}", c.delta),
        ]);
    }

    let rq = &matrix.requery;
    table::title(&format!(
        "Re-query counter at er {:.2} (band {:.2}, {} replicas + anomaly vote)",
        rq.error_rate, rq.band, rq.replicas
    ));
    table::header(&[
        "clean",
        "noisy",
        "requery",
        "recovered",
        "extra draws/query",
    ]);
    table::row(&[
        format!("{:.3}", rq.acc_clean),
        format!("{:.3}", rq.acc_noisy),
        format!("{:.3}", rq.acc_requery),
        format!("{:.0}%", rq.recovered * 100.0),
        format!("{:.2}", rq.requery_rate()),
    ]);
    println!(
        "({} band hits, {} ensemble draws over {} queries; serial == {}-thread: {}; \
         mid-arena restore identical: {})",
        rq.band_hits,
        rq.requeries,
        rq.served,
        exec.thread_count(),
        if rq.thread_invariant { "yes" } else { "NO" },
        if rq.restore_identical { "yes" } else { "NO" },
    );

    let d = &matrix.drift;
    table::title(&format!(
        "Workload drift: {} Dirichlet segments, fixed er {:.2}",
        d.segments,
        setup::OPERATING_ERROR_RATE
    ));
    table::header(&[
        "queries",
        "drift events",
        "crashes",
        "retries",
        "deterministic",
    ]);
    table::row(&[
        format!("{}", d.queries),
        format!("{}", d.drift_events),
        format!("{}", d.crashes),
        format!("{}", d.retries),
        if d.thread_invariant { "yes" } else { "NO" }.into(),
    ]);

    let doc = arena::render_json(&matrix, args.seed, scale_name, exec.thread_count());
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        if !matrix.denoise_monotone() {
            eprintln!(
                "FAIL: denoising cost curve not monotone in error rate: {:?}",
                matrix
                    .denoise
                    .iter()
                    .map(|c| (c.error_rate, c.curve.required))
                    .collect::<Vec<_>>()
            );
            failed = true;
        }
        let base_success = matrix.service_success_at(0.0);
        let undervolted = matrix.pooled_service_success(0.1);
        if undervolted > base_success + 1e-9 {
            eprintln!(
                "FAIL: pooled transfer success {undervolted:.3} against undervolted \
                 victims (er >= 0.1) exceeds the fault-free baseline {base_success:.3}"
            );
            failed = true;
        }
        if !rq.recovers_half() {
            eprintln!(
                "FAIL: re-query recovered only {:.0}% of the {:.3} accuracy lost \
                 (clean {:.3}, noisy {:.3}, requery {:.3})",
                rq.recovered * 100.0,
                rq.lost(),
                rq.acc_clean,
                rq.acc_noisy,
                rq.acc_requery
            );
            failed = true;
        }
        if !rq.thread_invariant {
            eprintln!(
                "FAIL: re-query replay diverged between serial and {} threads",
                exec.thread_count()
            );
            failed = true;
        }
        if !rq.restore_identical {
            eprintln!("FAIL: mid-arena checkpoint/restore diverged from the original run");
            failed = true;
        }
        if d.drift_events != 0 {
            eprintln!(
                "FAIL: pure workload drift fired the delivered-rate watchdog {} times",
                d.drift_events
            );
            failed = true;
        }
        if !d.thread_invariant {
            eprintln!("FAIL: drift replay diverged between serial and threaded");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: denoising cost monotone, undervolting does not help the \
             transfer attacker, re-query recovers the band-edge loss, drift watchdog \
             quiet, every replay thread-invariant and restore-identical"
        );
    }
}

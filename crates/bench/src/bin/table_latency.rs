//! §VIII inference-time comparison: Stochastic-HMD vs RHMD-2F vs RHMD-2F2P
//! (paper: 7 µs / 7.7 µs / 7.8 µs), plus live measurements on this crate's
//! quantised datapath.

use hmd_bench::{setup, table, Args};
use shmd_ann::network::InferenceScratch;
use shmd_power::latency::LatencyModel;
use shmd_volt::fault::{ExactDatapath, FaultInjector, FaultModel};
use shmd_volt::voltage::{Millivolts, NOMINAL_CORE_VOLTAGE};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let model = LatencyModel::i7_5557u();
    let macs = LatencyModel::paper_detector_macs();

    table::title("Inference time (paper-calibrated model, 71 KB detector)");
    table::header(&["detector", "time"]);
    table::row(&[
        "Stochastic-HMD".into(),
        format!("{:.1} us", model.hmd_us(macs)),
    ]);
    table::row(&[
        "RHMD-2F".into(),
        format!("{:.1} us", model.rhmd_us(macs, 2)),
    ]);
    table::row(&[
        "RHMD-2F2P".into(),
        format!("{:.1} us", model.rhmd_us(macs, 4)),
    ]);
    println!("paper: 7 / 7.7 / 7.8 us; undervolting itself adds zero latency:");
    let deep = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-140));
    println!(
        "  t(nominal) = {:.1} us, t(-140 mV) = {:.1} us",
        model.stochastic_hmd_us(macs, NOMINAL_CORE_VOLTAGE),
        model.stochastic_hmd_us(macs, deep)
    );

    // Live measurement of this reproduction's (much smaller) detector.
    let dataset = setup::dataset(&args);
    let victim = setup::victim(&dataset, 0, &args);
    let q = victim.quantized();
    let features = victim.spec().extract(dataset.trace(0));
    let n = 20_000;

    let mut scratch = InferenceScratch::new();
    let start = Instant::now();
    let mut exact = ExactDatapath;
    for _ in 0..n {
        std::hint::black_box(q.infer_into(&features, &mut exact, &mut scratch));
    }
    let exact_ns = start.elapsed().as_nanos() as f64 / f64::from(n);

    let mut injector =
        FaultInjector::new(FaultModel::from_error_rate(0.1).expect("valid"), args.seed);
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(q.infer_into(&features, &mut injector, &mut scratch));
    }
    let faulty_ns = start.elapsed().as_nanos() as f64 / f64::from(n);

    println!();
    table::title(&format!(
        "Live measurement ({} MACs/inference, {n} runs, scratch hot path)",
        q.mac_count()
    ));
    table::header(&["datapath", "time/inference"]);
    table::row(&["exact".into(), format!("{exact_ns:.0} ns")]);
    table::row(&["er=0.1 faulty".into(), format!("{faulty_ns:.0} ns")]);
    println!("(the fault-injection emulation overhead exists only in simulation;");
    println!(" on real hardware the faults are free)");
}

//! Figure 5: percentage of evasive malware detected — RHMD constructions
//! vs the Stochastic-HMD (er = 0.1).

use hmd_bench::experiments::rhmd_comparison;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let rows = rhmd_comparison(&dataset, &args);

    table::title("Figure 5: evasive malware detected");
    table::header(&["defender", "detected"]);
    for r in &rows {
        table::row(&[r.name.clone(), table::pct(r.evasive_detected)]);
    }
    let best_rhmd = rows[..4]
        .iter()
        .map(|r| r.evasive_detected)
        .fold(0.0f64, f64::max);
    let stochastic = rows[4].evasive_detected;
    println!();
    println!(
        "Stochastic-HMD detects {:.1}pt more than the best RHMD (paper: >53pt over RHMD-3F2P; Stochastic >94%)",
        (stochastic - best_rhmd) * 100.0
    );
}

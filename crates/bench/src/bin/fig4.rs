//! Figure 4: transferability attack success rate — baseline HMD vs
//! Stochastic-HMD (er = 0.1), MLP/LR/DT proxies × victim/attacker training
//! sets.

use hmd_bench::experiments::security_matrix;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let rows = security_matrix(&dataset, &args, 3);

    table::title("Figure 4: transferability attack success rate (er = 0.1, 3-fold mean)");
    table::header(&["proxy", "training set", "baseline", "stochastic"]);
    for r in &rows {
        table::row(&[
            r.proxy.to_string(),
            r.training_set.to_string(),
            table::pct(r.baseline_transfer_success),
            table::pct(r.stochastic_transfer_success),
        ]);
    }
    println!();
    println!("paper (MLP): 84% -> 5.85% (victim set), 81.2% -> 4.17% (attacker set)");
    println!("paper (LR):  72% -> 9.7%,  70.5% -> 4.32%; (DT): 33% -> 6.15%, 31.25% -> 5.81%");
}

//! Figure 2(a): accuracy, FPR, and FNR (mean ± std over repetitions ×
//! 3 folds) as the error rate sweeps 0 → 1.

use hmd_bench::{setup, table, Args};
use stochastic_hmd::explore::accuracy_sweep_with;

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let reps = args.reps_or(50); // the paper repeats each experiment 50×
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();

    let points = accuracy_sweep_with(
        &dataset,
        &grid,
        reps,
        &setup::train_config(&args),
        args.seed,
        &args.exec(),
    )
    .expect("sweep over a valid grid succeeds");

    table::title(&format!(
        "Figure 2(a): detection metrics vs error rate ({reps} reps x 3 folds, {} programs)",
        dataset.len()
    ));
    table::header(&["er", "accuracy", "FPR", "FNR"]);
    for p in &points {
        table::row(&[
            format!("{:.1}", p.error_rate),
            table::pct_pm(p.accuracy_mean, p.accuracy_std),
            table::pct_pm(p.fpr_mean, p.fpr_std),
            table::pct_pm(p.fnr_mean, p.fnr_std),
        ]);
    }
    let at0 = points.first().expect("non-empty grid");
    let at01 = &points[1];
    println!();
    println!(
        "accuracy loss at er = 0.1: {:.2}% (paper: ~2%)",
        (at0.accuracy_mean - at01.accuracy_mean) * 100.0
    );
}

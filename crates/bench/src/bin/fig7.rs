//! Figure 7: power savings of the Stochastic-HMD vs supply voltage
//! (1.18 V → 0.68 V), over the baseline HMD and over RHMD-2F.

use hmd_bench::{table, Args};
use shmd_power::cmos::{CmosPowerModel, PowerScope};
use shmd_volt::voltage::Volts;

fn main() {
    let _args = Args::parse(); // analytic: scale/seed do not matter
    let model = CmosPowerModel::i7_5557u();

    table::title("Figure 7: power savings vs supply voltage (core scope)");
    table::header(&["voltage", "vs baseline", "vs RHMD-2F"]);
    let mut v = 1.18;
    while v > 0.67 {
        let vdd = Volts(v);
        table::row(&[
            format!("{v:.2} V"),
            table::pct(model.savings_over_baseline(vdd, PowerScope::Core)),
            table::pct(model.savings_over_rhmd(vdd, PowerScope::Core)),
        ]);
        v -= 0.1;
    }
    println!();
    println!(
        "at 0.68 V: {} over RHMD (paper: >75% under 40% voltage scaling)",
        table::pct(model.savings_over_rhmd(Volts(0.68), PowerScope::Core))
    );
}

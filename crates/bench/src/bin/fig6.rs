//! Figure 6: baseline detection accuracy — RHMD constructions vs the
//! Stochastic-HMD (er = 0.1).

use hmd_bench::experiments::rhmd_comparison;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let rows = rhmd_comparison(&dataset, &args);

    table::title("Figure 6: baseline accuracy of the defenders");
    table::header(&["defender", "accuracy"]);
    for r in &rows {
        table::row(&[r.name.clone(), table::pct(r.accuracy)]);
    }
    let rhmd_3f2p = rows[3].accuracy;
    let stochastic = rows[4].accuracy;
    println!();
    println!(
        "accuracy gap to RHMD-3F2P: {:.2}pt (paper: <2%)",
        (rhmd_3f2p - stochastic) * 100.0
    );
}

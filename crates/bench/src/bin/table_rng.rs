//! §VIII "Comparison with TRNG": overheads of injecting noise from a
//! TRNG/PRNG after every MAC, vs undervolting (free).

use hmd_bench::{setup, table, Args};
use shmd_ann::mac::NoisyMac;
use shmd_power::rng_cost::{NoiseSource, RngCostModel};
use shmd_volt::fault::ExactDatapath;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let model = RngCostModel::i7_5557u();

    table::title("Noise-source overheads (paper-calibrated model)");
    table::header(&["source", "time overhead", "energy overhead"]);
    for source in [
        NoiseSource::Undervolting,
        NoiseSource::Prng,
        NoiseSource::Trng,
    ] {
        table::row(&[
            source.to_string(),
            format!("{:.1}x", model.time_overhead(source)),
            format!("{:.1}x", model.energy_overhead(source)),
        ]);
    }
    println!("paper: TRNG ~62x time / ~112x energy; PRNG ~4x / ~5.7x");

    // Live: plain datapath vs per-MAC PRNG noise injection.
    let dataset = setup::dataset(&args);
    let victim = setup::victim(&dataset, 0, &args);
    let q = victim.quantized();
    let features = victim.spec().extract(dataset.trace(0));
    let n = 20_000;

    let mut scratch = shmd_ann::network::InferenceScratch::new();
    let start = Instant::now();
    let mut exact = ExactDatapath;
    for _ in 0..n {
        std::hint::black_box(q.infer_into(&features, &mut exact, &mut scratch));
    }
    let exact_ns = start.elapsed().as_nanos() as f64 / f64::from(n);

    let mut noisy = NoisyMac::new(1 << 16, args.seed);
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(q.infer_into(&features, &mut noisy, &mut scratch));
    }
    let noisy_ns = start.elapsed().as_nanos() as f64 / f64::from(n);

    println!();
    table::title("Live measurement: per-MAC PRNG noise injection");
    table::header(&["datapath", "time/inference", "overhead"]);
    table::row(&["plain".into(), format!("{exact_ns:.0} ns"), "1.0x".into()]);
    table::row(&[
        "PRNG/MAC".into(),
        format!("{noisy_ns:.0} ns"),
        format!("{:.1}x", noisy_ns / exact_ns),
    ]);
}

//! Power-Pareto benchmark: the energy/accuracy/robustness frontier of
//! undervolted operating points, plus an energy-aware scheduled pool
//! held under a measured service power budget.
//!
//! Writes `BENCH_7.json` (override with `--out PATH`) and prints the
//! same numbers as two tables. `--check` exits non-zero if the selected
//! operating point's package-level saving leaves the paper's ~15% band
//! (0.10–0.22), if deepening the undervolt ever *loses* core power
//! against RHMD, if the Figure 7 voltage-axis endpoint drops to 75% or
//! below, if the scheduled pool exceeds its measured budget, freezes a
//! shard, diverges across thread counts, or loses budget state through
//! a mid-stream checkpoint/restore — that mode is what CI runs (with
//! `--fast`) as the power smoke test.

use hmd_bench::cli::Scale;
use hmd_bench::{power, setup, table, Args};
use shmd_volt::calibration::{Calibrator, DeviceProfile};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_7.json");
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("flags: --seed N  --threads N  --paper  --fast  --check  --out PATH");
            std::process::exit(2);
        }
    };

    let (scale_name, batch_size) = match args.scale {
        Scale::Fast => ("fast", 64),
        Scale::Medium => ("medium", 256),
        Scale::Paper => ("paper", 1024),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let device = DeviceProfile::reference();
    let curve = Calibrator::new().calibrate(&device);
    let exec = args.exec();

    let points = power::pareto_sweep(&dataset, &baseline, &curve, &device, &args);
    let limit = power::fig7_limit();

    table::title(&format!(
        "Operating-point Pareto sweep, reference device ({scale_name})"
    ));
    table::header(&[
        "target er",
        "temp C",
        "offset mV",
        "vdd",
        "delivered",
        "pkg W",
        "pkg save",
        "vs RHMD",
        "accuracy",
        "evasion det",
    ]);
    let na = || "-".to_string();
    for p in &points {
        table::row(&[
            format!("{:.2}", p.target_er),
            format!("{:.0}", p.temp_c),
            format!("{}", p.offset_mv),
            format!("{:.3}", p.vdd),
            if p.freezes {
                "FREEZE".to_string()
            } else {
                format!("{:.3}", p.delivered_er)
            },
            format!("{:.2}", p.package_power_w),
            format!("{:.1}%", 100.0 * p.package_saving_vs_baseline),
            format!("{:.1}%", 100.0 * p.core_saving_vs_rhmd),
            p.accuracy.map_or_else(na, |v| format!("{v:.3}")),
            p.evasion_detection.map_or_else(na, |v| format!("{v:.3}")),
        ]);
    }
    println!(
        "(Fig. 7 voltage-axis endpoint: {:.1}% core saving over RHMD at {:.2} V — \
         deeper than the calibrated device can schedule)",
        100.0 * limit.core_saving_vs_rhmd,
        limit.vdd
    );

    let service = power::measure_service(&baseline, &dataset, args.seed, batch_size, &exec);
    table::title(&format!(
        "Budgeted pool, {} shards x {} batches x {batch_size} queries",
        service.shards, service.batches
    ));
    table::header(&[
        "unpressured W",
        "floor W",
        "budget W",
        "held at W",
        "energy mJ",
        "max target",
        "crashes",
        "deterministic",
        "restores",
    ]);
    table::row(&[
        format!("{:.3}", service.unpressured_w),
        format!("{:.3}", service.floor_w),
        format!("{:.3}", service.budget_w),
        format!("{:.3}", service.projected_w),
        format!("{:.3}", service.total_energy_uj / 1000.0),
        format!("{:.2}", service.max_target_er),
        format!("{}", service.crashes),
        if service.thread_invariant {
            "yes"
        } else {
            "NO"
        }
        .into(),
        if service.restore_invariant {
            "yes"
        } else {
            "NO"
        }
        .into(),
    ]);
    println!("(budget measured mid-window between the pool's unpressured draw and its band cap)");

    let doc = power::render_json(
        &points,
        limit,
        &service,
        args.seed,
        scale_name,
        exec.thread_count(),
    );
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        let selected: Vec<&power::OperatingPoint> = points
            .iter()
            .filter(|p| p.target_er == hmd_bench::setup::OPERATING_ERROR_RATE)
            .collect();
        for p in &selected {
            if !(0.10..=0.22).contains(&p.package_saving_vs_baseline) {
                eprintln!(
                    "FAIL: selected operating point saves {:.1}% package power, \
                     outside the paper's ~15% band (10–22%)",
                    100.0 * p.package_saving_vs_baseline
                );
                failed = true;
                break;
            }
        }
        if selected.is_empty() {
            eprintln!("FAIL: sweep omitted the selected operating point");
            failed = true;
        }
        // Deepening the undervolt must never cost core power vs RHMD:
        // the curve rows are ordered shallow-to-deep per temperature.
        let rhmd_savings: Vec<f64> = points
            .iter()
            .filter(|p| (p.temp_c - DeviceProfile::reference().temp_c).abs() < f64::EPSILON)
            .map(|p| p.core_saving_vs_rhmd)
            .collect();
        let sorted = rhmd_savings.windows(2).all(|w| w[1] >= w[0] - 1e-12);
        if !sorted {
            eprintln!("FAIL: core saving vs RHMD is not monotone in undervolt depth");
            failed = true;
        }
        if limit.core_saving_vs_rhmd <= 0.75 {
            eprintln!(
                "FAIL: Fig. 7 endpoint saves {:.1}% over RHMD, claim needs >75%",
                100.0 * limit.core_saving_vs_rhmd
            );
            failed = true;
        }
        if service.projected_w > service.budget_w + 1e-9 {
            eprintln!(
                "FAIL: pool projects {:.3} W over its {:.3} W budget",
                service.projected_w, service.budget_w
            );
            failed = true;
        }
        if service.crashes != 0 {
            eprintln!(
                "FAIL: {} shard crashes — the floor clamp let the scheduler freeze a die",
                service.crashes
            );
            failed = true;
        }
        if !service.thread_invariant {
            eprintln!("FAIL: budgeted replay diverged between serial and threaded runs");
            failed = true;
        }
        if !service.restore_invariant {
            eprintln!("FAIL: budget state did not survive checkpoint/restore bit-identically");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: ~15% package saving at the operating point, >75% over RHMD \
             at the Fig. 7 limit, budget held with zero freezes, replay thread-invariant, \
             restore bit-identical"
        );
    }
}

//! Crash/restore durability benchmark: kill -9 a journaled supervised
//! chaos run at adversarial batch indices (half mid-journal-append, via a
//! torn tail), restore from the write-ahead state journal, and verify the
//! resumed run is bit-identical to an uninterrupted reference — restored
//! serially and onto a worker pool.
//!
//! Writes `BENCH_5.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--cadence N` sets the checkpoint cadence in
//! batches (default 8). `--check` exits non-zero if any kill point's
//! restore diverges from the reference or from its journaled commits —
//! that mode is what CI runs (with `--fast`) as the durability smoke test.

use hmd_bench::cli::Scale;
use hmd_bench::{durability, setup, table, Args};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_5.json");
    let mut cadence = durability::DEFAULT_CADENCE;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--cadence" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v >= 1 => cadence = v,
                _ => {
                    eprintln!("error: --cadence needs a positive batch count");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "flags: --seed N  --threads N  --paper  --fast  --cadence N  --check  --out PATH"
            );
            std::process::exit(2);
        }
    };

    let (scale_name, batch_size) = match args.scale {
        Scale::Fast => ("fast", 8),
        Scale::Medium => ("medium", 32),
        Scale::Paper => ("paper", 128),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let exec = args.exec();

    let points =
        durability::measure_sweep(&baseline, &dataset, args.seed, batch_size, cadence, &exec);

    table::title(&format!(
        "Crash/restore durability, {} shards, checkpoint every {cadence} batches ({scale_name})",
        durability::DURABILITY_SHARDS
    ));
    table::header(&[
        "kill@",
        "torn",
        "resume@",
        "commits",
        "replayed",
        "commits-match",
        "serial",
        "threads",
    ]);
    for p in &points {
        table::row(&[
            format!("{}", p.kill_batch),
            if p.torn_tail { "yes" } else { "no" }.into(),
            format!("{}", p.resume_batch),
            format!("{}", p.commits_recovered),
            format!("{}", p.replayed_batches),
            if p.commits_match { "yes" } else { "NO" }.into(),
            if p.serial_identical {
                "identical"
            } else {
                "DIVERGED"
            }
            .into(),
            if p.threaded_identical {
                "identical"
            } else {
                "DIVERGED"
            }
            .into(),
        ]);
    }
    println!("(same seed, same chaos schedule; the only difference is dying and coming back)");

    let doc = durability::render_json(&points, args.seed, scale_name, exec.thread_count());
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        for p in &points {
            if !p.commits_match {
                eprintln!(
                    "FAIL: kill at {}: replay disagreed with journaled commits",
                    p.kill_batch
                );
                failed = true;
            }
            if !p.serial_identical {
                eprintln!(
                    "FAIL: kill at {}: serial restore diverged from the reference",
                    p.kill_batch
                );
                failed = true;
            }
            if !p.threaded_identical {
                eprintln!(
                    "FAIL: kill at {}: threaded restore diverged from the reference",
                    p.kill_batch
                );
                failed = true;
            }
        }
        if !points.iter().any(|p| p.torn_tail && p.torn_bytes > 0) {
            eprintln!("FAIL: no kill point exercised a torn journal tail");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: every kill point restored bit-identically, serial and threaded, \
             torn tails discarded"
        );
    }
}

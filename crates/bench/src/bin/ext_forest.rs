//! Extension: the random-forest proxy (beyond the paper's MLP/LR/DT set) —
//! the adaptive adversary's ensemble counter to a stochastic oracle.

use hmd_bench::setup::OPERATING_ERROR_RATE;
use hmd_bench::{setup, table, Args};
use shmd_attack::campaign::{AttackCampaign, AttackTrainingSet};
use shmd_attack::reverse::ReverseConfig;
use shmd_attack::ProxyKind;
use stochastic_hmd::stochastic::StochasticHmd;

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let base = setup::victim(&dataset, 0, &args);
    let seeds = args.reps_or(3) as u64;

    table::title("Extension: all proxies incl. random forest (er = 0.1, attacker set)");
    table::header(&["proxy", "victim", "RE eff.", "transfer succ."]);
    for proxy in ProxyKind::EXTENDED {
        let campaign = AttackCampaign::new(ReverseConfig::new(proxy).with_seed(args.seed))
            .with_training_set(AttackTrainingSet::AttackerTraining);
        let mut baseline = base.clone();
        let report = campaign.run(&mut baseline, &dataset, 0).expect("attack");
        table::row(&[
            report.proxy.clone(),
            "baseline".into(),
            table::pct(report.re_effectiveness),
            table::pct(report.transfer.assumed_success_rate()),
        ]);
        let (mut eff, mut succ) = (0.0, 0.0);
        for s in 0..seeds {
            let mut protected =
                StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed ^ s)
                    .expect("valid");
            let report = campaign.run(&mut protected, &dataset, 0).expect("attack");
            eff += report.re_effectiveness / seeds as f64;
            succ += report.transfer.assumed_success_rate() / seeds as f64;
        }
        table::row(&[
            proxy.to_string(),
            "stochastic".into(),
            table::pct(eff),
            table::pct(succ),
        ]);
    }
    println!();
    println!("the RF proxy is the ensemble counter an adaptive adversary would try;");
    println!("compare its stochastic-victim rows against the paper's DT attacker");
}

//! Figure 3: reverse-engineering effectiveness — baseline HMD vs
//! Stochastic-HMD (er = 0.1), MLP/LR/DT proxies × victim/attacker training
//! sets.

use hmd_bench::experiments::security_matrix;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let rows = security_matrix(&dataset, &args, 3);

    table::title("Figure 3: reverse-engineering effectiveness (er = 0.1, 3-fold mean)");
    table::header(&["proxy", "training set", "baseline", "stochastic", "drop"]);
    for r in &rows {
        table::row(&[
            r.proxy.to_string(),
            r.training_set.to_string(),
            table::pct(r.baseline_effectiveness),
            table::pct(r.stochastic_effectiveness),
            format!(
                "{:.1}pt",
                (r.baseline_effectiveness - r.stochastic_effectiveness) * 100.0
            ),
        ]);
    }
    println!();
    println!("paper (MLP): 99% -> 86.0% (victim set), 99% -> 75.5% (attacker set)");
}

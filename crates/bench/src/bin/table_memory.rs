//! §VIII memory-space comparison: Equation (1) storage savings and L1
//! pressure of RHMD constructions vs the single-model Stochastic-HMD.

use hmd_bench::{table, Args};
use shmd_power::memory::{storage_savings, MemoryModel, L1_DCACHE_BYTES};
use stochastic_hmd::rhmd::RhmdConstruction;

fn main() {
    let _args = Args::parse();
    let memory = MemoryModel::paper();

    table::title("Memory space: RHMD constructions vs Stochastic-HMD (Eq. 1)");
    table::header(&["defender", "models", "storage", "savings", "L1 footprint"]);
    for c in RhmdConstruction::ALL {
        let n = c.detector_count();
        table::row(&[
            c.to_string(),
            n.to_string(),
            format!("{} KB", memory.rhmd_bytes(n) / 1024),
            table::pct(storage_savings(n)),
            format!("{:.1}x", memory.l1_footprint(n)),
        ]);
    }
    table::row(&[
        "Stochastic-HMD".into(),
        "1".into(),
        format!("{} KB", memory.stochastic_bytes() / 1024),
        "-".into(),
        format!("{:.1}x", memory.l1_footprint(1)),
    ]);
    println!();
    println!(
        "paper: each HMD takes 71 KB; L1 is {} KB; savings over RHMD-2F = 50%",
        L1_DCACHE_BYTES / 1024
    );
}

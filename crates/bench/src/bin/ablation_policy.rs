//! Ablation: deployment detection policies over the er = 0.1
//! Stochastic-HMD — evasive-malware detection vs false-positive cost.

use hmd_bench::ablation::policy_ablation;
use hmd_bench::{setup, table, Args};
use stochastic_hmd::deploy::DetectionPolicy;

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let policies = [
        DetectionPolicy::Single,
        DetectionPolicy::AnyOf(2),
        DetectionPolicy::AnyOf(4),
        DetectionPolicy::AnyOf(8),
        DetectionPolicy::MajorityOf(3),
        DetectionPolicy::MajorityOf(5),
    ];
    let rows = policy_ablation(&dataset, &args, &policies);

    table::title("Ablation: detection policy (Stochastic-HMD, er = 0.1)");
    table::header(&["policy", "accuracy", "FPR", "evasive det."]);
    for r in &rows {
        table::row(&[
            r.policy.clone(),
            table::pct(r.accuracy),
            table::pct(r.fpr),
            table::pct(r.evasive_detected),
        ]);
    }
    println!();
    println!("any-of-k re-rolls the moving boundary per period: evasive detection");
    println!("climbs with k, at a false-positive cost; majority voting suppresses both");
}

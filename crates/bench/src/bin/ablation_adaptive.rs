//! Ablation: the adaptive (label-denoising) attacker — how much RE
//! effectiveness majority-voted queries buy back, and the query cost.

use hmd_bench::ablation::adaptive_ablation;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let rows = adaptive_ablation(&dataset, &args, &[1, 3, 5, 9, 15]);

    table::title("Ablation: denoising attacker vs Stochastic-HMD (er = 0.1)");
    table::header(&["queries/sample", "RE eff.", "total queries"]);
    for r in &rows {
        table::row(&[
            r.queries_per_sample.to_string(),
            table::pct(r.effectiveness),
            r.total_queries.to_string(),
        ]);
    }
    println!();
    println!("majority voting partially restores proxy fidelity at a linear");
    println!("query cost — each query is a full execution of the sample on the");
    println!("victim machine, which is the practical deterrent");
}

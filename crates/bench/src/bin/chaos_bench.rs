//! Chaos-resilience benchmark: a supervised monitoring pool driven through
//! a seeded crash/drift/poison schedule, serial vs threaded, swept over
//! pool sizes.
//!
//! Writes `BENCH_4.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--check` exits non-zero if any pool size's
//! threaded chaos replay is not bit-identical to the serial one (verdicts,
//! per-batch health transitions, and timing-stripped telemetry), if the
//! scripted chaos failed to crash anything, if any query was dropped, if
//! the pool did not end the run serving, or if the largest pool's
//! threaded-vs-serial scaling falls below the regression floor
//! (`--scaling-floor`, default 1.5, clamped to what the host's core count
//! can physically deliver) — that mode is what CI runs (with `--fast`) as
//! the chaos smoke test.

use hmd_bench::cli::Scale;
use hmd_bench::{chaos, serve, setup, table, Args};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_4.json");
    let mut configured_floor = 1.5_f64;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--scaling-floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => configured_floor = v,
                _ => {
                    eprintln!("error: --scaling-floor needs a positive number");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "flags: --seed N  --threads N  --paper  --fast  --check  \
                 --scaling-floor X  --out PATH"
            );
            std::process::exit(2);
        }
    };

    let (scale_name, batch_size) = match args.scale {
        Scale::Fast => ("fast", 1024),
        Scale::Medium => ("medium", 2048),
        Scale::Paper => ("paper", 4096),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let exec = args.exec();

    let points = chaos::measure_sweep(&baseline, &dataset, args.seed, batch_size, &exec);
    let total_batches = chaos::CHAOS_HORIZON + chaos::CHAOS_TAIL;

    table::title(&format!(
        "Chaos recovery, {total_batches} batches x {batch_size} queries ({scale_name})"
    ));
    table::header(&[
        "shards",
        "crashes",
        "retries",
        "drift",
        "rejected",
        "healthy@end",
        "scaling",
        "deterministic",
    ]);
    for p in &points {
        table::row(&[
            format!("{}", p.shards),
            format!("{}", p.crashes),
            format!("{}", p.retries),
            format!("{}", p.drift_events),
            format!("{}", p.rejected),
            format!("{}/{}", p.healthy_at_end, p.shards),
            format!("{:.2}x", p.scaling()),
            if p.thread_invariant { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("(same seeds, same chaos schedule; only the worker pool differs between replays)");

    let floor = serve::effective_scaling_floor(configured_floor, exec.thread_count());
    let doc = chaos::render_json(&points, args.seed, scale_name, exec.thread_count(), floor);
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        let expected_queries = (total_batches as usize) * batch_size;
        for p in &points {
            if !p.thread_invariant {
                eprintln!(
                    "FAIL: {} shards: threaded chaos replay diverged from serial",
                    p.shards
                );
                failed = true;
            }
            if p.crashes == 0 {
                eprintln!("FAIL: {} shards: scripted chaos crashed nothing", p.shards);
                failed = true;
            }
            if p.queries != expected_queries {
                eprintln!(
                    "FAIL: {} shards: {} of {expected_queries} queries processed",
                    p.shards, p.queries
                );
                failed = true;
            }
            if p.rejected != total_batches {
                eprintln!(
                    "FAIL: {} shards: {} of {total_batches} poison queries rejected",
                    p.shards, p.rejected
                );
                failed = true;
            }
            if p.healthy_at_end + p.degraded_at_end == 0 {
                eprintln!("FAIL: {} shards: pool ended the run dark", p.shards);
                failed = true;
            }
        }
        // Scaling-regression gate on the largest pool, hardware-clamped
        // like serve_bench's.
        if let Some(p) = points.last() {
            if exec.thread_count() > 1 && p.scaling() < floor {
                eprintln!(
                    "FAIL: {} shards: scaling {:.2}x below floor {:.2}x \
                     (configured {:.2}x, {} hardware threads)",
                    p.shards,
                    p.scaling(),
                    floor,
                    configured_floor,
                    serve::hardware_threads(),
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: chaos replay thread-invariant at every pool size, \
             poison contained, pool serving at end, scaling above {floor:.2}x"
        );
    }
}

//! End-to-end detector throughput: geometric + scratch hot path vs the
//! legacy per-draw, allocating path, swept over error rates.
//!
//! Writes `BENCH_2.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--check` exits non-zero if the hot path is slower
//! than the legacy path anywhere or if the fan-out breaks determinism —
//! that mode is what CI runs (with `--fast`) as a performance smoke test.

use hmd_bench::cli::Scale;
use hmd_bench::{perf, setup, table, Args};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_2.json");
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("flags: --seed N  --threads N  --paper  --fast  --check  --out PATH");
            std::process::exit(2);
        }
    };

    let (scale_name, queries) = match args.scale {
        Scale::Fast => ("fast", 2_000),
        Scale::Medium => ("medium", 20_000),
        Scale::Paper => ("paper", 100_000),
    };
    let dataset = setup::dataset(&args);
    let victim = setup::victim(&dataset, 0, &args);
    let q = victim.quantized();
    let features = victim.spec().extract(dataset.trace(0));
    let exec = args.exec();

    let points = perf::measure_sweep(q, &features, args.seed, queries, &exec);

    table::title(&format!(
        "Detector throughput, {} MACs/inference, {queries} queries/path ({scale_name})",
        q.mac_count()
    ));
    table::header(&[
        "er",
        "before (q/s)",
        "after (q/s)",
        "speedup",
        "threaded (q/s)",
        "deterministic",
    ]);
    for p in &points {
        table::row(&[
            format!("{}", p.error_rate),
            format!("{:.0}", p.before_qps),
            format!("{:.0}", p.after_qps),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.threaded_qps),
            if p.thread_invariant { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("(before: per-draw Bernoulli + dyn + allocation; after: geometric gap + scratch)");

    let doc = perf::render_json(
        &points,
        args.seed,
        scale_name,
        exec.thread_count(),
        q.mac_count(),
    );
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        for p in &points {
            if !p.thread_invariant {
                eprintln!(
                    "FAIL: er={} fan-out changed the output stream",
                    p.error_rate
                );
                failed = true;
            }
            // Timing on shared CI runners is noisy; the guard only catches
            // a real regression (geometric path materially slower than the
            // per-draw path it replaced).
            if p.speedup() < 0.9 {
                eprintln!(
                    "FAIL: er={} hot path slower than legacy ({:.0} vs {:.0} q/s)",
                    p.error_rate, p.after_qps, p.before_qps
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: hot path >= legacy at every error rate, outputs thread-invariant");
    }
}

//! §II characterisation narrative: first-fault offsets by operand class,
//! ALU immunity, freeze offset, the calibration curve, and the MSR command
//! a deployment would issue.

use hmd_bench::{table, Args};
use shmd_volt::calibration::{Calibrator, DeviceProfile};
use shmd_volt::characterize::{sweep_all, SweepConfig, SweepOutcome};
use shmd_volt::multiplier::{AluTimingModel, MultiplierTimingModel, OBSERVABLE_P};
use shmd_volt::voltage::{Millivolts, MsrVoltageCommand, VoltagePlane, NOMINAL_CORE_VOLTAGE};

fn main() {
    let args = Args::parse();
    let timing = MultiplierTimingModel::broadwell_2_2ghz();

    table::title("First-fault offsets by operand criticality (paper: -103 .. -145 mV)");
    table::header(&["operand class", "factor", "first fault"]);
    for (name, factor) in [
        ("worst case (dense)", 1.0),
        ("typical (random)", 0.982),
        ("least critical", 0.9642),
    ] {
        table::row(&[
            name.into(),
            format!("{factor:.3}"),
            timing.first_fault_offset(factor).to_string(),
        ]);
    }

    table::title("Per-instruction 1 mV sweeps (paper: mul faults; add/sub/bitwise never)");
    table::header(&["instruction", "outcome"]);
    let sweep_cfg = SweepConfig {
        seed: args.seed,
        ..SweepConfig::default()
    };
    for result in sweep_all(&sweep_cfg) {
        let outcome = match result.outcome {
            SweepOutcome::FaultAt(o) => format!("first fault at {o}"),
            SweepOutcome::FrozeAt(o) => format!("no faults; system froze at {o}"),
        };
        table::row(&[result.kind.to_string(), outcome]);
    }

    table::title("ALU (add/sub/bit-wise) immunity (paper: no faults observed)");
    let alu = AluTimingModel::broadwell_2_2ghz();
    let freeze = timing.freeze_offset();
    let mut alu_faulted = false;
    let mut mv = 0;
    while mv >= freeze.get() {
        if alu.violation_probability(NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(mv)))
            >= OBSERVABLE_P
        {
            alu_faulted = true;
        }
        mv -= 1;
    }
    println!(
        "ALU faults anywhere above the freeze offset ({freeze}): {}",
        if alu_faulted { "YES (!)" } else { "none" }
    );

    table::title("Per-device calibration curves (1 mV sweep)");
    table::header(&["device", "first fault", "freeze", "offset for er=0.1"]);
    for device in [
        DeviceProfile::reference(),
        DeviceProfile::sampled("unit-2", args.seed + 1),
        DeviceProfile::sampled("unit-3", args.seed + 2),
    ] {
        let curve = Calibrator::new().calibrate(&device);
        let op = curve
            .offset_for_error_rate(0.1)
            .map(|o| o.to_string())
            .unwrap_or_else(|e| format!("({e})"));
        table::row(&[
            device.name.clone(),
            curve.first_fault_offset().to_string(),
            curve.freeze_offset().to_string(),
            op,
        ]);
    }

    let curve = Calibrator::new().calibrate(&DeviceProfile::reference());
    if let Ok(offset) = curve.offset_for_error_rate(0.1) {
        if let Ok(cmd) = MsrVoltageCommand::new(VoltagePlane::CpuCore, offset) {
            println!("\nto deploy on the reference device: {cmd}");
        }
    }
}

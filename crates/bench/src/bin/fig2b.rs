//! Figure 2(b): output-confidence distributions of benign and malware test
//! samples at er ∈ {0.1, 0.5, 1.0}.

use hmd_bench::experiments::FIG2B_ERROR_RATES;
use hmd_bench::{setup, table, Args};
use stochastic_hmd::explore::confidence_distribution_with;

fn histogram(scores: &[f64]) -> [usize; 10] {
    let mut bins = [0usize; 10];
    for &s in scores {
        let b = ((s * 10.0) as usize).min(9);
        bins[b] += 1;
    }
    bins
}

fn print_class(name: &str, scores: &[f64]) {
    let (mean, std) = shmd_ml::metrics::mean_std(scores);
    let bins = histogram(scores);
    let total: usize = bins.iter().sum::<usize>().max(1);
    print!("{name:>8}: mean {mean:.3} std {std:.3} |");
    for b in bins {
        print!(" {:4.1}%", 100.0 * b as f64 / total as f64);
    }
    println!();
}

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let reps = args.reps_or(10);

    table::title("Figure 2(b): confidence distributions (bins 0.0-0.1 ... 0.9-1.0)");
    for &er in &FIG2B_ERROR_RATES {
        let dist = confidence_distribution_with(
            &dataset,
            er,
            reps,
            &setup::train_config(&args),
            args.seed,
            &args.exec(),
        )
        .expect("valid error rates");
        println!("\n-- er = {er} --");
        print_class("benign", &dist.benign_scores);
        print_class("malware", &dist.malware_scores);
    }
    println!();
    println!("paper: score variance grows with er; class means stay separated until er → 1");
}

//! Ablation: the carry-ripple (catastrophic-fault) fraction at er = 0.1 —
//! the accuracy ↔ security coupling analysed in EXPERIMENTS.md.

use hmd_bench::ablation::ripple_ablation;
use hmd_bench::{setup, table, Args};

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let fractions = [0.0, 0.01, 0.03, 0.05, 0.1, 0.2, 0.4];
    let rows = ripple_ablation(&dataset, &args, &fractions);

    table::title("Ablation: carry-ripple fraction at er = 0.1 (MLP attacker)");
    table::header(&["ripple", "accuracy", "RE eff.", "transfer succ."]);
    for r in &rows {
        table::row(&[
            format!("{:.2}", r.ripple),
            table::pct(r.accuracy),
            table::pct(r.re_effectiveness),
            table::pct(r.transfer_success),
        ]);
    }
    println!();
    println!("accuracy and attacker success fall together: the same catastrophic");
    println!("faults that resist the attacker also cost detection accuracy");
    println!("(default calibration: ripple = 0.03)");
}

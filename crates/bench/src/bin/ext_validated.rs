//! Extension: the victim-validating attacker — "no reliable access to the
//! HMD's output", quantified.
//!
//! The attacker validates every evasive candidate against the victim and
//! only ships samples the victim cleared several times in a row. Against
//! the deterministic baseline that validation is a certificate; against
//! the Stochastic-HMD it expires at the next detection.

use hmd_bench::setup::OPERATING_ERROR_RATE;
use hmd_bench::{setup, table, Args};
use shmd_attack::evasion::EvasionConfig;
use shmd_attack::reverse::{reverse_engineer, ReverseConfig};
use shmd_attack::validated::{validated_outcome, ValidationConfig};
use shmd_attack::ProxyKind;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::stochastic::StochasticHmd;

const DEPLOYMENT_DETECTIONS: usize = 16;

fn run(
    label: &str,
    victim: &mut dyn Detector,
    dataset: &shmd_workload::dataset::Dataset,
    seed: u64,
) {
    let split = dataset.three_fold_split(0);
    let proxy = reverse_engineer(
        victim,
        dataset,
        split.attacker_training(),
        &ReverseConfig::new(ProxyKind::Mlp).with_seed(seed),
    )
    .expect("RE succeeds");
    let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
    let outcome = validated_outcome(
        victim,
        &proxy,
        dataset,
        &malware,
        &EvasionConfig::default(),
        &ValidationConfig::default(),
        DEPLOYMENT_DETECTIONS,
    );
    table::row(&[
        label.to_string(),
        format!("{}/{}", outcome.validated, outcome.attempted),
        outcome.validation_queries.to_string(),
        table::pct(outcome.deployment_catch_rate()),
    ]);
}

fn main() {
    let args = Args::parse();
    let dataset = setup::dataset(&args);
    let base = setup::victim(&dataset, 0, &args);

    table::title(&format!(
        "Victim-validated evasion (3 clean verdicts required; deployment = {DEPLOYMENT_DETECTIONS} detections)"
    ));
    table::header(&["victim", "validated", "queries", "caught later"]);
    let mut baseline = base.clone();
    run("baseline", &mut baseline, &dataset, args.seed);
    let mut protected =
        StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed).expect("valid");
    run("stochastic", &mut protected, &dataset, args.seed);

    println!();
    println!("against the deterministic baseline, one clean validation lasts forever;");
    println!("against the Stochastic-HMD the attacker's own validation is unreliable —");
    println!("the paper's 'no reliable access to the HMD's output', measured");
}

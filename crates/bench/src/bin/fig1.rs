//! Figure 1: probability distribution of faulty-bit locations for
//! undervolted multiplication results (i7-5557U model, 2.2 GHz, 49 °C,
//! −130 mV).

use hmd_bench::cli::Scale;
use hmd_bench::experiments::characterize_fig1;
use hmd_bench::{table, Args};

fn main() {
    let args = Args::parse();
    let (sets, reps) = match args.scale {
        Scale::Fast => (2_000, 10),
        Scale::Medium => (20_000, 10),
        Scale::Paper => (100_000, 10), // the paper's 100k operand sets
    };
    let data = characterize_fig1(sets, reps, args.seed, &args.exec());

    table::title(&format!(
        "Figure 1: bit-wise fault rates at {} ({} operand sets x {} reps)",
        data.offset, sets, reps
    ));
    table::header(&["bit", "error rate"]);
    for (bit, &rate) in data.bitwise_rates.iter().enumerate().rev() {
        table::row(&[bit.to_string(), format!("{:.5}%", rate * 100.0)]);
    }
    println!();
    println!(
        "overall multiplication error rate: {:.4}%",
        data.observed_error_rate * 100.0
    );
    println!("sign-bit flips: {} (paper: never)", data.bitwise_rates[63]);
    println!(
        "8-LSB flips: {} (paper: never)",
        data.bitwise_rates[..8].iter().sum::<f64>()
    );
    println!(
        "approximate entropy of fault locations: {:.3} (stochastic ≫ 0)",
        data.apen
    );
}

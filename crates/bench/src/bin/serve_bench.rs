//! Serving-layer benchmark: the sharded continuous-monitoring engine
//! replaying a generated trace stream, serial vs threaded, swept over pool
//! sizes.
//!
//! Writes `BENCH_3.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--check` exits non-zero if any pool size's
//! threaded replay is not bit-identical to the serial one (verdict
//! checksum *and* timing-stripped telemetry), if any shard degraded at
//! the paper's er = 0.1 operating point, or if the largest pool's
//! threaded-vs-serial scaling falls below the regression floor
//! (`--scaling-floor`, default 2.0, clamped to what the host's core count
//! can physically deliver — see `serve::effective_scaling_floor`) — that
//! mode is what CI runs (with `--fast`) as a serving smoke test, so a
//! relapse of the inverted-scaling bug fails the build.

use hmd_bench::cli::Scale;
use hmd_bench::{serve, setup, table, Args};
use shmd_volt::calibration::{Calibrator, DeviceProfile};

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_3.json");
    let mut configured_floor = 2.0_f64;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--scaling-floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => configured_floor = v,
                _ => {
                    eprintln!("error: --scaling-floor needs a positive number");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "flags: --seed N  --threads N  --paper  --fast  --check  \
                 --scaling-floor X  --out PATH"
            );
            std::process::exit(2);
        }
    };

    let (scale_name, queries) = match args.scale {
        Scale::Fast => ("fast", 2_000),
        Scale::Medium => ("medium", 20_000),
        Scale::Paper => ("paper", 100_000),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let curve = Calibrator::new().calibrate(&DeviceProfile::reference());
    let exec = args.exec();

    let points = serve::measure_sweep(&baseline, &curve, &dataset, args.seed, queries, &exec);

    table::title(&format!(
        "Monitoring service throughput, {queries} queries/pool ({scale_name})"
    ));
    table::header(&[
        "shards",
        "serial (q/s)",
        "threaded (q/s)",
        "scaling",
        "degraded",
        "deterministic",
    ]);
    for p in &points {
        table::row(&[
            format!("{}", p.shards),
            format!("{:.0}", p.serial_qps),
            format!("{:.0}", p.threaded_qps),
            format!("{:.2}x", p.scaling()),
            format!("{}", p.degraded_shards),
            if p.thread_invariant { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("(same stream, same seeds; only the worker pool differs between the two replays)");

    let floor = serve::effective_scaling_floor(configured_floor, exec.thread_count());
    let doc = serve::render_json(&points, args.seed, scale_name, exec.thread_count(), floor);
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        for p in &points {
            if !p.thread_invariant {
                eprintln!(
                    "FAIL: {} shards: threaded replay diverged from serial",
                    p.shards
                );
                failed = true;
            }
            if p.degraded_shards != 0 {
                eprintln!(
                    "FAIL: {} shards: {} degraded at the reachable er = 0.1 target",
                    p.shards, p.degraded_shards
                );
                failed = true;
            }
        }
        // Scaling-regression gate on the largest pool: the configured
        // floor, clamped to what this host's core count can deliver.
        if let Some(p) = points.last() {
            if exec.thread_count() > 1 && p.scaling() < floor {
                eprintln!(
                    "FAIL: {} shards: scaling {:.2}x below floor {:.2}x \
                     (configured {:.2}x, {} hardware threads)",
                    p.shards,
                    p.scaling(),
                    floor,
                    configured_floor,
                    serve::hardware_threads(),
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: thread-invariant at every pool size, no degradation, \
             scaling above {floor:.2}x"
        );
    }
}

//! Batched-serving benchmark: the structure-of-arrays lane-parallel
//! inference path vs the scalar serving path, swept over lane widths
//! (1/4/8/16) and error rates.
//!
//! Writes `BENCH_6.json` (override with `--out PATH`) and prints the same
//! numbers as a table. `--check` exits non-zero if any width's verdict
//! stream diverges from the scalar (`lanes = 1`) deployment, if any width
//! is not thread-invariant, if any shard degraded, or if the best
//! single-thread batched speedup at the paper's er = 0.1 operating point
//! falls below the regression floor (`--speedup-floor`, default 1.5).
//! Unlike thread scaling, the lane speedup is a single-thread comparison,
//! so the floor applies unclamped even in a 1-core container — that mode
//! is what CI runs (with `--fast`) as a batching smoke test.

use hmd_bench::cli::Scale;
use hmd_bench::{batch, setup, table, Args};
use shmd_volt::calibration::{Calibrator, DeviceProfile};

/// Hidden width of the second, wider deployment the sweep measures. The
/// scale fixture (hidden 8/12) is event-bound at er = 0.1 — roughly one
/// fault event per ten multiplications regardless of network size — so
/// lane batching shows its full effect on detectors whose layers give the
/// straight-line MAC kernel more work per event. 32 keeps training at
/// bench scale cheap while putting the MAC:event ratio near the paper's
/// two-hidden-layer deployments.
const WIDE_HIDDEN: usize = 32;

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_6.json");
    let mut speedup_floor = 1.5_f64;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }
            },
            "--speedup-floor" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => speedup_floor = v,
                _ => {
                    eprintln!("error: --speedup-floor needs a positive number");
                    std::process::exit(2);
                }
            },
            _ => rest.push(flag),
        }
    }
    let args = match Args::try_from_iter(rest) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "flags: --seed N  --threads N  --paper  --fast  --check  \
                 --speedup-floor X  --out PATH"
            );
            std::process::exit(2);
        }
    };

    let (scale_name, queries) = match args.scale {
        Scale::Fast => ("fast", 2_000),
        Scale::Medium => ("medium", 20_000),
        Scale::Paper => ("paper", 100_000),
    };
    let dataset = setup::dataset(&args);
    let baseline = setup::victim(&dataset, 0, &args);
    let hidden = setup::train_config(&args).hidden;
    let fixture_label = format!("16-{hidden}-1");
    let wide = setup::victim_with_hidden(&dataset, 0, &args, WIDE_HIDDEN);
    let wide_label = format!("16-{WIDE_HIDDEN}-1");
    let curve = Calibrator::new().calibrate(&DeviceProfile::reference());
    let exec = args.exec();

    let mut points = batch::measure_sweep(
        &baseline,
        &fixture_label,
        &curve,
        &dataset,
        args.seed,
        queries,
        &exec,
    );
    points.extend(batch::measure_sweep(
        &wide,
        &wide_label,
        &curve,
        &dataset,
        args.seed,
        queries,
        &exec,
    ));

    table::title(&format!(
        "Batched serving throughput, {queries} queries/deployment ({scale_name})"
    ));
    table::header(&[
        "network",
        "er",
        "lanes",
        "scalar (q/s)",
        "batched (q/s)",
        "speedup",
        "threaded (q/s)",
        "identical",
    ]);
    for p in &points {
        table::row(&[
            p.network.clone(),
            format!("{}", p.error_rate),
            format!("{}", p.lanes),
            format!("{:.0}", p.scalar_qps),
            format!("{:.0}", p.batched_qps),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", p.threaded_qps),
            if p.matches_scalar && p.thread_invariant {
                "yes"
            } else {
                "NO"
            }
            .into(),
        ]);
    }
    println!(
        "(same stream, same seeds; only the lane width — and, for the threaded \
         column, the worker pool — differs between replays)"
    );

    let doc = batch::render_json(&points, args.seed, scale_name, exec.thread_count());
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if check {
        let mut failed = false;
        for p in &points {
            if !p.matches_scalar {
                eprintln!(
                    "FAIL: er {} lanes {}: batched replay diverged from scalar",
                    p.error_rate, p.lanes
                );
                failed = true;
            }
            if !p.thread_invariant {
                eprintln!(
                    "FAIL: er {} lanes {}: threaded replay diverged from serial",
                    p.error_rate, p.lanes
                );
                failed = true;
            }
            if p.degraded_shards != 0 {
                eprintln!(
                    "FAIL: er {} lanes {}: {} shards degraded at a reachable target",
                    p.error_rate, p.lanes, p.degraded_shards
                );
                failed = true;
            }
        }
        // Perf-regression gate: the best wide-lane speedup at the paper's
        // operating point must clear the floor. Single-thread numbers, so
        // no hardware clamp applies.
        let best = points
            .iter()
            .filter(|p| p.error_rate == 0.1 && p.lanes >= 8)
            .map(|p| p.speedup())
            .fold(f64::NEG_INFINITY, f64::max);
        if best < speedup_floor {
            eprintln!(
                "FAIL: best batched speedup {best:.2}x at er = 0.1 (lanes >= 8) \
                 below floor {speedup_floor:.2}x"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: every width bit-identical to scalar and thread-invariant, \
             no degradation, best er = 0.1 speedup {best:.2}x above {speedup_floor:.2}x"
        );
    }
}

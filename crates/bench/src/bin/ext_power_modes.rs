//! Extension: undervolting vs DVFS, and the battery-life view for the
//! mobile/edge/IoT deployments the paper motivates.

use hmd_bench::{table, Args};
use shmd_power::battery::{BatteryModel, DetectionDutyCycle};
use shmd_power::dvfs::DvfsComparison;
use shmd_power::latency::LatencyModel;
use shmd_volt::voltage::{Millivolts, Volts, NOMINAL_CORE_VOLTAGE};

fn main() {
    let _args = Args::parse();
    let macs = LatencyModel::paper_detector_macs();
    let cmp = DvfsComparison::i7_5557u();
    let operating = NOMINAL_CORE_VOLTAGE.with_offset(Millivolts::new(-134));

    table::title("Undervolting vs DVFS (71 KB detector, per detection)");
    table::header(&["strategy", "voltage", "power", "latency", "energy"]);
    let rows: [(&str, shmd_power::dvfs::StrategyOutcome); 3] = [
        ("nominal", cmp.undervolting(NOMINAL_CORE_VOLTAGE, macs)),
        ("undervolt", cmp.undervolting(operating, macs)),
        ("DVFS", cmp.dvfs(operating, macs)),
    ];
    for (name, o) in rows {
        let v = if name == "nominal" {
            NOMINAL_CORE_VOLTAGE
        } else {
            operating
        };
        table::row(&[
            name.to_string(),
            format!("{v}"),
            format!("{:.1} W", o.power_w),
            format!("{:.1} us", o.latency_us),
            format!("{:.1} uJ", o.energy_uj),
        ]);
    }
    println!("undervolting takes the power saving without the DVFS latency penalty");
    println!("(paper: 'scaling the voltage has no effect on the cycle time')");

    table::title("Battery view (wearable-class 4 kJ battery, 100 detections/s)");
    table::header(&["voltage", "battery/day", "detections/J"]);
    let duty = DetectionDutyCycle::default();
    let battery = BatteryModel::wearable();
    for v in [1.18, 1.05, 0.88, 0.68] {
        let vdd = Volts(v);
        table::row(&[
            format!("{vdd}"),
            table::pct(
                battery
                    .battery_per_day(&duty, vdd)
                    .expect("100 detections/s is a feasible duty"),
            ),
            format!("{:.0}", battery.detections_per_joule(&duty, vdd)),
        ]);
    }
    println!("the by-product saving the paper markets to 'mobile, edge, and IoT devices'");
}

//! Serving-layer measurement: the sharded continuous-monitoring engine
//! replaying a query stream, timed serial vs fanned across the worker
//! pool.
//!
//! PR 3 added [`stochastic_hmd::serve::MonitoringService`] — a pool of
//! Stochastic-HMD replicas answering a trace stream with per-shard derived
//! seeds and deterministic fan-out. This module replays the same generated
//! stream through a serial and a threaded deployment of the same
//! configuration and records throughput next to the determinism verdict
//! (`BENCH_3.json` at the repository root, written by the `serve_bench`
//! binary).
//!
//! As with the throughput benchmark, the timings vary run to run but the
//! *outputs* must not: the service folds every verdict into a checksum, and
//! a point only counts as thread-invariant when the serial and threaded
//! checksums — and the full timing-stripped telemetry snapshots — are
//! bit-identical.

use shmd_volt::calibration::CalibrationCurve;
use shmd_workload::dataset::Dataset;
use shmd_workload::trace::Trace;
use std::time::Instant;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::BaselineHmd;

/// Shard-pool sizes the serving benchmark sweeps: a single replica (the
/// paper's one-detector deployment) up to a modest multi-core pool.
pub const BENCH_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One pool size's measurement.
#[derive(Clone, Debug)]
pub struct ServePoint {
    /// Detector replicas in the pool.
    pub shards: usize,
    /// Queries replayed per deployment.
    pub queries: usize,
    /// Queries per second with a serial worker pool.
    pub serial_qps: f64,
    /// Queries per second fanned across the configured worker pool.
    pub threaded_qps: f64,
    /// Verdict checksum of the serial replay.
    pub checksum: u64,
    /// Whether the threaded verdict checksum *and* the timing-stripped
    /// telemetry snapshot matched the serial ones bit-for-bit.
    pub thread_invariant: bool,
    /// Shards serving the baseline fallback after deployment.
    pub degraded_shards: usize,
    /// Queries flagged as malware (identical in both replays when
    /// `thread_invariant` holds).
    pub flags: u64,
}

impl ServePoint {
    /// `threaded_qps / serial_qps`.
    pub fn scaling(&self) -> f64 {
        self.threaded_qps / self.serial_qps
    }
}

/// The scaling floor a `--check` run actually enforces, given the floor
/// the operator configured and the machine it runs on.
///
/// A configured floor of, say, 2× assumes at least a few real cores. On a
/// box with fewer hardware threads than the benchmark asks for, wall-clock
/// speedup is physically capped at the hardware — a 1-core container can
/// never scale past 1× no matter how lock-free the engine is. The
/// effective floor is therefore clamped to `0.75 ×
/// min(hardware_threads, requested_threads)` (threading overhead may cost
/// at most 25%), and never below 0.75: even on one core, the lock-free
/// engine must not fall off the historical 0.35× cliff the per-shard-mutex
/// design produced.
pub fn effective_scaling_floor(configured: f64, threads: usize) -> f64 {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let usable = hw.min(threads.max(1)) as f64;
    configured.min(0.75 * usable).max(0.75)
}

/// Hardware threads available to this process, reported alongside the
/// floor in the bench JSON so a reader can interpret the scaling numbers.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Replays `queries` through a fresh deployment and returns the finished
/// service plus its queries-per-second.
fn replay(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    config: ServeConfig,
    queries: &[&Trace],
) -> (MonitoringService, f64) {
    let mut service =
        MonitoringService::deploy(baseline, curve, config).expect("benchmark config is valid");
    let start = Instant::now();
    service.process_stream(queries);
    let qps = queries.len() as f64 / start.elapsed().as_secs_f64();
    (service, qps)
}

/// Measures one pool size: the same stream through a serial and a threaded
/// deployment of the same configuration, including the thread-invariance
/// verdict on verdict checksums and telemetry.
pub fn measure_point(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    queries: &[&Trace],
    shards: usize,
    seed: u64,
    exec: &ExecConfig,
) -> ServePoint {
    let config = ServeConfig::new(shards).with_seed(seed);
    let (serial, serial_qps) = replay(
        baseline,
        curve,
        config.with_exec(ExecConfig::serial()),
        queries,
    );
    let (threaded, threaded_qps) = replay(baseline, curve, config.with_exec(*exec), queries);
    let serial_snapshot = serial.snapshot().without_timing();
    let threaded_snapshot = threaded.snapshot().without_timing();
    ServePoint {
        shards,
        queries: queries.len(),
        serial_qps,
        threaded_qps,
        checksum: serial_snapshot.verdict_checksum,
        thread_invariant: serial_snapshot == threaded_snapshot,
        degraded_shards: serial_snapshot.degraded_shards(),
        flags: serial_snapshot.flags,
    }
}

/// Sweeps [`BENCH_SHARD_COUNTS`] over a stream drawn from `dataset`
/// (queries cycle through the whole dataset).
pub fn measure_sweep(
    baseline: &BaselineHmd,
    curve: &CalibrationCurve,
    dataset: &Dataset,
    seed: u64,
    queries: usize,
    exec: &ExecConfig,
) -> Vec<ServePoint> {
    let stream: Vec<&Trace> = (0..queries)
        .map(|i| dataset.trace(i % dataset.len()))
        .collect();
    BENCH_SHARD_COUNTS
        .iter()
        .map(|&shards| measure_point(baseline, curve, &stream, shards, seed, exec))
        .collect()
}

/// Renders the sweep as the hand-built JSON written to `BENCH_3.json`.
///
/// The vendored `serde` is a no-op shim, so the document is formatted
/// here; checksums are decimal strings to stay integer-exact in any
/// reader (they exceed 2^53).
pub fn render_json(
    points: &[ServePoint],
    seed: u64,
    scale: &str,
    threads: usize,
    scaling_floor: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"monitoring_service\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        hardware_threads()
    ));
    out.push_str(&format!("  \"scaling_floor\": {scaling_floor:.3},\n"));
    out.push_str(
        "  \"engine\": \"lock-free query-range claiming over a shared shard pool, \
         per-query derived fault streams, per-worker telemetry fold\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"queries\": {}, \"serial_qps\": {:.1}, \
             \"threaded_qps\": {:.1}, \"scaling\": {:.3}, \"checksum\": \"{}\", \
             \"thread_invariant\": {}, \"degraded_shards\": {}, \"flags\": {}}}{}\n",
            p.shards,
            p.queries,
            p.serial_qps,
            p.threaded_qps,
            p.scaling(),
            p.checksum,
            p.thread_invariant,
            p.degraded_shards,
            p.flags,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;
    use shmd_volt::calibration::{Calibrator, DeviceProfile};

    fn fixture() -> (Dataset, BaselineHmd, CalibrationCurve) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        let curve = Calibrator::new()
            .with_step(2)
            .calibrate(&DeviceProfile::reference());
        (dataset, baseline, curve)
    }

    #[test]
    fn measurement_is_finite_and_thread_invariant() {
        let (dataset, baseline, curve) = fixture();
        let stream: Vec<&Trace> = (0..60).map(|i| dataset.trace(i % dataset.len())).collect();
        let p = measure_point(&baseline, &curve, &stream, 3, 7, &ExecConfig::threads(4));
        assert!(p.serial_qps.is_finite() && p.serial_qps > 0.0);
        assert!(p.threaded_qps.is_finite() && p.threaded_qps > 0.0);
        assert!(p.thread_invariant, "fan-out changed the verdict stream");
        assert_eq!(p.degraded_shards, 0);
    }

    #[test]
    fn checksum_is_seed_deterministic() {
        let (dataset, baseline, curve) = fixture();
        let stream: Vec<&Trace> = (0..40).map(|i| dataset.trace(i % dataset.len())).collect();
        let a = measure_point(&baseline, &curve, &stream, 2, 5, &ExecConfig::serial());
        let b = measure_point(&baseline, &curve, &stream, 2, 5, &ExecConfig::serial());
        assert_eq!(a.checksum, b.checksum, "same seed must replay identically");
        let c = measure_point(&baseline, &curve, &stream, 2, 6, &ExecConfig::serial());
        assert_ne!(
            a.checksum, c.checksum,
            "different seed must change the stream"
        );
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = ServePoint {
            shards: 4,
            queries: 100,
            serial_qps: 1000.0,
            threaded_qps: 3000.0,
            checksum: 42,
            thread_invariant: true,
            degraded_shards: 0,
            flags: 17,
        };
        let doc = render_json(&[p], 42, "fast", 8, 2.0);
        assert!(doc.contains("\"scaling\": 3.000"));
        assert!(doc.contains("\"thread_invariant\": true"));
        assert!(doc.contains("\"checksum\": \"42\""));
        assert!(doc.contains("\"scaling_floor\": 2.000"));
        assert!(doc.contains("\"hardware_threads\": "));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn effective_floor_is_hardware_aware() {
        // Can't dictate the host's core count, but the clamp's algebra is
        // checkable at both extremes: the floor never exceeds what the
        // hardware can deliver and never drops below 0.75.
        let hw = hardware_threads() as f64;
        let floor = effective_scaling_floor(2.0, 8);
        assert!(floor <= 2.0 + f64::EPSILON);
        assert!(floor <= (0.75 * hw.min(8.0)).max(0.75) + f64::EPSILON);
        assert!((0.75..=2.0).contains(&floor));
        // A giant configured floor clamps to the hardware; a tiny one
        // survives only via the 0.75 backstop.
        assert!(effective_scaling_floor(1000.0, 8) <= 0.75 * hw.min(8.0) + f64::EPSILON);
        assert_eq!(effective_scaling_floor(0.1, 8), 0.75);
    }
}

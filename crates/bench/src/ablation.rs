//! Ablation studies on the reproduction's design choices.
//!
//! Three ablations quantify the knobs DESIGN.md §7 calls out:
//!
//! - [`ripple_ablation`] — the carry-ripple (catastrophic-fault) fraction:
//!   the accuracy ↔ security coupling EXPERIMENTS.md analyses;
//! - [`policy_ablation`] — deployment detection policies: how multi-
//!   detection aggregation trades evasive-malware detection against false
//!   positives;
//! - [`adaptive_ablation`] — the denoising attacker: how much reverse-
//!   engineering effectiveness majority-voted queries buy back, and at
//!   what query cost.

use crate::cli::Args;
use crate::setup::{victim, OPERATING_ERROR_RATE};
use shmd_attack::adaptive::{denoised_reverse_engineer, query_cost};
use shmd_attack::campaign::{AttackCampaign, AttackTrainingSet};
use shmd_attack::evasion::EvasionConfig;
use shmd_attack::reverse::{effectiveness, reverse_engineer, ReverseConfig};
use shmd_attack::transfer::transferability;
use shmd_attack::ProxyKind;
use shmd_volt::fault::{FaultModel, DEFAULT_RIPPLE_SPAN};
use shmd_workload::dataset::Dataset;
use stochastic_hmd::deploy::{DetectionPolicy, PolicyDetector};
use stochastic_hmd::stochastic::StochasticHmd;
use stochastic_hmd::train::evaluate;

/// One row of the ripple-fraction ablation.
#[derive(Clone, Debug)]
pub struct RippleRow {
    /// Fraction of flips diverted above the product MSB.
    pub ripple: f64,
    /// Detection accuracy at er = 0.1 with this tail.
    pub accuracy: f64,
    /// MLP reverse-engineering effectiveness against the victim.
    pub re_effectiveness: f64,
    /// MLP transferability success against the victim.
    pub transfer_success: f64,
}

/// Sweeps the catastrophic-fault fraction at the er = 0.1 operating point.
pub fn ripple_ablation(dataset: &Dataset, args: &Args, fractions: &[f64]) -> Vec<RippleRow> {
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let base = victim(dataset, rotation, args);
    let seeds = args.reps_or(3) as u64;
    let mut rows = Vec::with_capacity(fractions.len());
    for &ripple in fractions {
        let (mut acc, mut eff, mut success) = (0.0, 0.0, 0.0);
        for s in 0..seeds {
            let model = FaultModel::from_error_rate(OPERATING_ERROR_RATE)
                .expect("valid rate")
                .with_ripple(ripple, DEFAULT_RIPPLE_SPAN);
            let mut hmd = StochasticHmd::with_fault_model(&base, model, args.seed ^ s);
            acc += evaluate(&mut hmd, dataset, split.testing()).accuracy();
            let campaign =
                AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed))
                    .with_training_set(AttackTrainingSet::AttackerTraining);
            let report = campaign
                .run(&mut hmd, dataset, rotation)
                .expect("attack succeeds");
            eff += report.re_effectiveness;
            success += report.transfer.assumed_success_rate();
        }
        let n = seeds as f64;
        rows.push(RippleRow {
            ripple,
            accuracy: acc / n,
            re_effectiveness: eff / n,
            transfer_success: success / n,
        });
    }
    rows
}

/// One row of the deployment-policy ablation.
#[derive(Clone, Debug)]
pub struct PolicyRow {
    /// The policy (display form).
    pub policy: String,
    /// Detection accuracy on natural programs.
    pub accuracy: f64,
    /// False-positive rate on natural programs.
    pub fpr: f64,
    /// Fraction of evasive malware detected.
    pub evasive_detected: f64,
}

/// Evaluates detection policies over the er = 0.1 Stochastic-HMD.
pub fn policy_ablation(
    dataset: &Dataset,
    args: &Args,
    policies: &[DetectionPolicy],
) -> Vec<PolicyRow> {
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let base = victim(dataset, rotation, args);
    let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
    let seeds = args.reps_or(3) as u64;
    let mut rows = Vec::with_capacity(policies.len());
    for &policy in policies {
        let (mut acc, mut fpr, mut detected) = (0.0, 0.0, 0.0);
        for s in 0..seeds {
            let hmd = StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed ^ s)
                .expect("valid rate");
            let mut deployed = PolicyDetector::new(hmd, policy);
            let m = evaluate(&mut deployed, dataset, split.testing());
            acc += m.accuracy();
            fpr += m.false_positive_rate();
            // The attacker reverse-engineers the *deployed* (policy-wrapped)
            // detector, as a black box.
            let proxy = reverse_engineer(
                &mut deployed,
                dataset,
                split.attacker_training(),
                &ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed),
            )
            .expect("RE succeeds");
            let outcome = transferability(
                &mut deployed,
                &proxy,
                dataset,
                &malware,
                &EvasionConfig::default(),
                1, // the policy already aggregates detections internally
            );
            detected += outcome.assumed_detection_rate();
        }
        let n = seeds as f64;
        rows.push(PolicyRow {
            policy: policy.to_string(),
            accuracy: acc / n,
            fpr: fpr / n,
            evasive_detected: detected / n,
        });
    }
    rows
}

/// One row of the adaptive-attacker ablation.
#[derive(Clone, Debug)]
pub struct AdaptiveRow {
    /// Victim queries per training sample.
    pub queries_per_sample: usize,
    /// MLP proxy effectiveness achieved.
    pub effectiveness: f64,
    /// Total victim queries issued for reverse engineering.
    pub total_queries: usize,
}

/// Sweeps the denoising attacker's per-sample query budget against the
/// er = 0.1 Stochastic-HMD.
pub fn adaptive_ablation(
    dataset: &Dataset,
    args: &Args,
    query_counts: &[usize],
) -> Vec<AdaptiveRow> {
    let rotation = 0;
    let split = dataset.three_fold_split(rotation);
    let base = victim(dataset, rotation, args);
    let seeds = args.reps_or(3) as u64;
    let mut rows = Vec::with_capacity(query_counts.len());
    for &k in query_counts {
        let mut eff = 0.0;
        for s in 0..seeds {
            let mut hmd = StochasticHmd::from_baseline(&base, OPERATING_ERROR_RATE, args.seed ^ s)
                .expect("valid rate");
            let proxy = denoised_reverse_engineer(
                &mut hmd,
                dataset,
                split.attacker_training(),
                &ReverseConfig::new(ProxyKind::Mlp).with_seed(args.seed),
                k,
            )
            .expect("RE succeeds");
            eff += effectiveness(&proxy, &mut hmd, dataset, split.testing());
        }
        rows.push(AdaptiveRow {
            queries_per_sample: k,
            effectiveness: eff / seeds as f64,
            total_queries: query_cost(split.attacker_training().len(), k),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;

    fn fast_args() -> Args {
        Args::parse_from(["--fast".to_string(), "--reps".to_string(), "1".to_string()])
    }

    #[test]
    fn ripple_ablation_shows_the_coupling() {
        let args = fast_args();
        let dataset = setup::dataset(&args);
        let rows = ripple_ablation(&dataset, &args, &[0.0, 0.3]);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].accuracy >= rows[1].accuracy - 0.02,
            "a heavier catastrophic tail must not improve accuracy: {rows:?}"
        );
    }

    #[test]
    fn policy_ablation_produces_rows_per_policy() {
        // More reps than the other ablation tests: the FPR comparison below
        // is over a handful of benign programs, so a single stochastic
        // stream quantises FPR too coarsely to order the policies.
        let args = Args::parse_from(["--fast".to_string(), "--reps".to_string(), "24".to_string()]);
        let dataset = setup::dataset(&args);
        let rows = policy_ablation(
            &dataset,
            &args,
            &[DetectionPolicy::Single, DetectionPolicy::AnyOf(4)],
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
            assert!((0.0..=1.0).contains(&r.evasive_detected), "{r:?}");
        }
        assert!(
            rows[1].fpr >= rows[0].fpr - 0.02,
            "any-of-k must not reduce FPR: {rows:?}"
        );
    }

    #[test]
    fn adaptive_ablation_reports_query_costs() {
        let args = fast_args();
        let dataset = setup::dataset(&args);
        let rows = adaptive_ablation(&dataset, &args, &[1, 5]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].total_queries, 5 * rows[0].total_queries);
        assert!(rows[1].effectiveness >= rows[0].effectiveness - 0.08);
    }
}

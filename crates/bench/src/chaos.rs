//! Chaos-resilience measurement: a *supervised* monitoring pool driven
//! through a seeded crash/drift schedule, timed serial vs threaded.
//!
//! Where `serve` (BENCH_3) measures the happy path, this module measures
//! the supervised one: a [`stochastic_hmd::supervisor::ChaosPlan`] crashes
//! shards and spikes the die temperature mid-stream, a poison query is
//! mixed into every batch, and the pool has to quarantine, re-route,
//! retry, and recover — all while staying bit-identical between a serial
//! and a threaded replay. The `chaos_bench` binary writes the sweep to
//! `BENCH_4.json` at the repository root.
//!
//! Timings vary run to run; nothing else may. A point counts as
//! thread-invariant only when the serial and threaded verdict checksums,
//! health-transition tallies, and full timing-stripped telemetry
//! snapshots are bit-identical.

use shmd_volt::calibration::DeviceProfile;
use shmd_volt::environment::EnvironmentConfig;
use shmd_workload::dataset::Dataset;
use std::time::Instant;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig};
use stochastic_hmd::supervisor::{ChaosPlan, ShardHealth, SupervisorConfig};
use stochastic_hmd::telemetry::TelemetrySnapshot;
use stochastic_hmd::BaselineHmd;

/// Pool sizes the chaos benchmark sweeps. A 1-shard pool is excluded: its
/// only crash response is baseline failover, which the serve benchmark's
/// degradation counters already cover.
pub const CHAOS_SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Batches of scripted chaos per deployment (the plan's horizon), followed
/// by a clean tail that gives the last quarantined shard room to finish
/// its recovery retries.
pub const CHAOS_HORIZON: u64 = 24;

/// Clean batches appended after the chaos horizon.
pub const CHAOS_TAIL: u64 = 16;

/// One pool size's chaos measurement.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Detector replicas in the pool.
    pub shards: usize,
    /// Queries replayed per deployment (served + rejected).
    pub queries: usize,
    /// Queries per second with a serial worker pool, chaos included.
    pub serial_qps: f64,
    /// Queries per second fanned across the configured worker pool.
    pub threaded_qps: f64,
    /// Verdict checksum of the serial replay.
    pub checksum: u64,
    /// Whether the threaded replay matched the serial one bit-for-bit
    /// (verdicts, health transitions, timing-stripped telemetry).
    pub thread_invariant: bool,
    /// Shard crashes over the run (scripted + physics).
    pub crashes: u64,
    /// Recovery retries executed.
    pub retries: u64,
    /// Watchdog drift detections.
    pub drift_events: u64,
    /// Health-state transitions across all shards.
    pub transitions: u64,
    /// Poison queries rejected at ingestion.
    pub rejected: u64,
    /// Shards back to `Healthy` when the run ended.
    pub healthy_at_end: usize,
    /// Shards parked on the baseline fallback when the run ended.
    pub degraded_at_end: usize,
}

impl ChaosPoint {
    /// `threaded_qps / serial_qps`.
    pub fn scaling(&self) -> f64 {
        self.threaded_qps / self.serial_qps
    }
}

/// Batches between supervision sweeps in the benchmark world. Scripted
/// kills land at the next sweep via the inclusive window in
/// `ChaosPlan::kills_in`, so nothing is lost — the pool just reacts at
/// cadence granularity instead of paying the supervisor on every batch.
pub const SUPERVISION_CADENCE: u64 = 4;

/// The scripted world every measurement runs in: a drifting office
/// environment plus a seeded chaos plan over [`CHAOS_HORIZON`] batches,
/// supervised every [`SUPERVISION_CADENCE`] batches.
/// Shared with [`crate::durability`], whose crash/restore runs must live
/// in the exact world the chaos benchmark measures.
pub fn supervision(seed: u64, shards: usize) -> SupervisorConfig {
    let device = DeviceProfile::reference();
    let environment = EnvironmentConfig::drifting(device.temp_c, seed);
    let chaos = ChaosPlan::seeded(seed, shards, CHAOS_HORIZON, 2, 1);
    SupervisorConfig::new(device)
        .with_environment(environment)
        .with_chaos(chaos)
        .with_supervision_cadence(SUPERVISION_CADENCE)
}

/// Replays the chaos schedule through a fresh supervised deployment and
/// returns the finished service, its snapshot, and queries-per-second.
fn replay(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    shards: usize,
    seed: u64,
    exec: ExecConfig,
) -> (Vec<Vec<ShardHealth>>, TelemetrySnapshot, f64) {
    let config = ServeConfig::new(shards)
        .with_seed(seed)
        .with_target_error_rate(0.2)
        .with_exec(exec);
    let mut service = MonitoringService::supervised(baseline, supervision(seed, shards), config)
        .expect("the reference device calibrates at er = 0.2");
    let total: usize = features.iter().map(Vec::len).sum();
    let start = Instant::now();
    let mut healths = Vec::with_capacity(features.len());
    for batch in features {
        service.process_feature_batch(batch);
        healths.push(service.shard_healths());
    }
    let qps = total as f64 / start.elapsed().as_secs_f64();
    (healths, service.snapshot(), qps)
}

/// Builds the batched feature stream: `batch_size` queries per batch over
/// `CHAOS_HORIZON + CHAOS_TAIL` batches, with the last query of every
/// batch width-poisoned so rejection is exercised under chaos.
pub fn feature_stream(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    batch_size: usize,
) -> Vec<Vec<Vec<f32>>> {
    let spec = baseline.spec();
    let dim = spec.extract(dataset.trace(0)).len();
    let batches = (CHAOS_HORIZON + CHAOS_TAIL) as usize;
    (0..batches)
        .map(|b| {
            let mut batch: Vec<Vec<f32>> = (0..batch_size)
                .map(|i| spec.extract(dataset.trace((b * batch_size + i) % dataset.len())))
                .collect();
            let last = batch.len() - 1;
            batch[last] = vec![0.5; dim + 1];
            batch
        })
        .collect()
}

/// Measures one pool size: the same chaos schedule through a serial and a
/// threaded deployment, including the thread-invariance verdict.
pub fn measure_point(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    shards: usize,
    seed: u64,
    exec: &ExecConfig,
) -> ChaosPoint {
    let (serial_healths, serial_raw, serial_qps) =
        replay(baseline, features, shards, seed, ExecConfig::serial());
    let (threaded_healths, threaded_raw, threaded_qps) =
        replay(baseline, features, shards, seed, *exec);
    let serial = serial_raw.without_timing();
    let threaded = threaded_raw.without_timing();
    let final_healths = serial_healths.last().cloned().unwrap_or_default();
    ChaosPoint {
        shards,
        queries: features.iter().map(Vec::len).sum(),
        serial_qps,
        threaded_qps,
        checksum: serial.verdict_checksum,
        thread_invariant: serial == threaded && serial_healths == threaded_healths,
        crashes: serial.total_crashes(),
        retries: serial.total_retries(),
        drift_events: serial.total_drift_events(),
        transitions: serial.total_transitions(),
        rejected: serial.rejected_queries,
        healthy_at_end: final_healths
            .iter()
            .filter(|&&h| h == ShardHealth::Healthy)
            .count(),
        degraded_at_end: final_healths
            .iter()
            .filter(|&&h| h == ShardHealth::Degraded)
            .count(),
    }
}

/// Sweeps [`CHAOS_SHARD_COUNTS`] over a stream drawn from `dataset`.
pub fn measure_sweep(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    seed: u64,
    batch_size: usize,
    exec: &ExecConfig,
) -> Vec<ChaosPoint> {
    let features = feature_stream(baseline, dataset, batch_size);
    CHAOS_SHARD_COUNTS
        .iter()
        .map(|&shards| measure_point(baseline, &features, shards, seed, exec))
        .collect()
}

/// Renders the sweep as the hand-built JSON written to `BENCH_4.json`
/// (the vendored `serde` is a no-op shim; checksums are decimal strings
/// because they exceed 2^53).
pub fn render_json(
    points: &[ChaosPoint],
    seed: u64,
    scale: &str,
    threads: usize,
    scaling_floor: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"chaos_recovery\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        crate::serve::hardware_threads()
    ));
    out.push_str(&format!("  \"scaling_floor\": {scaling_floor:.3},\n"));
    out.push_str(&format!(
        "  \"schedule\": \"{} chaos batches + {} clean, seeded crashes and a cold spike, \
         one poison query per batch, supervision every {} batches\",\n",
        CHAOS_HORIZON, CHAOS_TAIL, SUPERVISION_CADENCE
    ));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"queries\": {}, \"serial_qps\": {:.1}, \
             \"threaded_qps\": {:.1}, \"scaling\": {:.3}, \"checksum\": \"{}\", \
             \"thread_invariant\": {}, \"crashes\": {}, \"retries\": {}, \
             \"drift_events\": {}, \"transitions\": {}, \"rejected\": {}, \
             \"healthy_at_end\": {}, \"degraded_at_end\": {}}}{}\n",
            p.shards,
            p.queries,
            p.serial_qps,
            p.threaded_qps,
            p.scaling(),
            p.checksum,
            p.thread_invariant,
            p.crashes,
            p.retries,
            p.drift_events,
            p.transitions,
            p.rejected,
            p.healthy_at_end,
            p.degraded_at_end,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;

    fn fixture() -> (Dataset, BaselineHmd) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        (dataset, baseline)
    }

    #[test]
    fn chaos_point_is_thread_invariant_and_contains_poison() {
        let (dataset, baseline) = fixture();
        let features = feature_stream(&baseline, &dataset, 8);
        let p = measure_point(&baseline, &features, 4, 11, &ExecConfig::threads(4));
        assert!(p.serial_qps.is_finite() && p.serial_qps > 0.0);
        assert!(p.thread_invariant, "chaos replay diverged across threads");
        assert_eq!(
            p.rejected,
            CHAOS_HORIZON + CHAOS_TAIL,
            "one poison per batch must be rejected"
        );
        assert!(p.crashes >= 1, "the seeded plan must actually crash shards");
        assert!(
            p.healthy_at_end + p.degraded_at_end >= 1,
            "the pool must end the run serving"
        );
    }

    #[test]
    fn chaos_checksum_is_seed_deterministic() {
        let (dataset, baseline) = fixture();
        let features = feature_stream(&baseline, &dataset, 8);
        let a = measure_point(&baseline, &features, 2, 5, &ExecConfig::serial());
        let b = measure_point(&baseline, &features, 2, 5, &ExecConfig::serial());
        assert_eq!(a.checksum, b.checksum, "same seed must replay identically");
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.transitions, b.transitions);
        let c = measure_point(&baseline, &features, 2, 6, &ExecConfig::serial());
        assert_ne!(a.checksum, c.checksum, "seed must steer the chaos run");
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = ChaosPoint {
            shards: 4,
            queries: 320,
            serial_qps: 900.0,
            threaded_qps: 2700.0,
            checksum: 7,
            thread_invariant: true,
            crashes: 2,
            retries: 3,
            drift_events: 1,
            transitions: 12,
            rejected: 40,
            healthy_at_end: 4,
            degraded_at_end: 0,
        };
        let doc = render_json(&[p], 42, "fast", 8, 1.5);
        assert!(doc.contains("\"bench\": \"chaos_recovery\""));
        assert!(doc.contains("\"scaling\": 3.000"));
        assert!(doc.contains("\"thread_invariant\": true"));
        assert!(doc.contains("\"crashes\": 2"));
        assert!(doc.contains("\"scaling_floor\": 1.500"));
        assert!(doc.contains("\"hardware_threads\": "));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! Daemon measurement: the wire → admission → verdict path end to end.
//!
//! Four measurements, all but the first deterministic (seeded chaos
//! stream, batch-indexed decisions, no wall-clock anywhere in the
//! decision path):
//!
//! - **ingest throughput** — encode → [`Daemon::handle_frame`] →
//!   [`Daemon::pump`] → decode for the whole chaos stream; the only
//!   timing-dependent numbers, quarantined under the JSON `timing` key so
//!   CI can strip them for invariance diffs;
//! - **reject accounting under overload** — a small queue and tenant
//!   quota offered more than they can hold, with *predicted* counter
//!   values checked against [`stochastic_hmd::AdmissionStats`] and its
//!   conservation law;
//! - **rolling upgrade** — the old daemon drains mid-stream, hands off,
//!   and the successor (restored serially *and* onto a worker pool)
//!   finishes the stream; zero committed queries lost and the final
//!   verdict checksum bit-identical to a never-upgraded reference;
//! - **hostile corpus** — every truncation and every single-bit flip of
//!   one frame of every wire kind must decode to a typed error.
//!
//! The `daemon_bench` binary writes `BENCH_8.json` at the repository
//! root; CI diffs serial vs 8-thread output with `threads`/`timing`
//! stripped.

use crate::chaos;
use shmd_workload::dataset::Dataset;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use stochastic_hmd::{
    decode_frame, encode_frame, AdmissionConfig, AdmissionStats, BaselineHmd, Daemon, ExecConfig,
    Frame, MonitoringService, RejectCode, ServeConfig, StateJournal, HANDOFF_FRAME_CAP,
};

/// Shards behind the daemon at every measurement point.
pub const DAEMON_SHARDS: usize = 4;

/// Batches the old instance keeps queued when the drain begins — the
/// in-flight work a zero-downtime upgrade must finish, not drop.
pub const DRAIN_QUEUE_AHEAD: usize = 3;

static JOURNAL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_journal_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "shmd-daemon-bench-{}-{}.journal",
        std::process::id(),
        JOURNAL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn serve_config(seed: u64, batch_size: usize, exec: ExecConfig) -> ServeConfig {
    ServeConfig::new(DAEMON_SHARDS)
        .with_seed(seed)
        .with_target_error_rate(0.2)
        .with_batch_size(batch_size)
        .with_exec(exec)
}

fn deploy_daemon(
    baseline: &BaselineHmd,
    seed: u64,
    batch_size: usize,
    exec: ExecConfig,
    config: AdmissionConfig,
) -> (Daemon, std::path::PathBuf) {
    let service = MonitoringService::supervised(
        baseline,
        chaos::supervision(seed, DAEMON_SHARDS),
        serve_config(seed, batch_size, exec),
    )
    .expect("the reference device calibrates at er = 0.2");
    let path = scratch_journal_path();
    let journal = StateJournal::create(&path).expect("journal creates");
    let daemon = Daemon::new(service, journal, config).expect("initial checkpoint appends");
    (daemon, path)
}

/// Decodes a reply frame, panicking on transport-level garbage — replies
/// come from our own daemon, so a decode failure is a bench bug.
fn reply(bytes: &[u8]) -> Frame {
    decode_frame(bytes, HANDOFF_FRAME_CAP)
        .expect("daemon replies are well-formed")
        .0
}

/// The never-upgraded ground truth over the chaos stream.
pub struct ReferenceRun {
    /// Final verdict checksum.
    pub checksum: u64,
    /// Stream position at the end.
    pub served: u64,
}

/// Serves the whole stream through a daemon (wire path, no upgrade).
pub fn reference_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    seed: u64,
    exec: ExecConfig,
) -> ReferenceRun {
    let batch_size = features.first().map_or(1, Vec::len);
    let (mut daemon, path) =
        deploy_daemon(baseline, seed, batch_size, exec, AdmissionConfig::default());
    for batch in features {
        let ack = daemon
            .handle_frame(&encode_frame(&Frame::SubmitBatch {
                tenant: 0,
                queries: batch.clone(),
            }))
            .expect("reference submissions decode");
        assert_eq!(reply(&ack), Frame::Ack, "reference submission rejected");
        daemon.pump_all().expect("journal lives");
    }
    let out = ReferenceRun {
        checksum: daemon.verdict_checksum(),
        served: daemon.service().served(),
    };
    let _ = std::fs::remove_file(&path);
    out
}

/// One rolling upgrade, measured.
#[derive(Clone, Debug)]
pub struct UpgradePoint {
    /// Batch index the drain began at.
    pub upgrade_batch: u64,
    /// Batches still queued on the old instance when the drain began
    /// (all of them must be served before hand-off).
    pub drained_batches: u64,
    /// Submissions rejected during the drain window (resubmitted to the
    /// successor — the measurable "gap" a client sees).
    pub drain_rejects: u64,
    /// Encoded hand-off frame size in bytes.
    pub handoff_bytes: u64,
    /// Final verdict checksum after the successor finishes the stream.
    pub checksum: u64,
    /// Queries committed across both instances.
    pub served: u64,
    /// Committed queries equal the reference's (zero loss) and the final
    /// checksum is bit-identical.
    pub identical: bool,
}

/// Runs the stream with a rolling upgrade at `upgrade_batch`: the old
/// daemon serves, keeps [`DRAIN_QUEUE_AHEAD`] batches queued when the
/// `Handoff` frame arrives, pumps dry while rejecting new admissions,
/// hands off, and the successor — restored on `exec` — finishes the
/// stream, starting with the submission the drain rejected.
pub fn upgraded_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    seed: u64,
    exec: ExecConfig,
    upgrade_batch: usize,
    reference: &ReferenceRun,
) -> UpgradePoint {
    let batch_size = features.first().map_or(1, Vec::len);
    let (mut old, old_path) = deploy_daemon(
        baseline,
        seed,
        batch_size,
        ExecConfig::serial(),
        AdmissionConfig::default(),
    );
    let submit = |batch: &Vec<Vec<f32>>| {
        encode_frame(&Frame::SubmitBatch {
            tenant: 0,
            queries: batch.clone(),
        })
    };

    // Phase 1: normal serving up to the upgrade point.
    let mut next = 0usize;
    while next < upgrade_batch.min(features.len()) {
        let ack = old
            .handle_frame(&submit(&features[next]))
            .expect("submission decodes");
        assert_eq!(reply(&ack), Frame::Ack);
        old.pump_all().expect("journal lives");
        next += 1;
    }

    // Phase 2: in-flight work exists when the upgrade order arrives.
    let queued_ahead = DRAIN_QUEUE_AHEAD.min(features.len() - next);
    for _ in 0..queued_ahead {
        let ack = old
            .handle_frame(&submit(&features[next]))
            .expect("submission decodes");
        assert_eq!(reply(&ack), Frame::Ack);
        next += 1;
    }
    let mut drain_rejects = 0u64;
    let first_handoff = old
        .handle_frame(&encode_frame(&Frame::Handoff))
        .expect("handoff decodes");
    if queued_ahead > 0 {
        assert!(
            matches!(
                reply(&first_handoff),
                Frame::Reject {
                    code: RejectCode::Draining,
                    ..
                }
            ),
            "handoff with queued work must report draining"
        );
    }
    // A client that keeps submitting during the drain is rejected — that
    // rejection is the visible upgrade gap, and the client resubmits to
    // the successor.
    if next < features.len() {
        let r = old
            .handle_frame(&submit(&features[next]))
            .expect("submission decodes");
        assert!(
            matches!(
                reply(&r),
                Frame::Reject {
                    code: RejectCode::Draining,
                    ..
                }
            ),
            "draining daemon must reject new admissions"
        );
        drain_rejects += 1;
    }
    old.pump_all().expect("journal lives");

    // Phase 3: hand-off and checksum-verified resume on `exec`.
    let handoff = old
        .handle_frame(&encode_frame(&Frame::Handoff))
        .expect("handoff decodes");
    assert!(
        matches!(reply(&handoff), Frame::HandoffState { .. }),
        "drained daemon must hand off"
    );
    let new_path = scratch_journal_path();
    let journal = StateJournal::create(&new_path).expect("journal creates");
    let mut new = Daemon::resume_from_handoff(
        &handoff,
        baseline,
        Some(chaos::supervision(seed, DAEMON_SHARDS)),
        exec,
        journal,
        AdmissionConfig::default(),
    )
    .expect("the hand-off restores and verifies");

    // Phase 4: the successor finishes the stream, starting with the
    // submission the drain turned away.
    while next < features.len() {
        let ack = new
            .handle_frame(&submit(&features[next]))
            .expect("submission decodes");
        assert_eq!(reply(&ack), Frame::Ack, "successor rejected a submission");
        new.pump_all().expect("journal lives");
        next += 1;
    }

    let point = UpgradePoint {
        upgrade_batch: upgrade_batch as u64,
        drained_batches: queued_ahead as u64,
        drain_rejects,
        handoff_bytes: handoff.len() as u64,
        checksum: new.verdict_checksum(),
        served: new.service().served(),
        identical: new.verdict_checksum() == reference.checksum
            && new.service().served() == reference.served,
    };
    let _ = std::fs::remove_file(&old_path);
    let _ = std::fs::remove_file(&new_path);
    point
}

/// Overload measurement: predicted vs observed admission counters.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// The stats the daemon reported.
    pub stats: AdmissionStats,
    /// Conservation law held.
    pub conserved: bool,
    /// Every counter matched its predicted value.
    pub predicted: bool,
}

/// Offers a small daemon more than its bounds admit — two tenants over
/// quota, a third into backpressure, an oversized frame, and garbage —
/// with every counter's value predicted in advance. No pumping: the
/// queue stays full, so the arithmetic is exact.
pub fn overload_run(baseline: &BaselineHmd, seed: u64, batch: &[Vec<f32>]) -> OverloadPoint {
    let n = batch.len() as u64; // 8 in the bench stream
    let config = AdmissionConfig::default()
        .with_max_queued_queries(batch.len() * 4)
        .with_tenant_quota(batch.len() * 2)
        .with_max_frame_bytes(1 << 16);
    let (mut daemon, path) =
        deploy_daemon(baseline, seed, batch.len(), ExecConfig::serial(), config);
    let submit = |tenant: u32| {
        encode_frame(&Frame::SubmitBatch {
            tenant,
            queries: batch.to_vec(),
        })
    };
    // Tenants 0 and 1: two admissions each (quota = 2 batches), then a
    // quota reject each. Queue is now exactly full (4 batches).
    for tenant in 0..2u32 {
        for _ in 0..2 {
            let r = daemon.handle_frame(&submit(tenant)).expect("decodes");
            assert_eq!(reply(&r), Frame::Ack);
        }
        let r = daemon.handle_frame(&submit(tenant)).expect("decodes");
        assert!(matches!(
            reply(&r),
            Frame::Reject {
                code: RejectCode::TenantQuota,
                ..
            }
        ));
    }
    // Tenant 2 is under quota but the queue is full: backpressure.
    let r = daemon.handle_frame(&submit(2)).expect("decodes");
    assert!(matches!(
        reply(&r),
        Frame::Reject {
            code: RejectCode::Backpressure,
            ..
        }
    ));
    // An oversized declaration bounces before allocation.
    let huge = encode_frame(&Frame::SubmitBatch {
        tenant: 3,
        queries: vec![vec![0.0; 1 << 15]],
    });
    let r = daemon.handle_frame(&huge).expect("size gate replies");
    assert!(matches!(
        reply(&r),
        Frame::Reject {
            code: RejectCode::Oversized,
            ..
        }
    ));
    // Garbage is a typed decode error, counted as malformed.
    assert!(daemon.handle_frame(b"definitely not a frame").is_err());

    let stats = daemon.stats();
    let expected = AdmissionStats {
        offered_frames: 9,
        admitted_frames: 4,
        admitted_queries: 4 * n,
        rejected_oversized: 1,
        rejected_backpressure: 1,
        rejected_quota: 2,
        rejected_draining: 0,
        rejected_shutdown: 0,
        malformed_frames: 1,
        control_frames: 0,
        deadline_degrades: 0,
    };
    let _ = std::fs::remove_file(&path);
    OverloadPoint {
        stats,
        conserved: stats.is_conserved(),
        predicted: stats == expected,
    }
}

/// Hostile-corpus measurement over the wire codec.
#[derive(Clone, Debug)]
pub struct HostilePoint {
    /// Frame kinds exercised.
    pub kinds: u64,
    /// Hostile inputs fed to the decoder.
    pub inputs: u64,
    /// Inputs that returned a typed error.
    pub typed_errors: u64,
    /// Inputs that decoded anyway (must be 0: frames are checksummed).
    pub survivors: u64,
}

/// Every truncation and every single-bit flip of one frame of every
/// kind. Exhaustive and deterministic — no sampling, no RNG.
pub fn hostile_run(features: &[Vec<Vec<f32>>]) -> HostilePoint {
    let sample = features.first().cloned().unwrap_or_default();
    let frames = vec![
        encode_frame(&Frame::SubmitBatch {
            tenant: 1,
            queries: sample,
        }),
        encode_frame(&Frame::Snapshot),
        encode_frame(&Frame::Retarget {
            target_error_rate: 0.15,
        }),
        encode_frame(&Frame::Checkpoint),
        encode_frame(&Frame::Handoff),
        encode_frame(&Frame::Shutdown),
        encode_frame(&Frame::Ack),
        encode_frame(&Frame::Verdicts {
            tenant: 1,
            verdicts: Vec::new(),
        }),
        encode_frame(&Frame::SnapshotText {
            json: "{\"queries\": 1}".to_string(),
        }),
        encode_frame(&Frame::Reject {
            code: RejectCode::Backpressure,
            queued: 1,
            cap: 1,
        }),
        encode_frame(&Frame::CheckpointBytes {
            bytes: vec![1, 2, 3, 4],
        }),
        encode_frame(&Frame::HandoffState {
            checkpoint: vec![5; 32],
            verdict_checksum: 7,
            served: 8,
            batches: 1,
        }),
        encode_frame(&Frame::ErrorReply {
            message: "x".to_string(),
        }),
    ];
    let mut inputs = 0u64;
    let mut typed_errors = 0u64;
    for frame in &frames {
        for cut in 0..frame.len() {
            inputs += 1;
            if decode_frame(&frame[..cut], HANDOFF_FRAME_CAP).is_err() {
                typed_errors += 1;
            }
        }
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                inputs += 1;
                if decode_frame(&bad, HANDOFF_FRAME_CAP).is_err() {
                    typed_errors += 1;
                }
            }
        }
    }
    HostilePoint {
        kinds: frames.len() as u64,
        inputs,
        typed_errors,
        survivors: inputs - typed_errors,
    }
}

/// Wall-clock throughput of the full wire round trip (the one
/// non-deterministic measurement; lives under the JSON `timing` key).
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Queries pushed through encode → admit → pump → decode.
    pub queries: u64,
    /// Elapsed milliseconds.
    pub elapsed_ms: f64,
    /// Queries per second.
    pub qps: f64,
}

/// Times the reference stream through the wire path on `exec`.
pub fn throughput_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    seed: u64,
    exec: ExecConfig,
) -> ThroughputPoint {
    let batch_size = features.first().map_or(1, Vec::len);
    let (mut daemon, path) =
        deploy_daemon(baseline, seed, batch_size, exec, AdmissionConfig::default());
    let frames: Vec<Vec<u8>> = features
        .iter()
        .map(|batch| {
            encode_frame(&Frame::SubmitBatch {
                tenant: 0,
                queries: batch.clone(),
            })
        })
        .collect();
    let start = Instant::now();
    let mut verdicts = 0u64;
    for frame in &frames {
        let ack = daemon.handle_frame(frame).expect("decodes");
        assert_eq!(reply(&ack), Frame::Ack);
        for out in daemon.pump_all().expect("journal lives") {
            if let Frame::Verdicts { verdicts: v, .. } = reply(&out) {
                verdicts += v.len() as u64;
            }
        }
    }
    let elapsed = start.elapsed();
    let _ = std::fs::remove_file(&path);
    let secs = elapsed.as_secs_f64().max(1e-9);
    ThroughputPoint {
        queries: verdicts,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: verdicts as f64 / secs,
    }
}

/// Everything `daemon_bench` measures.
pub struct DaemonBenchReport {
    /// The never-upgraded reference.
    pub reference: ReferenceRun,
    /// Upgrade on a serial successor.
    pub upgrade_serial: UpgradePoint,
    /// Upgrade on the worker-pool successor.
    pub upgrade_threaded: UpgradePoint,
    /// Overload accounting.
    pub overload: OverloadPoint,
    /// Hostile corpus.
    pub hostile: HostilePoint,
    /// Wire round-trip throughput.
    pub throughput: ThroughputPoint,
}

/// Runs every measurement over the chaos stream drawn from `dataset`.
pub fn measure(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    seed: u64,
    batch_size: usize,
    exec: &ExecConfig,
) -> DaemonBenchReport {
    let features = chaos::feature_stream(baseline, dataset, batch_size);
    let upgrade_batch = features.len() / 2;
    let reference = reference_run(baseline, &features, seed, ExecConfig::serial());
    let upgrade_serial = upgraded_run(
        baseline,
        &features,
        seed,
        ExecConfig::serial(),
        upgrade_batch,
        &reference,
    );
    let upgrade_threaded =
        upgraded_run(baseline, &features, seed, *exec, upgrade_batch, &reference);
    let overload = overload_run(baseline, seed, features.first().map_or(&[], Vec::as_slice));
    let hostile = hostile_run(&features);
    let throughput = throughput_run(baseline, &features, seed, *exec);
    DaemonBenchReport {
        reference,
        upgrade_serial,
        upgrade_threaded,
        overload,
        hostile,
        throughput,
    }
}

fn upgrade_json(p: &UpgradePoint) -> String {
    format!(
        "{{\"upgrade_batch\": {}, \"drained_batches\": {}, \"drain_rejects\": {}, \
         \"handoff_bytes\": {}, \"checksum\": \"{}\", \"served\": {}, \"identical\": {}}}",
        p.upgrade_batch,
        p.drained_batches,
        p.drain_rejects,
        p.handoff_bytes,
        p.checksum,
        p.served,
        p.identical,
    )
}

/// Renders the report as the hand-built JSON written to `BENCH_8.json`
/// (checksums as decimal strings: they exceed 2^53). Everything outside
/// `threads` and `timing` is deterministic at any thread count — CI
/// diffs two runs with those keys stripped.
pub fn render_json(r: &DaemonBenchReport, seed: u64, scale: &str, threads: usize) -> String {
    let s = &r.overload.stats;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"daemon\",\n");
    out.push_str("  \"unit\": \"wire_roundtrip\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"shards\": {DAEMON_SHARDS},\n"));
    out.push_str(&format!(
        "  \"reference\": {{\"checksum\": \"{}\", \"served\": {}}},\n",
        r.reference.checksum, r.reference.served
    ));
    out.push_str(&format!(
        "  \"upgrade_serial\": {},\n",
        upgrade_json(&r.upgrade_serial)
    ));
    out.push_str(&format!(
        "  \"upgrade_threaded\": {},\n",
        upgrade_json(&r.upgrade_threaded)
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"offered\": {}, \"admitted_frames\": {}, \"admitted_queries\": {}, \
         \"rejected_oversized\": {}, \"rejected_backpressure\": {}, \"rejected_quota\": {}, \
         \"malformed\": {}, \"conserved\": {}, \"predicted\": {}}},\n",
        s.offered_frames,
        s.admitted_frames,
        s.admitted_queries,
        s.rejected_oversized,
        s.rejected_backpressure,
        s.rejected_quota,
        s.malformed_frames,
        r.overload.conserved,
        r.overload.predicted,
    ));
    out.push_str(&format!(
        "  \"hostile\": {{\"kinds\": {}, \"inputs\": {}, \"typed_errors\": {}, \
         \"survivors\": {}}},\n",
        r.hostile.kinds, r.hostile.inputs, r.hostile.typed_errors, r.hostile.survivors
    ));
    out.push_str(&format!(
        "  \"timing\": {{\"queries\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}}}\n",
        r.throughput.queries, r.throughput.elapsed_ms, r.throughput.qps
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;

    fn fixture() -> (Dataset, BaselineHmd) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        (dataset, baseline)
    }

    #[test]
    fn upgrade_is_lossless_and_bit_identical_serial_and_threaded() {
        let (dataset, baseline) = fixture();
        let features = chaos::feature_stream(&baseline, &dataset, 8);
        let reference = reference_run(&baseline, &features, 21, ExecConfig::serial());
        for exec in [ExecConfig::serial(), ExecConfig::threads(4)] {
            let p = upgraded_run(
                &baseline,
                &features,
                21,
                exec,
                features.len() / 2,
                &reference,
            );
            assert!(p.identical, "upgraded run diverged: {p:?}");
            assert_eq!(p.served, reference.served, "queries lost");
            assert_eq!(p.drained_batches, DRAIN_QUEUE_AHEAD as u64);
            assert!(p.drain_rejects >= 1, "the drain gap must be visible");
            assert!(p.handoff_bytes > 0);
        }
    }

    #[test]
    fn overload_accounting_matches_prediction() {
        let (dataset, baseline) = fixture();
        let features = chaos::feature_stream(&baseline, &dataset, 8);
        let p = overload_run(&baseline, 21, &features[0]);
        assert!(p.conserved, "conservation broke: {:?}", p.stats);
        assert!(p.predicted, "counters diverged: {:?}", p.stats);
    }

    #[test]
    fn hostile_corpus_has_no_survivors() {
        let (dataset, baseline) = fixture();
        let features = chaos::feature_stream(&baseline, &dataset, 4);
        let p = hostile_run(&features);
        assert_eq!(p.survivors, 0, "{p:?}");
        assert_eq!(p.kinds, 13, "every frame kind is exercised");
        assert!(p.inputs > 1000);
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let (dataset, baseline) = fixture();
        let report = measure(&baseline, &dataset, 21, 8, &ExecConfig::threads(2));
        let doc = render_json(&report, 21, "fast", 2);
        assert!(doc.contains("\"bench\": \"daemon\""));
        assert!(doc.contains("\"identical\": true"));
        assert!(doc.contains("\"survivors\": 0"));
        assert!(doc.contains("\"predicted\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! Shared experiment setup: datasets and trained detectors.

use crate::cli::{Args, Scale};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::BaselineHmd;

/// The paper's selected operating point: a 10% multiplication error rate.
pub const OPERATING_ERROR_RATE: f64 = 0.1;

/// Generates the dataset for the chosen scale.
pub fn dataset(args: &Args) -> Dataset {
    let config = match args.scale {
        Scale::Fast => DatasetConfig::small(100),
        Scale::Medium => DatasetConfig::small(600),
        Scale::Paper => DatasetConfig::paper(),
    };
    Dataset::generate(&config, args.seed)
}

/// The training configuration for the chosen scale.
pub fn train_config(args: &Args) -> HmdTrainConfig {
    match args.scale {
        Scale::Fast => HmdTrainConfig::fast(),
        _ => HmdTrainConfig::paper(),
    }
}

/// Trains the victim baseline on fold `rotation`.
///
/// # Panics
///
/// Panics if training fails (cannot happen for generated datasets).
pub fn victim(dataset: &Dataset, rotation: usize, args: &Args) -> BaselineHmd {
    let split = dataset.three_fold_split(rotation);
    train_baseline(
        dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &train_config(args),
    )
    .expect("training on a generated dataset always succeeds")
}

/// Trains a victim baseline with an overridden hidden-layer width (other
/// hyper-parameters from the chosen scale). Used by the batched-serving
/// bench to measure a wider deployment alongside the standard fixture.
///
/// # Panics
///
/// Panics if training fails (cannot happen for generated datasets).
pub fn victim_with_hidden(
    dataset: &Dataset,
    rotation: usize,
    args: &Args,
    hidden: usize,
) -> BaselineHmd {
    let split = dataset.three_fold_split(rotation);
    let config = HmdTrainConfig {
        hidden,
        ..train_config(args)
    };
    train_baseline(
        dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &config,
    )
    .expect("training on a generated dataset always succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Args;

    #[test]
    fn fast_scale_is_small() {
        let args = Args::parse_from(["--fast".to_string()]);
        let d = dataset(&args);
        assert!(d.len() < 200);
    }

    #[test]
    fn victim_trains() {
        let args = Args::parse_from(["--fast".to_string()]);
        let d = dataset(&args);
        let v = victim(&d, 0, &args);
        assert_eq!(v.network().output_dim(), 1);
    }
}

//! Crash/restore durability measurement: kill -9 a supervised chaos run at
//! adversarial batch indices and prove the restored service resumes
//! bit-identically.
//!
//! Each measurement drives the exact chaos workload of [`crate::chaos`]
//! (seeded kills, thermal drift, one poison query per batch) through a
//! journaled deployment: a [`stochastic_hmd::checkpoint::StateJournal`]
//! receives a full [`stochastic_hmd::checkpoint::ServiceCheckpoint`] every
//! `cadence` batches and a `BatchCommit` before every batch's verdicts are
//! exposed. The process is then "killed" at a chosen batch — optionally
//! *mid-journal-append*, simulated by truncating the file inside the last
//! record — and recovery restores the newest checkpoint, replays the input
//! stream from its position, and compares everything against an
//! uninterrupted reference run:
//!
//! - every recomputed per-batch verdict checksum must match the journal's
//!   committed one (the replay really is the run that died);
//! - the replayed verdicts must equal the reference's, batch for batch;
//! - the final verdict checksum and timing-stripped telemetry must be
//!   bit-identical — restored serially *and* restored onto a worker pool.
//!
//! The `crash_restore_bench` binary sweeps kill points and writes
//! `BENCH_5.json` at the repository root.

use crate::chaos::{self, CHAOS_HORIZON, CHAOS_TAIL};
use shmd_workload::dataset::Dataset;
use std::sync::atomic::{AtomicU64, Ordering};
use stochastic_hmd::checkpoint::StateJournal;
use stochastic_hmd::exec::ExecConfig;
use stochastic_hmd::serve::{MonitoringService, ServeConfig, Verdict};
use stochastic_hmd::telemetry::TelemetrySnapshot;
use stochastic_hmd::BaselineHmd;

/// Shard count every durability point runs at. The adversarial axis here
/// is *where the process dies*, not the pool size — [`crate::chaos`]
/// already sweeps pool sizes.
pub const DURABILITY_SHARDS: usize = 4;

/// Default checkpoint cadence, in batches.
pub const DEFAULT_CADENCE: u64 = 8;

/// Bytes sliced off the journal tail to simulate a kill mid-append: small
/// enough to land inside the final commit record's frame, so recovery must
/// detect and discard a torn record rather than a cleanly absent one.
const TEAR_BYTES: u64 = 7;

/// An uninterrupted chaos run: the ground truth a restored service must
/// reproduce bit-for-bit.
pub struct ReferenceRun {
    /// Per-batch verdicts, in stream order.
    pub verdicts: Vec<Vec<Verdict>>,
    /// Final telemetry, timing stripped.
    pub snapshot: TelemetrySnapshot,
    /// Final verdict checksum.
    pub checksum: u64,
}

/// One kill point's measurement.
#[derive(Clone, Debug)]
pub struct DurabilityPoint {
    /// Batch index the process was killed after.
    pub kill_batch: u64,
    /// Whether the kill tore the journal mid-append (truncated tail).
    pub torn_tail: bool,
    /// Shards in the pool.
    pub shards: usize,
    /// Checkpoint cadence, in batches.
    pub cadence: u64,
    /// Batch index the recovered checkpoint resumes from.
    pub resume_batch: u64,
    /// Batch commits salvaged after that checkpoint.
    pub commits_recovered: u64,
    /// Bytes of torn tail the recovery discarded.
    pub torn_bytes: u64,
    /// Batches re-executed by the restored service (resume point through
    /// end of stream).
    pub replayed_batches: u64,
    /// Final verdict checksum of the serially restored run.
    pub checksum: u64,
    /// Every recomputed committed batch matched its journaled checksum
    /// and stream position.
    pub commits_match: bool,
    /// Serial restore reproduced the reference bit-for-bit (verdicts,
    /// checksum, timing-stripped telemetry).
    pub serial_identical: bool,
    /// Restore onto the configured worker pool likewise.
    pub threaded_identical: bool,
}

static JOURNAL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_journal_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "shmd-crash-restore-{}-{}.journal",
        std::process::id(),
        JOURNAL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn serve_config(shards: usize, seed: u64, batch_size: usize, exec: ExecConfig) -> ServeConfig {
    ServeConfig::new(shards)
        .with_seed(seed)
        .with_target_error_rate(0.2)
        .with_batch_size(batch_size)
        .with_exec(exec)
}

fn deploy(
    baseline: &BaselineHmd,
    shards: usize,
    seed: u64,
    batch_size: usize,
    exec: ExecConfig,
) -> MonitoringService {
    MonitoringService::supervised(
        baseline,
        chaos::supervision(seed, shards),
        serve_config(shards, seed, batch_size, exec),
    )
    .expect("the reference device calibrates at er = 0.2")
}

/// Runs the chaos workload uninterrupted, serially.
pub fn reference_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    shards: usize,
    seed: u64,
) -> ReferenceRun {
    let batch_size = features.first().map_or(1, Vec::len);
    let mut service = deploy(baseline, shards, seed, batch_size, ExecConfig::serial());
    let verdicts: Vec<Vec<Verdict>> = features
        .iter()
        .map(|batch| service.process_feature_batch(batch))
        .collect();
    ReferenceRun {
        verdicts,
        snapshot: service.snapshot().without_timing(),
        checksum: service.verdict_checksum(),
    }
}

/// The victim run: journaled serving up to and including `kill_batch`,
/// then the simulated kill -9 (drop the service; optionally tear the
/// journal's final record). Returns the journal path.
fn victim_run(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    shards: usize,
    seed: u64,
    cadence: u64,
    kill_batch: u64,
    torn_tail: bool,
) -> std::path::PathBuf {
    let batch_size = features.first().map_or(1, Vec::len);
    let mut service = deploy(baseline, shards, seed, batch_size, ExecConfig::serial());
    let path = scratch_journal_path();
    let mut journal = StateJournal::create(&path).expect("journal creates");
    for (b, batch) in features.iter().enumerate().take(kill_batch as usize + 1) {
        if (b as u64).is_multiple_of(cadence.max(1)) {
            journal
                .append_checkpoint(&service.checkpoint())
                .expect("checkpoint appends");
        }
        service
            .process_feature_batch_journaled(batch, &mut journal)
            .expect("commit appends");
    }
    drop(journal);
    drop(service); // the kill: in-memory state is gone
    if torn_tail {
        let bytes = std::fs::read(&path).expect("journal reads");
        let torn = bytes.len().saturating_sub(TEAR_BYTES as usize);
        std::fs::write(&path, &bytes[..torn]).expect("journal tears");
    }
    path
}

/// Recovers the journal and replays the rest of the stream on `exec`,
/// checking the replay against the journal's commits and the reference.
/// Returns `(commits_match, identical, resume_batch, commits, torn_bytes,
/// final_checksum)`.
#[allow(clippy::type_complexity)]
fn restore_and_replay(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    shards: usize,
    seed: u64,
    journal_path: &std::path::Path,
    reference: &ReferenceRun,
    exec: ExecConfig,
) -> (bool, bool, u64, u64, u64, u64) {
    let recovery = StateJournal::recover(journal_path).expect("journal recovers");
    let checkpoint = recovery.checkpoint.as_ref().expect("a checkpoint survived");
    let mut service = MonitoringService::restore(
        baseline,
        Some(chaos::supervision(seed, shards)),
        checkpoint,
        exec,
    )
    .expect("checkpoint restores");
    let resume_batch = checkpoint.batches;
    let mut commits_match = true;
    let mut identical = true;
    for (b, batch) in features.iter().enumerate().skip(resume_batch as usize) {
        let verdicts = service.process_feature_batch(batch);
        if verdicts != reference.verdicts[b] {
            identical = false;
        }
        if let Some(commit) = recovery
            .commits
            .iter()
            .find(|commit| commit.batch == b as u64)
        {
            if commit.checksum != service.verdict_checksum()
                || commit.stream_pos != service.served()
            {
                commits_match = false;
            }
        }
    }
    let snapshot = service.snapshot().without_timing();
    if snapshot != reference.snapshot || service.verdict_checksum() != reference.checksum {
        identical = false;
    }
    (
        commits_match,
        identical,
        resume_batch,
        recovery.commits.len() as u64,
        recovery.torn_bytes,
        service.verdict_checksum(),
    )
}

/// Measures one kill point: victim run, kill (optionally torn), then one
/// serial and one `exec`-pooled restore, both judged against `reference`.
#[allow(clippy::too_many_arguments)]
pub fn measure_point(
    baseline: &BaselineHmd,
    features: &[Vec<Vec<f32>>],
    seed: u64,
    cadence: u64,
    kill_batch: u64,
    torn_tail: bool,
    reference: &ReferenceRun,
    exec: &ExecConfig,
) -> DurabilityPoint {
    let shards = DURABILITY_SHARDS;
    let path = victim_run(
        baseline, features, shards, seed, cadence, kill_batch, torn_tail,
    );
    let (serial_commits, serial_identical, resume_batch, commits, torn_bytes, checksum) =
        restore_and_replay(
            baseline,
            features,
            shards,
            seed,
            &path,
            reference,
            ExecConfig::serial(),
        );
    let (threaded_commits, threaded_identical, ..) =
        restore_and_replay(baseline, features, shards, seed, &path, reference, *exec);
    let _ = std::fs::remove_file(&path);
    DurabilityPoint {
        kill_batch,
        torn_tail,
        shards,
        cadence,
        resume_batch,
        commits_recovered: commits,
        torn_bytes,
        replayed_batches: features.len() as u64 - resume_batch,
        checksum,
        commits_match: serial_commits && threaded_commits,
        serial_identical,
        threaded_identical,
    }
}

/// The adversarial kill schedule for a given cadence and stream length:
/// the very first batch, the batch right before a checkpoint, the batch
/// right after one, the middle of the chaos horizon, and the final batch.
/// Every other point tears the journal tail.
pub fn kill_schedule(cadence: u64, total_batches: u64) -> Vec<(u64, bool)> {
    let mut kills = vec![
        0,
        cadence.saturating_sub(1).min(total_batches - 1),
        cadence.min(total_batches - 1),
        (CHAOS_HORIZON / 2).min(total_batches - 1),
        total_batches - 1,
    ];
    kills.dedup();
    kills
        .into_iter()
        .enumerate()
        .map(|(i, kill)| (kill, i % 2 == 1))
        .collect()
}

/// Sweeps the kill schedule over a chaos stream drawn from `dataset`.
pub fn measure_sweep(
    baseline: &BaselineHmd,
    dataset: &Dataset,
    seed: u64,
    batch_size: usize,
    cadence: u64,
    exec: &ExecConfig,
) -> Vec<DurabilityPoint> {
    let features = chaos::feature_stream(baseline, dataset, batch_size);
    let reference = reference_run(baseline, &features, DURABILITY_SHARDS, seed);
    kill_schedule(cadence, features.len() as u64)
        .into_iter()
        .map(|(kill_batch, torn_tail)| {
            measure_point(
                baseline, &features, seed, cadence, kill_batch, torn_tail, &reference, exec,
            )
        })
        .collect()
}

/// Renders the sweep as the hand-built JSON written to `BENCH_5.json`
/// (checksums as decimal strings: they exceed 2^53).
pub fn render_json(points: &[DurabilityPoint], seed: u64, scale: &str, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"crash_restore\",\n");
    out.push_str("  \"unit\": \"bit_identical_resume\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"shards\": {DURABILITY_SHARDS},\n"));
    out.push_str(&format!(
        "  \"schedule\": \"{} chaos batches + {} clean; kill -9 at adversarial \
         batch indices, half with a torn journal tail\",\n",
        CHAOS_HORIZON, CHAOS_TAIL
    ));
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kill_batch\": {}, \"torn_tail\": {}, \"cadence\": {}, \
             \"resume_batch\": {}, \"commits_recovered\": {}, \"torn_bytes\": {}, \
             \"replayed_batches\": {}, \"checksum\": \"{}\", \"commits_match\": {}, \
             \"serial_identical\": {}, \"threaded_identical\": {}}}{}\n",
            p.kill_batch,
            p.torn_tail,
            p.cadence,
            p.resume_batch,
            p.commits_recovered,
            p.torn_bytes,
            p.replayed_batches,
            p.checksum,
            p.commits_match,
            p.serial_identical,
            p.threaded_identical,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use crate::Args;

    fn fixture() -> (Dataset, BaselineHmd) {
        let args = Args::parse_from(["--fast".to_string()]);
        let dataset = setup::dataset(&args);
        let baseline = setup::victim(&dataset, 0, &args);
        (dataset, baseline)
    }

    #[test]
    fn killed_and_restored_run_is_bit_identical() {
        let (dataset, baseline) = fixture();
        let features = chaos::feature_stream(&baseline, &dataset, 8);
        let reference = reference_run(&baseline, &features, DURABILITY_SHARDS, 11);
        let p = measure_point(
            &baseline,
            &features,
            11,
            DEFAULT_CADENCE,
            DEFAULT_CADENCE,
            false,
            &reference,
            &ExecConfig::threads(4),
        );
        assert!(p.commits_match, "replay diverged from journaled commits");
        assert!(p.serial_identical, "serial restore diverged from reference");
        assert!(
            p.threaded_identical,
            "threaded restore diverged from reference"
        );
        assert_eq!(p.resume_batch, DEFAULT_CADENCE);
        assert_eq!(p.checksum, reference.checksum);
    }

    #[test]
    fn torn_journal_tail_loses_only_the_uncommitted_batch() {
        let (dataset, baseline) = fixture();
        let features = chaos::feature_stream(&baseline, &dataset, 8);
        let reference = reference_run(&baseline, &features, DURABILITY_SHARDS, 3);
        let kill = DEFAULT_CADENCE + 2;
        let p = measure_point(
            &baseline,
            &features,
            3,
            DEFAULT_CADENCE,
            kill,
            true,
            &reference,
            &ExecConfig::threads(4),
        );
        assert!(p.torn_bytes > 0, "the tear must have discarded bytes");
        assert_eq!(
            p.commits_recovered,
            kill - p.resume_batch,
            "exactly the final commit is torn away"
        );
        assert!(p.serial_identical && p.threaded_identical && p.commits_match);
    }

    #[test]
    fn kill_schedule_covers_checkpoint_boundaries_and_tears() {
        let kills = kill_schedule(8, 40);
        let indices: Vec<u64> = kills.iter().map(|&(k, _)| k).collect();
        assert!(indices.contains(&0));
        assert!(indices.contains(&7));
        assert!(indices.contains(&8));
        assert!(indices.contains(&39));
        assert!(kills.iter().any(|&(_, torn)| torn), "some kills must tear");
        assert!(kills.iter().any(|&(_, torn)| !torn), "some must not");
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = DurabilityPoint {
            kill_batch: 8,
            torn_tail: true,
            shards: 4,
            cadence: 8,
            resume_batch: 8,
            commits_recovered: 0,
            torn_bytes: 7,
            replayed_batches: 32,
            checksum: u64::MAX,
            commits_match: true,
            serial_identical: true,
            threaded_identical: true,
        };
        let doc = render_json(&[p], 42, "fast", 8);
        assert!(doc.contains("\"bench\": \"crash_restore\""));
        assert!(doc.contains("\"torn_tail\": true"));
        assert!(doc.contains("\"checksum\": \"18446744073709551615\""));
        assert!(doc.contains("\"serial_identical\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

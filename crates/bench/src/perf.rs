//! Detector-throughput measurement: geometric-skip + scratch hot path vs
//! the legacy per-draw, allocating path.
//!
//! PR 2 rebuilt the inference hot path twice over: the fault injector
//! samples the gap to the next faulty multiplication from a geometric
//! distribution instead of drawing one Bernoulli per product, and the
//! quantised network runs monomorphised over the corruptor with reusable
//! [`InferenceScratch`] buffers instead of boxing through `dyn` and
//! allocating per layer. This module times both generations of the path on
//! the same trained detector so the speedup is recorded next to the code
//! that produced it (`BENCH_2.json` at the repository root, written by the
//! `bench_throughput` binary).
//!
//! Timing varies run to run; the *outputs* must not. Each measurement
//! folds the hot path's scores into a checksum that is bit-identical at
//! any thread count (per-task seeds are derived, never shared), so the
//! benchmark doubles as an end-to-end determinism check.

use shmd_ann::network::{InferenceScratch, QuantizedNetwork};
use shmd_volt::fault::{FaultInjector, FaultModel, PerDrawInjector};
use std::time::Instant;
use stochastic_hmd::exec::{derive_seed, parallel_map_n, ExecConfig};

/// Error rates the throughput benchmark sweeps: the exact datapath, two
/// practical operating points around the paper's selected er = 0.1, and a
/// deep-undervolt point where faults stop being rare.
pub const BENCH_ERROR_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.3];

/// One error rate's before/after measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPoint {
    /// Multiplication error rate the injectors were configured for.
    pub error_rate: f64,
    /// Queries timed per path.
    pub queries: usize,
    /// Legacy path: one Bernoulli draw per product, `dyn` dispatch,
    /// per-layer allocation. Queries per second.
    pub before_qps: f64,
    /// Hot path: geometric gap sampling, monomorphised corruptor,
    /// reusable scratch. Queries per second.
    pub after_qps: f64,
    /// Output checksum of the hot path, serial execution.
    pub checksum: u64,
    /// Hot-path queries per second when fanned across the worker pool.
    pub threaded_qps: f64,
    /// Whether the threaded checksum matched the serial one.
    pub thread_invariant: bool,
}

impl ThroughputPoint {
    /// `after_qps / before_qps`.
    pub fn speedup(&self) -> f64 {
        self.after_qps / self.before_qps
    }
}

fn fold_scores(acc: u64, out: &[shmd_fixed::Q16]) -> u64 {
    out.iter()
        .fold(acc, |a, q| a.rotate_left(7) ^ u64::from(q.to_bits() as u32))
}

/// Times `queries` inferences through the legacy per-draw, allocating
/// path. Returns queries per second.
fn time_before(q: &QuantizedNetwork, features: &[f32], er: f64, seed: u64, queries: usize) -> f64 {
    let model = FaultModel::from_error_rate(er).expect("valid benchmark error rate");
    let mut injector = PerDrawInjector::new(model, seed);
    for _ in 0..queries.min(64) {
        std::hint::black_box(q.infer(features, &mut injector));
    }
    let start = Instant::now();
    for _ in 0..queries {
        std::hint::black_box(q.infer(features, &mut injector));
    }
    queries as f64 / start.elapsed().as_secs_f64()
}

/// Times `queries` inferences through the geometric + scratch hot path.
/// Returns `(queries per second, output checksum)`.
fn time_after(
    q: &QuantizedNetwork,
    features: &[f32],
    er: f64,
    seed: u64,
    queries: usize,
) -> (f64, u64) {
    let model = FaultModel::from_error_rate(er).expect("valid benchmark error rate");
    let mut injector = FaultInjector::new(model, seed);
    let mut scratch = InferenceScratch::new();
    for _ in 0..queries.min(64) {
        std::hint::black_box(q.infer_into(features, &mut injector, &mut scratch));
    }
    // Re-seed so the checksum covers a known stream, independent of warmup.
    injector = FaultInjector::new(
        FaultModel::from_error_rate(er).expect("valid benchmark error rate"),
        seed,
    );
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..queries {
        let out = q.infer_into(features, &mut injector, &mut scratch);
        checksum = fold_scores(checksum, std::hint::black_box(out));
    }
    (queries as f64 / start.elapsed().as_secs_f64(), checksum)
}

/// Runs the hot path fanned over `exec`'s worker pool, one task per chunk
/// of queries with a derived seed, and returns `(qps, checksum)`. The
/// checksum folds per-task checksums in task order, so it is bit-identical
/// at any thread count.
fn time_threaded(
    q: &QuantizedNetwork,
    features: &[f32],
    er: f64,
    seed: u64,
    queries: usize,
    exec: &ExecConfig,
) -> (f64, u64) {
    // A fixed task count (not a multiple of the worker count) keeps the
    // per-task seeds — and therefore the checksum — identical whatever
    // pool executes the schedule.
    let tasks = 16;
    let per_task = queries.div_ceil(tasks);
    let start = Instant::now();
    let sums = parallel_map_n(exec, tasks, |task| {
        let model = FaultModel::from_error_rate(er).expect("valid benchmark error rate");
        let mut injector = FaultInjector::new(model, derive_seed(seed, &[task as u64]));
        let mut scratch = InferenceScratch::new();
        let mut checksum = 0u64;
        for _ in 0..per_task {
            let out = q.infer_into(features, &mut injector, &mut scratch);
            checksum = fold_scores(checksum, std::hint::black_box(out));
        }
        checksum
    });
    let qps = (per_task * tasks) as f64 / start.elapsed().as_secs_f64();
    let combined = sums.iter().fold(0u64, |a, &s| a.rotate_left(13) ^ s);
    (qps, combined)
}

/// Measures one error rate: legacy path, hot path, and the hot path under
/// `exec`, including the thread-invariance verdict on the checksums.
pub fn measure_point(
    q: &QuantizedNetwork,
    features: &[f32],
    er: f64,
    seed: u64,
    queries: usize,
    exec: &ExecConfig,
) -> ThroughputPoint {
    let before_qps = time_before(q, features, er, seed, queries);
    let (after_qps, checksum) = time_after(q, features, er, seed, queries);
    let (threaded_qps, threaded_sum) = time_threaded(q, features, er, seed, queries, exec);
    // The serial reference for the fan-out is the same chunked schedule on
    // one worker — identical seeds, identical order.
    let (_, serial_sum) = time_threaded(q, features, er, seed, queries, &ExecConfig::serial());
    ThroughputPoint {
        error_rate: er,
        queries,
        before_qps,
        after_qps,
        checksum,
        threaded_qps,
        thread_invariant: threaded_sum == serial_sum,
    }
}

/// Sweeps [`BENCH_ERROR_RATES`].
pub fn measure_sweep(
    q: &QuantizedNetwork,
    features: &[f32],
    seed: u64,
    queries: usize,
    exec: &ExecConfig,
) -> Vec<ThroughputPoint> {
    BENCH_ERROR_RATES
        .iter()
        .map(|&er| measure_point(q, features, er, seed, queries, exec))
        .collect()
}

/// Renders the sweep as the hand-built JSON written to `BENCH_2.json`.
///
/// The vendored `serde` is a no-op shim, so the document is formatted
/// here; all fields are plain numbers/booleans and the checksums are
/// decimal strings to stay integer-exact in any reader.
pub fn render_json(
    points: &[ThroughputPoint],
    seed: u64,
    scale: &str,
    threads: usize,
    mac_count: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"detector_throughput\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"mac_count\": {mac_count},\n"));
    out.push_str("  \"before\": \"per-draw Bernoulli RNG, dyn dispatch, per-layer allocation\",\n");
    out.push_str("  \"after\": \"geometric fault-gap sampling, monomorphised corruptor, reusable scratch\",\n");
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"error_rate\": {}, \"queries\": {}, \"before_qps\": {:.1}, \
             \"after_qps\": {:.1}, \"speedup\": {:.3}, \"threaded_qps\": {:.1}, \
             \"checksum\": \"{}\", \"thread_invariant\": {}}}{}\n",
            p.error_rate,
            p.queries,
            p.before_qps,
            p.after_qps,
            p.speedup(),
            p.threaded_qps,
            p.checksum,
            p.thread_invariant,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

    fn fixture() -> (QuantizedNetwork, Vec<f32>) {
        let dataset = Dataset::generate(&DatasetConfig::small(60), 17);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let features = victim.spec().extract(dataset.trace(0));
        (victim.quantized().clone(), features)
    }

    #[test]
    fn measurement_yields_finite_rates_and_thread_invariant_checksums() {
        let (q, features) = fixture();
        let p = measure_point(&q, &features, 0.1, 7, 300, &ExecConfig::threads(4));
        assert!(p.before_qps.is_finite() && p.before_qps > 0.0);
        assert!(p.after_qps.is_finite() && p.after_qps > 0.0);
        assert!(p.thread_invariant, "fan-out changed the detector output");
    }

    #[test]
    fn checksum_is_seed_deterministic() {
        let (q, features) = fixture();
        let (_, a) = time_after(&q, &features, 0.3, 5, 200);
        let (_, b) = time_after(&q, &features, 0.3, 5, 200);
        assert_eq!(a, b, "same seed must reproduce the same score stream");
        let (_, c) = time_after(&q, &features, 0.3, 6, 200);
        assert_ne!(a, c, "different seed must change the stream");
    }

    #[test]
    fn json_document_is_well_formed_enough_to_grep() {
        let p = ThroughputPoint {
            error_rate: 0.1,
            queries: 100,
            before_qps: 1000.0,
            after_qps: 2500.0,
            checksum: 42,
            threaded_qps: 2400.0,
            thread_invariant: true,
        };
        let doc = render_json(&[p], 42, "fast", 1, 66);
        assert!(doc.contains("\"speedup\": 2.500"));
        assert!(doc.contains("\"thread_invariant\": true"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! Criterion bench: detection latency of the datapaths (TAB-LAT support).
//!
//! Measures the float path, the quantised exact path, the undervolted
//! (fault-injected) path, and an RHMD-style multi-model detection, showing
//! that undervolting adds no meaningful latency while RHMD's switching
//! does.

use criterion::{criterion_group, criterion_main, Criterion};
use shmd_ann::network::InferenceScratch;
use shmd_volt::fault::{ExactDatapath, FaultInjector, FaultModel};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use std::hint::black_box;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::rhmd::{Rhmd, RhmdConstruction};
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn bench_inference(c: &mut Criterion) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 1);
    let split = dataset.three_fold_split(0);
    let victim = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("train");
    let q = victim.quantized();
    let features = victim.spec().extract(dataset.trace(0));

    let mut group = c.benchmark_group("inference");
    group.bench_function("float", |b| {
        b.iter(|| black_box(victim.network().forward(black_box(&features))))
    });
    group.bench_function("quantized_exact", |b| {
        let mut mac = ExactDatapath;
        b.iter(|| black_box(q.infer(black_box(&features), &mut mac)))
    });
    group.bench_function("quantized_er_0_1", |b| {
        let mut mac = FaultInjector::new(FaultModel::from_error_rate(0.1).unwrap(), 3);
        b.iter(|| black_box(q.infer(black_box(&features), &mut mac)))
    });
    group.bench_function("quantized_er_0_9", |b| {
        let mut mac = FaultInjector::new(FaultModel::from_error_rate(0.9).unwrap(), 3);
        b.iter(|| black_box(q.infer(black_box(&features), &mut mac)))
    });
    // The deployed hot path: monomorphised corruptor + reusable scratch,
    // no per-inference allocation.
    group.bench_function("quantized_exact_scratch", |b| {
        let mut mac = ExactDatapath;
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            black_box(q.infer_into(black_box(&features), &mut mac, &mut scratch));
        })
    });
    group.bench_function("quantized_er_0_1_scratch", |b| {
        let mut mac = FaultInjector::new(FaultModel::from_error_rate(0.1).unwrap(), 3);
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            black_box(q.infer_into(black_box(&features), &mut mac, &mut scratch));
        })
    });
    group.finish();

    let mut rhmd = Rhmd::train(
        &dataset,
        split.victim_training(),
        RhmdConstruction::TwoFeatures,
        &HmdTrainConfig::fast(),
        5,
    )
    .expect("train rhmd");
    let trace = dataset.trace(0);
    let mut group = c.benchmark_group("detection");
    group.bench_function("baseline_hmd", |b| {
        let mut v = victim.clone();
        b.iter(|| black_box(v.score(black_box(trace))))
    });
    group.bench_function("rhmd_2f", |b| {
        b.iter(|| black_box(rhmd.score(black_box(trace))))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);

//! Criterion bench: raw fault-injector throughput across error rates.
//!
//! Since PR 2 the no-fault path costs no RNG draw at all: the injector
//! samples the gap to the next faulty multiplication from a geometric
//! distribution and counts down in between, so paper-scale sweeps
//! (Figs. 2 & 8) spend RNG time proportional to the number of *faults*,
//! not the number of multiplications. The `per_draw` group keeps the old
//! one-Bernoulli-per-product implementation alive as the comparison
//! baseline (and as the statistical oracle in the test suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmd_volt::fault::{FaultInjector, FaultModel, PerDrawInjector};
use std::hint::black_box;

const ERROR_RATES: [f64; 5] = [0.0, 0.01, 0.1, 0.5, 0.9];

fn bench_geometric(c: &mut Criterion) {
    let mut group = c.benchmark_group("corrupt_product");
    for er in ERROR_RATES {
        group.bench_with_input(BenchmarkId::from_parameter(er), &er, |b, &er| {
            let mut injector = FaultInjector::new(FaultModel::from_error_rate(er).unwrap(), 11);
            let mut x = 0x0123_4567_89ab_cdefi64;
            b.iter(|| {
                x = x.rotate_left(1);
                black_box(injector.corrupt_product(black_box(x)))
            })
        });
    }
    group.finish();
}

fn bench_per_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("corrupt_product_per_draw");
    for er in ERROR_RATES {
        group.bench_with_input(BenchmarkId::from_parameter(er), &er, |b, &er| {
            let mut injector = PerDrawInjector::new(FaultModel::from_error_rate(er).unwrap(), 11);
            let mut x = 0x0123_4567_89ab_cdefi64;
            b.iter(|| {
                x = x.rotate_left(1);
                black_box(injector.corrupt_product(black_box(x)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_geometric, bench_per_draw);
criterion_main!(benches);

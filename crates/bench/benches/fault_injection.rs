//! Criterion bench: raw fault-injector throughput across error rates.
//!
//! The hot path (no fault) must stay a single RNG draw per product so that
//! paper-scale sweeps (Figs. 2 & 8) remain tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shmd_volt::fault::{FaultInjector, FaultModel};
use std::hint::black_box;

fn bench_fault_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("corrupt_product");
    for er in [0.0, 0.01, 0.1, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(er), &er, |b, &er| {
            let mut injector = FaultInjector::new(FaultModel::from_error_rate(er).unwrap(), 11);
            let mut x = 0x0123_4567_89ab_cdefi64;
            b.iter(|| {
                x = x.rotate_left(1);
                black_box(injector.corrupt_product(black_box(x)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_injection);
criterion_main!(benches);

//! Criterion bench: per-MAC RNG noise injection vs the plain datapath
//! (TAB-RNG support).
//!
//! On real hardware, undervolting noise is free while a TRNG/PRNG query per
//! MAC costs ≈62×/4× time. In simulation we can demonstrate the PRNG
//! direction directly: `NoisyMac` queries the RNG once per product.

use criterion::{criterion_group, criterion_main, Criterion};
use shmd_ann::mac::NoisyMac;
use shmd_volt::fault::ExactDatapath;
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use std::hint::black_box;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

fn bench_rng_overhead(c: &mut Criterion) {
    let dataset = Dataset::generate(&DatasetConfig::small(100), 1);
    let split = dataset.three_fold_split(0);
    let victim = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("train");
    let q = victim.quantized();
    let features = victim.spec().extract(dataset.trace(0));

    let mut group = c.benchmark_group("noise_source");
    group.bench_function("undervolting_equivalent_plain", |b| {
        let mut mac = ExactDatapath;
        b.iter(|| black_box(q.infer(black_box(&features), &mut mac)))
    });
    group.bench_function("prng_per_mac", |b| {
        let mut mac = NoisyMac::new(1 << 16, 7);
        b.iter(|| black_box(q.infer(black_box(&features), &mut mac)))
    });
    group.finish();
}

criterion_group!(benches, bench_rng_overhead);
criterion_main!(benches);

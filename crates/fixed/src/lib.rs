//! Q16.16 fixed-point arithmetic for the fault-injectable inference datapath.
//!
//! The Stochastic-HMD defense perturbs the *integer multiplier* of the CPU
//! core that runs detector inference. To expose that perturbation to the
//! neural-network code, inference runs over [`Q16`] fixed-point values whose
//! products are produced by a 64-bit multiplier. The raw 64-bit product
//! (format Q32.32) is the value the undervolting fault model corrupts, which
//! is what makes the bit-level fault distribution of the paper's Figure 1
//! physically meaningful here: a flip in product bit *k* changes the result
//! by `2^(k-32)`.
//!
//! # Example
//!
//! ```
//! use shmd_fixed::Q16;
//!
//! let a = Q16::from_f64(1.5);
//! let b = Q16::from_f64(-2.0);
//! assert_eq!((a * b).to_f64(), -3.0);
//!
//! // The raw product is what a fault injector corrupts:
//! let raw = Q16::raw_product(a, b);
//! assert_eq!(Q16::from_raw_product(raw), a * b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of fractional bits in a [`Q16`] value.
pub const FRAC_BITS: u32 = 16;

/// Number of fractional bits in a raw Q32.32 product.
pub const PRODUCT_FRAC_BITS: u32 = 32;

/// A signed Q16.16 fixed-point number stored in an `i32`.
///
/// The representable range is roughly `[-32768, 32768)` with a resolution of
/// `2^-16 ≈ 1.5e-5`, which comfortably covers neural-network weights and
/// activations after input normalisation.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Q16(i32);

impl Q16 {
    /// The value `0.0`.
    pub const ZERO: Q16 = Q16(0);
    /// The value `1.0`.
    pub const ONE: Q16 = Q16(1 << FRAC_BITS);
    /// The most positive representable value.
    pub const MAX: Q16 = Q16(i32::MAX);
    /// The most negative representable value.
    pub const MIN: Q16 = Q16(i32::MIN);

    /// Creates a value from its raw `i32` bit pattern (Q16.16).
    #[inline]
    pub const fn from_bits(bits: i32) -> Q16 {
        Q16(bits)
    }

    /// Returns the raw `i32` bit pattern (Q16.16).
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from an `f64`, saturating at the representable range.
    #[inline]
    pub fn from_f64(value: f64) -> Q16 {
        let scaled = value * f64::from(1i32 << FRAC_BITS);
        if scaled >= i32::MAX as f64 {
            Q16::MAX
        } else if scaled <= i32::MIN as f64 {
            Q16::MIN
        } else {
            Q16(scaled.round() as i32)
        }
    }

    /// Converts from an `f32`, saturating at the representable range.
    #[inline]
    pub fn from_f32(value: f32) -> Q16 {
        Q16::from_f64(f64::from(value))
    }

    /// Converts to an `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1i32 << FRAC_BITS)
    }

    /// Converts to an `f32` (may round).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Q16) -> Q16 {
        Q16(self.0.saturating_sub(rhs.0))
    }

    /// The raw 64-bit Q32.32 product of two Q16.16 values.
    ///
    /// This is the multiplier output that undervolting corrupts; feed it to a
    /// fault injector and reconstruct the Q16.16 result with
    /// [`Q16::from_raw_product`].
    #[inline]
    pub fn raw_product(a: Q16, b: Q16) -> i64 {
        i64::from(a.0) * i64::from(b.0)
    }

    /// Converts a raw Q32.32 product back to Q16.16, saturating.
    #[inline]
    pub fn from_raw_product(product: i64) -> Q16 {
        let shifted = product >> (PRODUCT_FRAC_BITS - FRAC_BITS);
        if shifted > i64::from(i32::MAX) {
            Q16::MAX
        } else if shifted < i64::from(i32::MIN) {
            Q16::MIN
        } else {
            Q16(shifted as i32)
        }
    }

    /// Multiplies through a caller-supplied 64-bit product transformation.
    ///
    /// `corrupt` receives the exact Q32.32 product and returns the (possibly
    /// faulty) product actually latched by the datapath. Passing the identity
    /// function makes this equivalent to `a * b`.
    #[inline]
    pub fn mul_with(a: Q16, b: Q16, corrupt: impl FnOnce(i64) -> i64) -> Q16 {
        Q16::from_raw_product(corrupt(Q16::raw_product(a, b)))
    }

    /// Returns the absolute value, saturating on `MIN`.
    #[inline]
    pub fn abs(self) -> Q16 {
        Q16(self.0.saturating_abs())
    }

    /// Returns `true` if the value is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamps the value into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Q16, hi: Q16) -> Q16 {
        assert!(lo <= hi, "Q16::clamp: lo must not exceed hi");
        Q16(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Debug for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q16({})", self.to_f64())
    }
}

impl fmt::Display for Q16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl From<i16> for Q16 {
    fn from(value: i16) -> Q16 {
        Q16(i32::from(value) << FRAC_BITS)
    }
}

impl Add for Q16 {
    type Output = Q16;
    #[inline]
    fn add(self, rhs: Q16) -> Q16 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Q16 {
    #[inline]
    fn add_assign(&mut self, rhs: Q16) {
        *self = *self + rhs;
    }
}

impl Sub for Q16 {
    type Output = Q16;
    #[inline]
    fn sub(self, rhs: Q16) -> Q16 {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Q16 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q16) {
        *self = *self - rhs;
    }
}

impl Mul for Q16 {
    type Output = Q16;
    #[inline]
    fn mul(self, rhs: Q16) -> Q16 {
        Q16::from_raw_product(Q16::raw_product(self, rhs))
    }
}

impl Div for Q16 {
    type Output = Q16;
    #[inline]
    fn div(self, rhs: Q16) -> Q16 {
        if rhs.0 == 0 {
            return if self.0 >= 0 { Q16::MAX } else { Q16::MIN };
        }
        let wide = (i64::from(self.0) << FRAC_BITS) / i64::from(rhs.0);
        if wide > i64::from(i32::MAX) {
            Q16::MAX
        } else if wide < i64::from(i32::MIN) {
            Q16::MIN
        } else {
            Q16(wide as i32)
        }
    }
}

impl Neg for Q16 {
    type Output = Q16;
    #[inline]
    fn neg(self) -> Q16 {
        Q16(self.0.saturating_neg())
    }
}

impl Sum for Q16 {
    fn sum<I: Iterator<Item = Q16>>(iter: I) -> Q16 {
        iter.fold(Q16::ZERO, Q16::saturating_add)
    }
}

/// A Q32.32 accumulator for dot products.
///
/// Dot products accumulate raw products in 64 bits to avoid intermediate
/// rounding; convert back with [`Accumulator::to_q16`].
///
/// # Example
///
/// ```
/// use shmd_fixed::{Accumulator, Q16};
///
/// let mut acc = Accumulator::new();
/// acc.mac(Q16::from_f64(0.5), Q16::from_f64(4.0), |p| p);
/// acc.mac(Q16::from_f64(1.0), Q16::from_f64(1.0), |p| p);
/// assert_eq!(acc.to_q16().to_f64(), 3.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Accumulator {
    sum: i64,
}

impl Accumulator {
    /// Creates an empty (zero) accumulator.
    #[inline]
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Adds the product of `a` and `b`, routing the raw Q32.32 product
    /// through `corrupt` (identity for an exact datapath).
    #[inline]
    pub fn mac(&mut self, a: Q16, b: Q16, corrupt: impl FnOnce(i64) -> i64) {
        self.sum = self.sum.saturating_add(corrupt(Q16::raw_product(a, b)));
    }

    /// Adds a Q16.16 value directly (e.g. a bias term).
    #[inline]
    pub fn add_q16(&mut self, value: Q16) {
        self.sum = self
            .sum
            .saturating_add(i64::from(value.to_bits()) << (PRODUCT_FRAC_BITS - FRAC_BITS));
    }

    /// Converts the Q32.32 sum back to Q16.16, saturating.
    #[inline]
    pub fn to_q16(self) -> Q16 {
        Q16::from_raw_product(self.sum)
    }

    /// Returns the raw Q32.32 running sum.
    #[inline]
    pub fn raw(self) -> i64 {
        self.sum
    }
}

/// `LANES` independent Q32.32 accumulators advanced in lock-step — the
/// structure-of-arrays counterpart of [`Accumulator`] for batched dot
/// products.
///
/// The batched inference path multiplies one shared weight against `LANES`
/// activations at a time. Keeping the running sums in a flat
/// `[i64; LANES]` array makes the fault-free MAC a straight-line
/// multiply/saturating-add loop over fixed-width lanes that the
/// autovectorizer can unroll, while each lane's arithmetic — including
/// saturation — stays bit-identical to a scalar [`Accumulator`] fed the
/// same (possibly corrupted) products in the same order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneAccumulator<const LANES: usize> {
    sums: [i64; LANES],
}

impl<const LANES: usize> LaneAccumulator<LANES> {
    /// Creates `LANES` empty (zero) accumulators.
    #[inline]
    pub fn new() -> LaneAccumulator<LANES> {
        LaneAccumulator { sums: [0; LANES] }
    }

    /// Adds `weight · xs[l]` to every lane, exactly (no corruption). This
    /// is the batched hot path: no per-lane branching, one shared weight
    /// broadcast across the lane array.
    #[inline]
    pub fn mac_exact(&mut self, weight: Q16, xs: &[Q16; LANES]) {
        for (s, &x) in self.sums.iter_mut().zip(xs) {
            *s = s.saturating_add(Q16::raw_product(weight, x));
        }
    }

    /// Accumulates a whole fault-free *span*: `weights[j] · plane[j·LANES + l]`
    /// for every `j` and lane, with no corruption and no per-product
    /// branching. `plane` is a lane-major slice of exactly
    /// `weights.len() × LANES` activations. This is the kernel the
    /// run-length batched MAC loop hands its spans to — the whole nest is
    /// visible to the optimizer at once, so it unrolls and vectorizes
    /// without bounds checks or callback indirection.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `plane` is not `weights.len() × LANES` long.
    #[inline]
    pub fn mac_span(&mut self, weights: &[Q16], plane: &[Q16]) {
        debug_assert_eq!(plane.len(), weights.len() * LANES);
        for (w, xs) in weights.iter().zip(plane.chunks_exact(LANES)) {
            for (s, &x) in self.sums.iter_mut().zip(xs) {
                *s = s.saturating_add(Q16::raw_product(*w, x));
            }
        }
    }

    /// [`mac_span`](Self::mac_span) with plain wrapping adds instead of
    /// saturating ones. Bit-identical to the saturating span — and to the
    /// exact linear sum — **only** when the caller has proved no partial
    /// sum can leave the `i64` range (e.g. via a per-row
    /// `Σ|wᵢ| · 2³¹` magnitude bound over the accumulator's starting
    /// value); with that proof the saturation clamps are dead code, and
    /// dropping them roughly halves the vectorized span cost. Callers
    /// without such a bound must use the saturating variant.
    #[inline]
    pub fn mac_span_wrapping(&mut self, weights: &[Q16], plane: &[Q16]) {
        debug_assert_eq!(plane.len(), weights.len() * LANES);
        for (w, xs) in weights.iter().zip(plane.chunks_exact(LANES)) {
            for (s, &x) in self.sums.iter_mut().zip(xs) {
                *s = s.wrapping_add(Q16::raw_product(*w, x));
            }
        }
    }

    /// Adds `weight · xs[l]` to every lane, routing the raw product of
    /// each lane whose bit is set in `due` through `fault` (identity for
    /// the rest). Called on the rare multiplications where at least one
    /// lane's fault countdown expired.
    #[inline]
    pub fn mac_faulty(
        &mut self,
        weight: Q16,
        xs: &[Q16; LANES],
        due: u64,
        mut fault: impl FnMut(usize, i64) -> i64,
    ) {
        for (l, (s, &x)) in self.sums.iter_mut().zip(xs).enumerate() {
            let mut p = Q16::raw_product(weight, x);
            if due & (1 << l) != 0 {
                p = fault(l, p);
            }
            *s = s.saturating_add(p);
        }
    }

    /// Adds a Q16.16 value (e.g. a shared bias term) to every lane.
    #[inline]
    pub fn add_q16(&mut self, value: Q16) {
        let raw = i64::from(value.to_bits()) << (PRODUCT_FRAC_BITS - FRAC_BITS);
        for l in 0..LANES {
            self.sums[l] = self.sums[l].saturating_add(raw);
        }
    }

    /// Converts lane `l`'s Q32.32 sum back to Q16.16, saturating.
    #[inline]
    pub fn to_q16(&self, lane: usize) -> Q16 {
        Q16::from_raw_product(self.sums[lane])
    }

    /// Returns lane `l`'s raw Q32.32 running sum.
    #[inline]
    pub fn raw(&self, lane: usize) -> i64 {
        self.sums[lane]
    }

    /// Replaces lane `l`'s raw Q32.32 running sum — the escape hatch for a
    /// caller that recomputed a lane sequentially (e.g. the batched MAC's
    /// exact replay when its no-overflow bound cannot be established).
    #[inline]
    pub fn set_raw(&mut self, lane: usize, raw: i64) {
        self.sums[lane] = raw;
    }

    /// Substitutes one product in lane `l`'s already-accumulated sum:
    /// removes `original` and adds `corrupted` in its place.
    ///
    /// Only valid when the caller has *proved* that no partial sum of the
    /// row — original, corrupted, or mid-patch — can leave the `i64`
    /// range (see the batched MAC's per-row magnitude bound); under that
    /// proof wrapping arithmetic never actually wraps and the patched sum
    /// is bit-identical to re-running the saturating accumulation with
    /// the corrupted product in sequence.
    #[inline]
    pub fn patch(&mut self, lane: usize, original: i64, corrupted: i64) {
        self.sums[lane] = self.sums[lane]
            .wrapping_sub(original)
            .wrapping_add(corrupted);
    }
}

impl<const LANES: usize> Default for LaneAccumulator<LANES> {
    fn default() -> LaneAccumulator<LANES> {
        LaneAccumulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(Q16::ZERO.to_f64(), 0.0);
        assert_eq!(Q16::ONE.to_f64(), 1.0);
        assert_eq!(Q16::from_f64(1.0), Q16::ONE);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q16::from_f64(1e9), Q16::MAX);
        assert_eq!(Q16::from_f64(-1e9), Q16::MIN);
    }

    #[test]
    fn exact_small_arithmetic() {
        let a = Q16::from_f64(2.25);
        let b = Q16::from_f64(0.5);
        assert_eq!((a + b).to_f64(), 2.75);
        assert_eq!((a - b).to_f64(), 1.75);
        assert_eq!((a * b).to_f64(), 1.125);
        assert_eq!((a / b).to_f64(), 4.5);
        assert_eq!((-a).to_f64(), -2.25);
    }

    #[test]
    fn division_by_zero_saturates() {
        assert_eq!(Q16::ONE / Q16::ZERO, Q16::MAX);
        assert_eq!(-Q16::ONE / Q16::ZERO, Q16::MIN);
    }

    #[test]
    fn raw_product_is_q32_32() {
        let a = Q16::from_f64(1.0);
        let b = Q16::from_f64(1.0);
        assert_eq!(Q16::raw_product(a, b), 1i64 << 32);
    }

    #[test]
    fn mul_with_identity_matches_mul() {
        let a = Q16::from_f64(-3.5);
        let b = Q16::from_f64(1.25);
        assert_eq!(Q16::mul_with(a, b, |p| p), a * b);
    }

    #[test]
    fn mul_with_fault_changes_result() {
        let a = Q16::from_f64(1.0);
        let b = Q16::from_f64(1.0);
        // Flip product bit 40 => adds 2^(40-32) = 256 to the result.
        let faulty = Q16::mul_with(a, b, |p| p ^ (1 << 40));
        assert_eq!(faulty.to_f64(), 257.0);
    }

    #[test]
    fn lsb_fault_is_invisible_after_truncation() {
        // Flips in the 8 LSBs of the product are far below Q16.16 resolution
        // (the >>16 shift discards bits 0..16 entirely).
        let a = Q16::from_f64(1.0);
        let b = Q16::from_f64(1.0);
        let faulty = Q16::mul_with(a, b, |p| p ^ 0b1111_1111);
        assert_eq!(faulty, a * b);
    }

    #[test]
    fn accumulator_dot_product() {
        let mut acc = Accumulator::new();
        for i in 1..=4i16 {
            acc.mac(Q16::from(i), Q16::from(i), |p| p);
        }
        assert_eq!(acc.to_q16().to_f64(), 30.0);
    }

    #[test]
    fn accumulator_bias() {
        let mut acc = Accumulator::new();
        acc.add_q16(Q16::from_f64(-1.5));
        assert_eq!(acc.to_q16().to_f64(), -1.5);
    }

    #[test]
    fn lane_accumulator_matches_scalar_lanes() {
        // Each lane of a LaneAccumulator must be bit-identical to a scalar
        // Accumulator fed the same products — including saturation, bias,
        // and corrupted lanes.
        const LANES: usize = 8;
        let mut lanes = LaneAccumulator::<LANES>::new();
        let mut scalars = [Accumulator::new(); LANES];
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for step in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let w = Q16::from_bits((x >> 16) as i32);
            let xs: [Q16; LANES] =
                std::array::from_fn(|l| Q16::from_bits((x.rotate_left(8 * l as u32) >> 24) as i32));
            // Every third step corrupts two lanes; the rest run exact.
            if step % 3 == 0 {
                let due = 0b0010_0100u64;
                lanes.mac_faulty(w, &xs, due, |l, p| p ^ (1 << (20 + l)));
                for (l, acc) in scalars.iter_mut().enumerate() {
                    if due & (1 << l) != 0 {
                        acc.mac(w, xs[l], |p| p ^ (1 << (20 + l)));
                    } else {
                        acc.mac(w, xs[l], |p| p);
                    }
                }
            } else {
                lanes.mac_exact(w, &xs);
                for (l, acc) in scalars.iter_mut().enumerate() {
                    acc.mac(w, xs[l], |p| p);
                }
            }
        }
        let bias = Q16::from_f64(-1.25);
        lanes.add_q16(bias);
        for (l, acc) in scalars.iter_mut().enumerate() {
            acc.add_q16(bias);
            assert_eq!(lanes.raw(l), acc.raw(), "lane {l} raw sum diverged");
            assert_eq!(lanes.to_q16(l), acc.to_q16(), "lane {l} result diverged");
        }
    }

    #[test]
    fn mac_span_matches_per_product_mac_exact() {
        // The span kernel is a pure batching of mac_exact: same products,
        // same saturating order, same lane sums — including near-saturation
        // values where the add order would show through any shortcut.
        const LANES: usize = 4;
        let mut x = 0x13198a2e_03707344u64;
        let mut draw = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Q16::from_bits((x >> 20) as i32)
        };
        let weights: Vec<Q16> = (0..37).map(|_| draw()).collect();
        let mut plane: Vec<Q16> = (0..37 * LANES).map(|_| draw()).collect();
        plane[5] = Q16::MAX; // push one lane toward saturation early
        let mut span = LaneAccumulator::<LANES>::new();
        span.mac_span(&weights, &plane);
        let mut per = LaneAccumulator::<LANES>::new();
        for (j, w) in weights.iter().enumerate() {
            let xs: &[Q16; LANES] = plane[j * LANES..(j + 1) * LANES].try_into().unwrap();
            per.mac_exact(*w, xs);
        }
        for l in 0..LANES {
            assert_eq!(span.raw(l), per.raw(l), "lane {l} diverged");
        }
        // An empty span is a no-op.
        let before = span;
        span.mac_span(&[], &[]);
        assert_eq!(span, before);
    }

    #[test]
    fn wrapping_span_matches_saturating_span_under_the_magnitude_bound() {
        // The wrapping fast path is only claimed bit-identical when
        // Σ|wⱼ|·2³¹ stays inside i64 — build operands that satisfy the
        // bound (everything the quantizer emits does) and check the two
        // kernels agree lane for lane.
        const LANES: usize = 8;
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut draw = |scale: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Q16::from_bits((x >> scale) as i32)
        };
        // |w| < 2^14 bits each, 61 of them: Σ|w|·2³¹ < 2^51 ≪ 2^63.
        let weights: Vec<Q16> = (0..61).map(|_| draw(50)).collect();
        let plane: Vec<Q16> = (0..61 * LANES).map(|_| draw(33)).collect();
        let bound: u128 = weights
            .iter()
            .map(|w| u128::from(w.to_bits().unsigned_abs()) << 31)
            .sum();
        assert!(bound <= i64::MAX as u128, "fixture violates its own bound");
        let mut saturating = LaneAccumulator::<LANES>::new();
        saturating.mac_span(&weights, &plane);
        let mut wrapping = LaneAccumulator::<LANES>::new();
        wrapping.mac_span_wrapping(&weights, &plane);
        assert_eq!(saturating, wrapping);
    }

    #[test]
    fn lane_accumulator_saturates_like_scalar() {
        let mut lanes = LaneAccumulator::<2>::new();
        let mut scalar = Accumulator::new();
        let big = Q16::MAX;
        for _ in 0..100_000 {
            lanes.mac_exact(big, &[big, big]);
            scalar.mac(big, big, |p| p);
        }
        assert_eq!(lanes.raw(0), scalar.raw());
        assert_eq!(lanes.raw(1), scalar.raw());
        assert_eq!(lanes.to_q16(0), Q16::MAX);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let v = Q16::from_f64(0.25);
        assert_eq!(format!("{v}"), "0.25");
        assert_eq!(format!("{v:?}"), "Q16(0.25)");
    }

    #[test]
    fn clamp_works() {
        let v = Q16::from_f64(5.0);
        assert_eq!(v.clamp(Q16::ZERO, Q16::ONE), Q16::ONE);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Q16::ONE.clamp(Q16::ONE, Q16::ZERO);
    }

    proptest! {
        #[test]
        fn round_trip_error_is_below_resolution(x in -30000.0f64..30000.0) {
            let q = Q16::from_f64(x);
            prop_assert!((q.to_f64() - x).abs() <= 1.0 / f64::from(1 << 15));
        }

        #[test]
        fn addition_is_commutative(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
            prop_assert_eq!(qa + qb, qb + qa);
        }

        #[test]
        fn multiplication_matches_float_within_tolerance(
            a in -100.0f64..100.0, b in -100.0f64..100.0
        ) {
            let q = Q16::from_f64(a) * Q16::from_f64(b);
            // Max error: operand rounding (|b|+|a|)*2^-17 plus product truncation.
            let tol = (a.abs() + b.abs() + 2.0) / f64::from(1 << 16);
            prop_assert!((q.to_f64() - a * b).abs() <= tol,
                "{} * {} = {} (expected {})", a, b, q.to_f64(), a * b);
        }

        #[test]
        fn negation_is_involutive(a in -30000.0f64..30000.0) {
            let q = Q16::from_f64(a);
            prop_assert_eq!(-(-q), q);
        }

        #[test]
        fn accumulator_matches_sequential_mul(
            xs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..20)
        ) {
            let mut acc = Accumulator::new();
            let mut expected = 0.0f64;
            for &(a, b) in &xs {
                let (qa, qb) = (Q16::from_f64(a), Q16::from_f64(b));
                acc.mac(qa, qb, |p| p);
                expected += qa.to_f64() * qb.to_f64();
            }
            prop_assert!((acc.to_q16().to_f64() - expected).abs() < 1e-3);
        }

        #[test]
        fn product_sign_bit_matches_sign(a in -30000.0f64..30000.0, b in -30000.0f64..30000.0) {
            let p = Q16::raw_product(Q16::from_f64(a), Q16::from_f64(b));
            if p != 0 {
                prop_assert_eq!(p < 0, (p >> 63) & 1 == 1);
            }
        }
    }
}

//! Structured fuzz harnesses for every byte decoder in the workspace.
//!
//! The repo's no-panic guarantee — hostile bytes decode to typed errors,
//! never a panic, never an allocation beyond the declared frame cap — is
//! enforced three ways: clippy deny-gates on the decoding modules, unit
//! tests on hand-built corruptions, and these harness binaries, which
//! generate *valid* artifacts and then mutate them exhaustively:
//!
//! - `fuzz_checkpoint` — [`stochastic_hmd::ServiceCheckpoint::decode`]
//! - `fuzz_telemetry` — [`stochastic_hmd::TelemetrySnapshot::from_json`]
//! - `fuzz_wire` — [`stochastic_hmd::decode_frame`]
//! - `fuzz_daemon` — the admission path ([`stochastic_hmd::Daemon::handle_frame`])
//!
//! Each binary runs under the vendored [`proptest`] RNG (deterministic,
//! seeded), applies every mutation family in [`mutate`] — truncations,
//! bit flips, length-field lies, and pure garbage — and exits non-zero
//! (by panicking) iff any input panics a decoder or breaks its stated
//! invariant. A clean exit *is* the fuzz verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proptest::collection::vec as vec_of;
use proptest::{Strategy, TestRunner};
use rand::Rng;
use shmd_volt::calibration::{Calibrator, DeviceProfile};
use shmd_workload::dataset::{Dataset, DatasetConfig};
use shmd_workload::features::FeatureSpec;
use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
use stochastic_hmd::{
    encode_frame, BaselineHmd, Frame, MonitoringService, RejectCode, ServeConfig,
};

/// Valid artifacts to mutate: a real service's checkpoint bytes,
/// telemetry JSON, and one wire frame of every kind.
pub struct Corpus {
    /// The trained baseline the service was deployed from (for harnesses
    /// that need to rebuild a service).
    pub baseline: BaselineHmd,
    /// Feature vectors matched to the baseline's input layer.
    pub features: Vec<Vec<f32>>,
    /// An encoded [`stochastic_hmd::ServiceCheckpoint`] with live state.
    pub checkpoint: Vec<u8>,
    /// The matching [`stochastic_hmd::TelemetrySnapshot`] JSON document.
    pub telemetry_json: String,
    /// One encoded frame of every wire kind.
    pub frames: Vec<Vec<u8>>,
}

/// Builds the corpus deterministically: tiny dataset, fast training, a
/// few served batches so counters, histograms, and checksums are
/// non-trivial.
pub fn corpus() -> Corpus {
    let dataset = Dataset::generate(&DatasetConfig::small(60), 93);
    let split = dataset.three_fold_split(0);
    let baseline = train_baseline(
        &dataset,
        split.victim_training(),
        FeatureSpec::frequency(),
        &HmdTrainConfig::fast(),
    )
    .expect("fuzz corpus training is infallible by construction");
    let curve = Calibrator::new()
        .with_step(2)
        .calibrate(&DeviceProfile::reference());
    let mut service =
        MonitoringService::deploy(&baseline, &curve, ServeConfig::new(2).with_seed(17))
            .expect("fuzz corpus service config is valid by construction");
    let spec = baseline.spec();
    let features: Vec<Vec<f32>> = (0..8)
        .map(|i| spec.extract(dataset.trace(i % dataset.len())))
        .collect();
    for _ in 0..3 {
        service.process_feature_batch(&features);
    }
    let verdicts = service.process_feature_batch(&features);
    let frames = vec![
        encode_frame(&Frame::SubmitBatch {
            tenant: 1,
            queries: features.clone(),
        }),
        encode_frame(&Frame::Snapshot),
        encode_frame(&Frame::Retarget {
            target_error_rate: 0.15,
        }),
        encode_frame(&Frame::Checkpoint),
        encode_frame(&Frame::Handoff),
        encode_frame(&Frame::Shutdown),
        encode_frame(&Frame::Ack),
        encode_frame(&Frame::Verdicts {
            tenant: 1,
            verdicts,
        }),
        encode_frame(&Frame::SnapshotText {
            json: service.snapshot().to_json(),
        }),
        encode_frame(&Frame::Reject {
            code: RejectCode::Backpressure,
            queued: 10,
            cap: 10,
        }),
        encode_frame(&Frame::CheckpointBytes {
            bytes: service.checkpoint().encode(),
        }),
        encode_frame(&Frame::HandoffState {
            checkpoint: service.checkpoint().encode(),
            verdict_checksum: service.verdict_checksum(),
            served: service.served(),
            batches: service.batches(),
        }),
        encode_frame(&Frame::ErrorReply {
            message: "fuzz".to_string(),
        }),
    ];
    Corpus {
        checkpoint: service.checkpoint().encode(),
        telemetry_json: service.snapshot().to_json(),
        frames,
        features,
        baseline,
    }
}

/// The mutation families every harness applies.
pub mod mutate {
    use super::*;

    /// Every strict prefix of `bytes` — the truncation family.
    pub fn truncations(bytes: &[u8]) -> impl Iterator<Item = Vec<u8>> + '_ {
        (0..bytes.len()).map(|cut| bytes[..cut].to_vec())
    }

    /// `n` single-bit flips at sampled positions.
    pub fn bit_flips(bytes: &[u8], rng: &mut TestRunner, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let mut out = bytes.to_vec();
                if !out.is_empty() {
                    let at = rng.gen_range(0..out.len());
                    out[at] ^= 1 << rng.gen_range(0..8u32);
                }
                out
            })
            .collect()
    }

    /// `n` length-field lies: a 4-byte window overwritten with an extreme
    /// little-endian value (huge, zero, or off-by-one-ish), the attack
    /// the "no allocation beyond the cap" guarantee exists for.
    pub fn length_lies(bytes: &[u8], rng: &mut TestRunner, n: usize) -> Vec<Vec<u8>> {
        const LIES: [u32; 6] = [u32::MAX, u32::MAX - 1, 0x7fff_ffff, 0, 1, 0x0001_0000];
        (0..n)
            .map(|_| {
                let mut out = bytes.to_vec();
                if out.len() >= 4 {
                    let at = rng.gen_range(0..=out.len() - 4);
                    let lie = LIES[rng.gen_range(0..LIES.len())];
                    out[at..at + 4].copy_from_slice(&lie.to_le_bytes());
                }
                out
            })
            .collect()
    }

    /// `n` buffers of pure garbage, lengths 0..max_len.
    pub fn garbage(rng: &mut TestRunner, n: usize, max_len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let len = rng.gen_range(0..max_len);
                vec_of(0u8..=255, len).sample(rng)
            })
            .collect()
    }

    /// The full hostile set for one artifact: truncations + flips + lies
    /// + garbage, `per_family` samples per random family.
    pub fn hostile_set(bytes: &[u8], rng: &mut TestRunner, per_family: usize) -> Vec<Vec<u8>> {
        let mut set: Vec<Vec<u8>> = truncations(bytes).collect();
        set.extend(bit_flips(bytes, rng, per_family));
        set.extend(length_lies(bytes, rng, per_family));
        set.extend(garbage(rng, per_family, bytes.len().max(32)));
        set
    }
}

/// Shared `--iters N --seed NAME` parsing for the harness binaries.
pub struct FuzzArgs {
    /// Outer iterations (each applies every mutation family once).
    pub iters: usize,
    /// Seed name handed to [`proptest::test_rng`].
    pub seed: String,
}

impl FuzzArgs {
    /// Parses from `std::env::args`, with defaults `--iters 20 --seed
    /// <binary name>`.
    pub fn parse(default_seed: &str) -> FuzzArgs {
        let mut iters = 20usize;
        let mut seed = default_seed.to_string();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--iters" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        iters = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next() {
                        seed = v;
                    }
                }
                other => panic!("unknown argument {other} (expected --iters N / --seed NAME)"),
            }
        }
        FuzzArgs { iters, seed }
    }

    /// The deterministic RNG for this run.
    pub fn rng(&self) -> TestRunner {
        proptest::test_rng(&self.seed)
    }
}

/// Tally printed by each harness; `panics` stays 0 or the process died.
#[derive(Default)]
pub struct Tally {
    /// Hostile inputs fed to the decoder.
    pub inputs: u64,
    /// Inputs the decoder rejected with a typed error.
    pub rejected: u64,
    /// Inputs that (legitimately) still decoded — possible only for
    /// formats without whole-artifact checksums, e.g. JSON mutations
    /// that happen to stay well-formed.
    pub accepted: u64,
}

impl Tally {
    /// Records one decoder outcome.
    pub fn record(&mut self, rejected: bool) {
        self.inputs += 1;
        if rejected {
            self.rejected += 1;
        } else {
            self.accepted += 1;
        }
    }

    /// One-line summary for the harness to print.
    pub fn summary(&self, what: &str) -> String {
        format!(
            "{what}: {} hostile inputs, {} rejected typed, {} decoded, 0 panics",
            self.inputs, self.rejected, self.accepted
        )
    }
}

//! Fuzzes the admission path: hostile bytes, oversized frames, and
//! random-width submissions stream through `Daemon::handle_frame` and
//! `pump`. Invariants: no panic for any input, the admission accounting
//! stays exactly conserved, and wrong-width queries cost per-query
//! rejections, never the daemon.

use proptest::collection::vec as vec_of;
use proptest::Strategy;
use rand::Rng;
use shmd_fuzz::{corpus, mutate, FuzzArgs, Tally};
use stochastic_hmd::{
    encode_frame, AdmissionConfig, Daemon, Frame, MonitoringService, StateJournal,
};

fn main() {
    let args = FuzzArgs::parse("fuzz_daemon");
    let mut rng = args.rng();
    let corpus = corpus();
    let journal_path =
        std::env::temp_dir().join(format!("shmd-fuzz-daemon-{}.journal", std::process::id()));
    let service = MonitoringService::restore(
        &corpus.baseline,
        None,
        &stochastic_hmd::ServiceCheckpoint::decode(&corpus.checkpoint)
            .expect("corpus checkpoint decodes"),
        stochastic_hmd::ExecConfig::serial(),
    )
    .expect("corpus checkpoint restores");
    let journal = StateJournal::create(&journal_path).expect("scratch journal");
    let config = AdmissionConfig::default()
        .with_max_queued_queries(64)
        .with_tenant_quota(32)
        .with_max_frame_bytes(1 << 16);
    let mut daemon = Daemon::new(service, journal, config).expect("daemon deploys");

    let mut tally = Tally::default();
    for _ in 0..args.iters {
        // Hostile bytes: mutations of every frame kind plus garbage.
        for frame in &corpus.frames {
            for bad in mutate::hostile_set(frame, &mut rng, 8) {
                // A typed decode error counts as rejected; an Ok is a
                // well-formed reply frame (e.g. Reject for an oversized
                // declaration) and counts as handled.
                tally.record(daemon.handle_frame(&bad).is_err());
                assert!(
                    daemon.stats().is_conserved(),
                    "accounting leaked a frame: {:?}",
                    daemon.stats()
                );
            }
        }
        // Random-width submissions: some match the model, most don't;
        // every one must come back as a verdict or an accounted reject.
        let widths = vec_of(0usize..80, 4).sample(&mut rng);
        let queries: Vec<Vec<f32>> = widths
            .iter()
            .map(|&w| (0..w).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let frame = encode_frame(&Frame::SubmitBatch {
            tenant: rng.gen_range(0..4u32),
            queries,
        });
        tally.record(daemon.handle_frame(&frame).is_err());
        daemon
            .pump_all()
            .expect("pump never fails on a live journal");
        assert!(daemon.stats().is_conserved());
    }
    let stats = daemon.stats();
    assert!(stats.is_conserved(), "final accounting broken: {stats:?}");
    let _ = std::fs::remove_file(&journal_path);
    println!("{}", tally.summary("daemon"));
    println!(
        "daemon accounting: offered {} admitted {} oversized {} malformed {} conserved true",
        stats.offered_frames,
        stats.admitted_frames,
        stats.rejected_oversized,
        stats.malformed_frames
    );
}

//! Fuzzes `TelemetrySnapshot::from_json` with mutations of a real
//! snapshot document plus pure garbage. JSON has no whole-document
//! checksum, so a mutation may legitimately still parse — the invariant
//! here is "typed error or valid snapshot, never a panic".

use shmd_fuzz::{corpus, mutate, FuzzArgs, Tally};
use stochastic_hmd::TelemetrySnapshot;

fn main() {
    let args = FuzzArgs::parse("fuzz_telemetry");
    let mut rng = args.rng();
    let corpus = corpus();
    assert!(
        TelemetrySnapshot::from_json(&corpus.telemetry_json).is_ok(),
        "corpus telemetry does not parse"
    );
    let json = corpus.telemetry_json.as_bytes();
    let mut tally = Tally::default();
    for _ in 0..args.iters {
        for bad in mutate::hostile_set(json, &mut rng, 64) {
            // Mutated documents are often invalid UTF-8; both the
            // conversion and the parse must stay typed.
            match String::from_utf8(bad) {
                Ok(text) => tally.record(TelemetrySnapshot::from_json(&text).is_err()),
                Err(_) => tally.record(true),
            }
        }
    }
    println!("{}", tally.summary("telemetry"));
}

//! Fuzzes `decode_frame` with truncations, bit flips, length-field lies,
//! and garbage derived from one valid frame of *every* wire kind. Frames
//! are whole-frame checksummed, so every mutation must fail typed; the
//! frame cap bounds allocation no matter what the length fields claim.

use shmd_fuzz::{corpus, mutate, FuzzArgs, Tally};
use stochastic_hmd::{decode_frame, DEFAULT_MAX_FRAME_BYTES};

fn main() {
    let args = FuzzArgs::parse("fuzz_wire");
    let mut rng = args.rng();
    let corpus = corpus();
    // Use a cap that admits the corpus frames (the HandoffState frame
    // carries a whole checkpoint) so mutations exercise payload parsing,
    // not just the size gate.
    let cap = DEFAULT_MAX_FRAME_BYTES.max(1 << 26);
    for frame in &corpus.frames {
        assert!(
            decode_frame(frame, cap).is_ok(),
            "corpus frame does not decode"
        );
    }
    let mut tally = Tally::default();
    for _ in 0..args.iters {
        for frame in &corpus.frames {
            for bad in mutate::hostile_set(frame, &mut rng, 24) {
                match decode_frame(&bad, cap) {
                    Err(_) => tally.record(true),
                    Ok(_) if &bad == frame => tally.record(false),
                    Ok(_) => panic!("mutated frame ({} bytes) decoded", bad.len()),
                }
            }
        }
    }
    println!("{}", tally.summary("wire"));
}

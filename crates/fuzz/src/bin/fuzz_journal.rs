//! Fuzzes `StateJournal::recover` with torn tails, bit flips,
//! length-field lies, garbage, and interleaved-append splices derived
//! from real write-ahead journals. Recovery must never panic: every
//! hostile file salvages to a `JournalRecovery` whose commits were all
//! genuinely appended by some writer, in append order — and the pristine
//! journal's recovered checkpoint must replay the remaining batches to
//! the exact checksum of its final commit.

use rand::Rng;
use shmd_fuzz::{corpus, mutate, FuzzArgs, Tally};
use shmd_volt::calibration::{Calibrator, DeviceProfile};
use stochastic_hmd::{BatchCommit, ExecConfig, MonitoringService, ServeConfig, StateJournal};

/// Batches journaled before the checkpoint record.
const HEAD_BATCHES: u64 = 3;
/// Batches journaled after it.
const TAIL_BATCHES: u64 = 3;

/// Serves `HEAD_BATCHES + TAIL_BATCHES` batches through a real service,
/// journaling a commit per batch and a full checkpoint in the middle,
/// exactly as the daemon's crash-safety path does. Returns the journal
/// bytes and every commit in append order.
fn build_journal(
    corpus: &shmd_fuzz::Corpus,
    path: &std::path::Path,
    seed: u64,
) -> (Vec<u8>, Vec<BatchCommit>) {
    let curve = Calibrator::new()
        .with_step(2)
        .calibrate(&DeviceProfile::reference());
    let mut service = MonitoringService::deploy(
        &corpus.baseline,
        &curve,
        ServeConfig::new(2).with_seed(seed),
    )
    .expect("fuzz journal service config is valid by construction");
    let mut journal = StateJournal::create(path).expect("create journal");
    let mut commits = Vec::new();
    for batch in 0..HEAD_BATCHES + TAIL_BATCHES {
        service.process_feature_batch(&corpus.features);
        let commit = BatchCommit {
            batch,
            stream_pos: service.served(),
            checksum: service.verdict_checksum(),
        };
        journal.append_commit(commit).expect("append commit");
        commits.push(commit);
        if batch + 1 == HEAD_BATCHES {
            journal
                .append_checkpoint(&service.checkpoint())
                .expect("append checkpoint");
        }
    }
    drop(journal);
    let bytes = std::fs::read(path).expect("read journal back");
    (bytes, commits)
}

/// Asserts the recovery invariant for one (possibly hostile) journal
/// file: every salvaged commit was genuinely appended, and they appear
/// in an order consistent with the writers' append orders (`appended` is
/// writer A's commits followed by writer B's; a splice yields an A-run
/// followed by a B-run, a plain corruption yields an A-prefix — both are
/// in-order subsequences; invented or reordered records are neither).
fn assert_consistent(recovered: &[BatchCommit], appended: &[BatchCommit], what: &str) {
    let mut cursor = 0usize;
    for commit in recovered {
        match appended[cursor..].iter().position(|c| c == commit) {
            Some(at) => cursor += at + 1,
            None => panic!(
                "{what}: recovered commit {commit:?} was never appended \
                 (or is out of append order): {recovered:?}"
            ),
        }
    }
}

fn main() {
    let args = FuzzArgs::parse("fuzz_journal");
    let mut rng = args.rng();
    let corpus = corpus();
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let journal_path = dir.join(format!("shmd-fuzz-journal-{tag}-a.wal"));
    let other_path = dir.join(format!("shmd-fuzz-journal-{tag}-b.wal"));
    let mutant_path = dir.join(format!("shmd-fuzz-journal-{tag}-mutant.wal"));

    let (bytes, commits) = build_journal(&corpus, &journal_path, 21);
    // A second, differently-seeded journal supplies the foreign bytes for
    // interleaved-append splices (two writers racing one log file).
    let (other_bytes, other_commits) = build_journal(&corpus, &other_path, 22);
    let mut union = commits.clone();
    union.extend_from_slice(&other_commits);

    // The pristine artifact must recover fully: checkpoint present, the
    // post-checkpoint commits intact, nothing torn — and the recovered
    // checkpoint must replay the journaled tail to the final commit's
    // exact checksum (the crash-recovery contract, end to end).
    let pristine = StateJournal::recover(&journal_path).expect("pristine recover is io-clean");
    assert_eq!(
        pristine.torn_bytes, 0,
        "pristine journal reports torn bytes"
    );
    let checkpoint = pristine
        .checkpoint
        .as_ref()
        .expect("pristine journal holds its checkpoint");
    assert_eq!(
        pristine.commits.len() as u64,
        TAIL_BATCHES,
        "checkpoint record must clear the earlier commits"
    );
    let mut replayed =
        MonitoringService::restore(&corpus.baseline, None, checkpoint, ExecConfig::serial())
            .expect("pristine checkpoint restores");
    for _ in 0..TAIL_BATCHES {
        replayed.process_feature_batch(&corpus.features);
    }
    let last = pristine.commits.last().expect("tail commits exist");
    assert_eq!(
        replayed.verdict_checksum(),
        last.checksum,
        "recovered prefix must replay to the final commit's checksum"
    );
    assert_eq!(replayed.served(), last.stream_pos);

    let mut tally = Tally::default();
    for _ in 0..args.iters {
        let mut hostile = mutate::hostile_set(&bytes, &mut rng, 64);
        // Interleaved appends: a foreign journal's bytes spliced into
        // this one at random cut points, as if two writers raced the
        // same log file.
        for _ in 0..16 {
            let cut_a = rng.gen_range(0..bytes.len() + 1);
            let cut_b = rng.gen_range(0..other_bytes.len() + 1);
            let mut spliced = bytes[..cut_a].to_vec();
            spliced.extend_from_slice(&other_bytes[cut_b..]);
            hostile.push(spliced);
        }
        for bad in hostile {
            std::fs::write(&mutant_path, &bad).expect("write mutant journal");
            // recover() must salvage *something* from any byte soup —
            // never panic, never misread: whatever commits survive must
            // all have been genuinely appended, in append order.
            let recovery = StateJournal::recover(&mutant_path).expect("recover is io-clean");
            assert!(
                recovery.torn_bytes <= bad.len() as u64,
                "torn bytes exceed the file"
            );
            assert_consistent(&recovery.commits, &union, "mutant");
            let salvaged_all = recovery.torn_bytes == 0
                && recovery.checkpoint.is_some()
                && recovery.commits.len() as u64 == TAIL_BATCHES;
            tally.record(!salvaged_all);
        }
    }
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&other_path);
    let _ = std::fs::remove_file(&mutant_path);
    println!("{}", tally.summary("journal"));
}

//! Fuzzes `ServiceCheckpoint::decode` with truncations, bit flips,
//! length-field lies, and garbage derived from a real checkpoint. Every
//! hostile input must return a typed `CheckpointError`; any panic kills
//! the process, which is the failure signal.

use shmd_fuzz::{corpus, mutate, FuzzArgs, Tally};
use stochastic_hmd::ServiceCheckpoint;

fn main() {
    let args = FuzzArgs::parse("fuzz_checkpoint");
    let mut rng = args.rng();
    let corpus = corpus();
    // The pristine artifact must round-trip: the harness is fuzzing a
    // working decoder, not one that rejects everything.
    assert!(
        ServiceCheckpoint::decode(&corpus.checkpoint).is_ok(),
        "corpus checkpoint does not decode"
    );
    let mut tally = Tally::default();
    for _ in 0..args.iters {
        for bad in mutate::hostile_set(&corpus.checkpoint, &mut rng, 64) {
            // Checkpoints are whole-artifact checksummed: every mutation
            // of a valid artifact must fail typed (a truncation to the
            // empty prefix included).
            match ServiceCheckpoint::decode(&bad) {
                Err(_) => tally.record(true),
                Ok(_) if bad == corpus.checkpoint => tally.record(false),
                Ok(_) => panic!("mutated checkpoint ({} bytes) decoded", bad.len()),
            }
        }
    }
    println!("{}", tally.summary("checkpoint"));
}

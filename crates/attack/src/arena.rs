//! The denoising attacker's cost curve against a live stochastic oracle.
//!
//! The paper's §IX names the stochastic defense's own limitation: an
//! attacker who repeat-queries the oracle can average the randomised
//! boundary back into focus. This module makes that cost explicit. The
//! attacker climbs a ladder of queries-per-sample, majority-voting the
//! oracle's labels at each rung ([`crate::adaptive`]), until the denoised
//! proxy agrees with a clean reference detector often enough — and the
//! search records what every rung cost in victim queries, because each
//! query is an execution of the sample on the victim machine and the
//! defender's practical deterrent is exactly that bill.
//!
//! The oracle is a [`Detector`], so a bare [`StochasticHmd`] and a live
//! `stochastic_hmd::arena::ArenaOracle` (the full serving stack, re-query
//! counter included) plug in interchangeably; `arena_bench` sweeps the
//! curve across delivered error rates to show the paper's implied
//! monotone cost curve end to end.
//!
//! [`StochasticHmd`]: stochastic_hmd::stochastic::StochasticHmd

use crate::adaptive::{denoised_reverse_engineer, query_cost};
use crate::reverse::{effectiveness, ReverseConfig, ReverseError};
use shmd_workload::dataset::Dataset;
use stochastic_hmd::detector::Detector;

/// Default ladder of queries-per-sample the cost-curve search climbs.
/// Odd rungs only (majority votes never tie), roughly geometric so the
/// search spans two orders of magnitude of attacker budget in four runs.
pub const DEFAULT_QUERY_LADDER: [usize; 4] = [1, 3, 9, 25];

/// One rung of the denoising cost curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DenoisePoint {
    /// Repeat queries per training sample at this rung.
    pub queries_per_sample: usize,
    /// Victim queries this rung spent (`samples × queries_per_sample`).
    pub query_cost: usize,
    /// Agreement of the denoised proxy with the clean reference labels
    /// on the held-out test fold; `0.0` when the proxy never converged
    /// (the oracle answered every query identically).
    pub agreement: f64,
}

/// The denoising attacker's measured cost curve against one oracle.
#[derive(Clone, Debug, PartialEq)]
pub struct DenoiseCurve {
    /// Agreement the attacker was trying to reach.
    pub target_agreement: f64,
    /// Every rung climbed, in ladder order. The search stops at the
    /// first rung that reaches the target, so a cheap oracle shows a
    /// short curve.
    pub points: Vec<DenoisePoint>,
    /// The first ladder rung whose proxy reached the target agreement;
    /// `None` when the ladder saturated without reaching it (the oracle
    /// defeated this attacker budget).
    pub required: Option<usize>,
}

impl DenoiseCurve {
    /// The required queries-per-sample, with ladder saturation mapped to
    /// `usize::MAX` so cost curves stay comparable (and monotonicity
    /// checks treat "never reached" as the most expensive outcome).
    pub fn required_or_saturated(&self) -> usize {
        self.required.unwrap_or(usize::MAX)
    }

    /// Victim queries the whole search spent, every rung included —
    /// the honest attacker bill, not just the winning rung's cost.
    pub fn total_query_cost(&self) -> usize {
        self.points.iter().map(|p| p.query_cost).sum()
    }
}

/// Climbs the queries-per-sample `ladder` against `oracle`, stopping at
/// the first rung whose denoised proxy agrees with `reference` on at
/// least `target_agreement` of the test fold.
///
/// `oracle` answers the attacker's (repeat) training queries — the
/// stochastic victim being attacked. `reference` supplies the clean
/// labels the attacker is trying to recover (the deterministic baseline
/// the defense was deployed from); agreement against it measures how much
/// of the boundary the voting actually un-blurred. A rung whose oracle
/// labels are degenerate (every answer identical) scores agreement `0.0`
/// and the climb continues.
///
/// # Errors
///
/// [`ReverseError::NoQueries`] when `query_indices` or `ladder` is
/// empty; [`ReverseError::Fit`] when a proxy fit fails outright.
#[allow(clippy::too_many_arguments)]
pub fn denoise_cost_search(
    oracle: &mut dyn Detector,
    reference: &mut dyn Detector,
    dataset: &Dataset,
    query_indices: &[usize],
    test_indices: &[usize],
    config: &ReverseConfig,
    ladder: &[usize],
    target_agreement: f64,
) -> Result<DenoiseCurve, ReverseError> {
    if query_indices.is_empty() || ladder.is_empty() {
        return Err(ReverseError::NoQueries);
    }
    let mut points = Vec::with_capacity(ladder.len());
    let mut required = None;
    for &k in ladder {
        let agreement = match denoised_reverse_engineer(oracle, dataset, query_indices, config, k) {
            Ok(proxy) => effectiveness(&proxy, reference, dataset, test_indices),
            Err(ReverseError::DegenerateOracle) => 0.0,
            Err(e) => return Err(e),
        };
        points.push(DenoisePoint {
            queries_per_sample: k.max(1),
            query_cost: query_cost(query_indices.len(), k),
            agreement,
        });
        if agreement >= target_agreement {
            required = Some(k.max(1));
            break;
        }
    }
    Ok(DenoiseCurve {
        target_agreement,
        points,
        required,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyKind;
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
    use stochastic_hmd::BaselineHmd;

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(150), 29);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        (dataset, victim)
    }

    #[test]
    fn deterministic_oracle_needs_one_query_per_sample() {
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        let mut oracle = victim.clone();
        let mut reference = victim.clone();
        let curve = denoise_cost_search(
            &mut oracle,
            &mut reference,
            &dataset,
            split.attacker_training(),
            split.testing(),
            &ReverseConfig::new(ProxyKind::LogisticRegression),
            &DEFAULT_QUERY_LADDER,
            0.7,
        )
        .expect("search");
        assert_eq!(curve.required, Some(1), "clean labels need no voting");
        assert_eq!(curve.points.len(), 1, "the climb stops at the target");
        assert_eq!(
            curve.total_query_cost(),
            split.attacker_training().len(),
            "one query per sample"
        );
    }

    #[test]
    fn noisy_oracle_costs_more_queries_than_a_clean_one() {
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        // A clean reference to measure agreement against, and a heavily
        // stochastic oracle to attack.
        let mut reference = victim.clone();
        let mut clean_oracle = victim.clone();
        let cfg = ReverseConfig::new(ProxyKind::LogisticRegression);
        let clean = denoise_cost_search(
            &mut clean_oracle,
            &mut reference,
            &dataset,
            split.attacker_training(),
            split.testing(),
            &cfg,
            &DEFAULT_QUERY_LADDER,
            0.75,
        )
        .expect("clean search");
        let mut noisy_oracle = StochasticHmd::from_baseline(&victim, 0.4, 7).expect("valid");
        let noisy = denoise_cost_search(
            &mut noisy_oracle,
            &mut reference,
            &dataset,
            split.attacker_training(),
            split.testing(),
            &cfg,
            &DEFAULT_QUERY_LADDER,
            0.75,
        )
        .expect("noisy search");
        assert!(
            noisy.required_or_saturated() >= clean.required_or_saturated(),
            "noise must not make denoising cheaper: {noisy:?} vs {clean:?}"
        );
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        let mut oracle = victim.clone();
        let mut reference = victim.clone();
        let cfg = ReverseConfig::new(ProxyKind::LogisticRegression);
        assert_eq!(
            denoise_cost_search(
                &mut oracle,
                &mut reference,
                &dataset,
                &[],
                split.testing(),
                &cfg,
                &DEFAULT_QUERY_LADDER,
                0.8,
            )
            .unwrap_err(),
            ReverseError::NoQueries
        );
        assert_eq!(
            denoise_cost_search(
                &mut oracle,
                &mut reference,
                &dataset,
                split.attacker_training(),
                split.testing(),
                &cfg,
                &[],
                0.8,
            )
            .unwrap_err(),
            ReverseError::NoQueries
        );
    }
}

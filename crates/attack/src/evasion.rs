//! Evasive-malware generation by instruction injection.
//!
//! The attacker may only *add* instructions — the malicious payload must
//! keep executing, so existing instructions cannot be removed. Injection
//! dilutes the malware's category frequencies towards a benign-looking mix.
//! Generation greedily picks, at each step, the instruction category whose
//! injection lowers the proxy's malware score the most, and stops as soon
//! as the proxy classifies the padded trace as benign (a *minimal*
//! perturbation, as a stealthy attacker prefers: every injected instruction
//! costs runtime and makes the sample look more anomalous elsewhere).
//!
//! Greedy coordinate search is used rather than gradients so the same
//! framework attacks the non-differentiable decision-tree proxy. The
//! candidate set contains both single instruction categories and
//! *benign-mimicry bundles* — category mixes shaped like real benign
//! applications (browser, editor, …). Mimicry moves the sample along the
//! data distribution towards the benign class, a direction that transfers
//! across models far better than a proxy-specific axis direction; which
//! candidates the greedy search actually picks depends on the proxy's
//! decision surface, which is what differentiates MLP/LR/DT transfer rates.

use crate::reverse::Proxy;
use serde::{Deserialize, Serialize};
use shmd_workload::families::{BenignFamily, ProgramClass};
use shmd_workload::isa::CATEGORY_COUNT;
use shmd_workload::trace::Trace;

/// Evasion hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvasionConfig {
    /// Injection step, as a fraction of the original trace length.
    pub step_fraction: f64,
    /// Maximum total injection, as a fraction of the original length
    /// (e.g. `3.0` = the padded sample may be up to 4× the original).
    pub budget_fraction: f64,
    /// Safety margin below the decision threshold the attacker aims for:
    /// evasion succeeds when the proxy score drops below `0.5 − margin`.
    /// A sample sitting exactly at the proxy's boundary would transfer
    /// poorly (any proxy/victim mismatch flips it back), so a real attacker
    /// overshoots.
    pub margin: f64,
}

impl Default for EvasionConfig {
    fn default() -> EvasionConfig {
        EvasionConfig {
            step_fraction: 0.05,
            budget_fraction: 1.0,
            margin: 0.1,
        }
    }
}

/// A successfully generated evasive sample.
#[derive(Clone, Debug)]
pub struct EvasiveSample {
    /// Index of the original malware program in its dataset.
    pub program_idx: usize,
    /// The padded trace that evades the proxy.
    pub trace: Trace,
    /// Total injected instructions per category.
    pub injected: [u32; CATEGORY_COUNT],
    /// The proxy's score for the padded trace (below threshold).
    pub proxy_score: f64,
    /// Number of greedy injection steps taken.
    pub steps: usize,
}

impl EvasiveSample {
    /// Total injected instruction count.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|&c| u64::from(c)).sum()
    }
}

/// Attempts to evade the proxy for one malware trace.
///
/// Returns `None` when the injection budget is exhausted before the proxy
/// flips (evasion failed), or when the proxy already labels the original
/// trace benign and no injection is needed (`steps == 0` in the returned
/// sample distinguishes that case).
pub fn evade(proxy: &Proxy, trace: &Trace, config: &EvasionConfig) -> Option<EvasiveSample> {
    let original_len = trace.total_insns();
    let step = ((original_len as f64 * config.step_fraction) as u32).max(1);
    let budget = (original_len as f64 * config.budget_fraction) as u64;

    let target = 0.5 - config.margin;
    let mut injected = [0u32; CATEGORY_COUNT];
    let mut current = trace.clone();
    let mut score = proxy.score_trace(&current);
    let mut steps = 0usize;

    if score < 0.5 {
        // The proxy already clears this trace: nothing to inject.
        return Some(EvasiveSample {
            program_idx: usize::MAX,
            trace: current,
            injected,
            proxy_score: score,
            steps,
        });
    }

    let candidates = candidate_bundles(step);
    while score >= target {
        let injected_total: u64 = injected.iter().map(|&c| u64::from(c)).sum();
        if injected_total + u64::from(step) > budget {
            return None; // budget exhausted: evasion failed
        }
        // Greedy: try every candidate bundle, keep the one that helps most.
        let mut best: Option<(usize, f64)> = None;
        for (ci, bundle) in candidates.iter().enumerate() {
            let trial = add_bundle(&injected, bundle);
            let s = proxy.score_trace(&trace.with_injected(&trial));
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((ci, s));
            }
        }
        let (ci, best_score) = best.expect("at least one candidate");
        if add_bundle(&injected, &candidates[ci]) == injected {
            // All candidate bundles rounded to zero instructions (possible
            // for very short traces): no injection can make progress.
            return None;
        }
        // A plateau does not abort the attack: against a piecewise-constant
        // proxy (decision tree) the score only moves when an injection
        // crosses a split threshold, so the attacker keeps padding with the
        // best bundle until the budget runs out.
        let committed = injected;
        injected = add_bundle(&injected, &candidates[ci]);
        current = trace.with_injected(&injected);
        score = best_score;
        steps += 1;

        if score < target {
            // Crossed the target: binary-search the final bundle down to
            // the minimal injection that still reaches it (fewer injected
            // instructions = cheaper, stealthier malware).
            let (mut lo, mut hi) = (0u32, 256u32);
            for _ in 0..8 {
                let mid = (lo + hi) / 2;
                let trial = add_scaled_bundle(&committed, &candidates[ci], mid);
                if proxy.score_trace(&trace.with_injected(&trial)) < target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            injected = add_scaled_bundle(&committed, &candidates[ci], hi);
            current = trace.with_injected(&injected);
            score = proxy.score_trace(&current);
        }
    }

    Some(EvasiveSample {
        program_idx: usize::MAX,
        trace: current,
        injected,
        proxy_score: score,
        steps,
    })
}

/// The injection moves the greedy search can make each step: one block of
/// `step` instructions shaped like a benign application's category mix.
///
/// A flood of one raw category (say, +50% SIMD) is not a usable evasion:
/// the padding has to be *real executable code* woven through the payload,
/// and realistic filler code has a benign application's mixed profile.
/// Restricting moves to such blocks keeps evasive samples on the data
/// manifold — which is also what makes them transfer from the proxy to the
/// victim at all.
fn candidate_bundles(step: u32) -> Vec<[u32; CATEGORY_COUNT]> {
    use shmd_workload::isa::InsnCategory;
    // Categories a filler block should avoid because they read as
    // malware-ish or have side effects (syscalls, port I/O, far control
    // flow, segment loads, string scans).
    let scrub = [
        InsnCategory::ControlTransfer.index(),
        InsnCategory::StringOp.index(),
        InsnCategory::SegmentRegister.index(),
        InsnCategory::System.index(),
        InsnCategory::Io.index(),
    ];
    let mut out = Vec::with_capacity(2 * BenignFamily::ALL.len());
    for &family in &BenignFamily::ALL {
        let profile = ProgramClass::Benign(family).base_profile();
        let mut plain = [0u32; CATEGORY_COUNT];
        for (slot, &p) in plain.iter_mut().zip(&profile) {
            *slot = (p * f64::from(step)).round() as u32;
        }
        out.push(plain);
        // Scrubbed variant: the same mix restricted to side-effect-free
        // computational filler, renormalised to the step size.
        let mut kept = profile;
        for &c in &scrub {
            kept[c] = 0.0;
        }
        let total: f64 = kept.iter().sum();
        let mut scrubbed = [0u32; CATEGORY_COUNT];
        for (slot, &p) in scrubbed.iter_mut().zip(&kept) {
            *slot = (p / total * f64::from(step)).round() as u32;
        }
        out.push(scrubbed);
    }
    // Very small steps can round an entire bundle to zero; guarantee every
    // bundle injects at least one instruction so greedy steps always move.
    for bundle in &mut out {
        if bundle.iter().all(|&c| c == 0) {
            bundle[shmd_workload::isa::InsnCategory::DataTransfer.index()] = 1;
        }
    }
    out
}

fn add_bundle(
    base: &[u32; CATEGORY_COUNT],
    bundle: &[u32; CATEGORY_COUNT],
) -> [u32; CATEGORY_COUNT] {
    let mut out = *base;
    for (o, &b) in out.iter_mut().zip(bundle) {
        *o = o.saturating_add(b);
    }
    out
}

/// Adds `bundle` scaled by `t/256`.
fn add_scaled_bundle(
    base: &[u32; CATEGORY_COUNT],
    bundle: &[u32; CATEGORY_COUNT],
    t: u32,
) -> [u32; CATEGORY_COUNT] {
    let mut out = *base;
    for (o, &b) in out.iter_mut().zip(bundle) {
        *o = o.saturating_add((u64::from(b) * u64::from(t) / 256) as u32);
    }
    out
}

/// Generates evasive variants for a set of malware programs.
///
/// Returns only the samples that successfully evade the proxy; each result
/// carries its dataset index.
pub fn generate_evasive_malware(
    proxy: &Proxy,
    dataset: &shmd_workload::dataset::Dataset,
    malware_indices: &[usize],
    config: &EvasionConfig,
) -> Vec<EvasiveSample> {
    let mut out = Vec::new();
    for &idx in malware_indices {
        if let Some(mut sample) = evade(proxy, dataset.trace(idx), config) {
            sample.program_idx = idx;
            out.push(sample);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{reverse_engineer, ReverseConfig};
    use crate::ProxyKind;
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

    fn setup() -> (Dataset, Proxy) {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 71);
        let split = dataset.three_fold_split(0);
        let mut victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train victim");
        let proxy = reverse_engineer(
            &mut victim,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::Mlp),
        )
        .expect("RE");
        (dataset, proxy)
    }

    fn proxy_detected_malware(dataset: &Dataset, proxy: &Proxy) -> Vec<usize> {
        let split = dataset.three_fold_split(0);
        split
            .testing()
            .iter()
            .copied()
            .filter(|&i| dataset.program(i).is_malware() && proxy.predict_trace(dataset.trace(i)))
            .collect()
    }

    #[test]
    fn evasion_flips_the_proxy() {
        let (dataset, proxy) = setup();
        let targets = proxy_detected_malware(&dataset, &proxy);
        assert!(!targets.is_empty(), "need detected malware to evade");
        let samples =
            generate_evasive_malware(&proxy, &dataset, &targets, &EvasionConfig::default());
        assert!(
            samples.len() * 2 > targets.len(),
            "evasion should succeed for most samples: {}/{}",
            samples.len(),
            targets.len()
        );
        for s in &samples {
            assert!(s.proxy_score < 0.5, "proxy must label the sample benign");
            assert!(!proxy.predict_trace(&s.trace));
        }
    }

    #[test]
    fn evasion_preserves_the_payload() {
        let (dataset, proxy) = setup();
        let targets = proxy_detected_malware(&dataset, &proxy);
        let samples =
            generate_evasive_malware(&proxy, &dataset, &targets, &EvasionConfig::default());
        for s in &samples {
            let original = dataset.trace(s.program_idx);
            for (ow, nw) in original.windows().iter().zip(s.trace.windows()) {
                for (o, n) in ow.iter().zip(nw) {
                    assert!(n >= o, "evasion removed payload instructions");
                }
            }
        }
    }

    #[test]
    fn evasion_is_minimal() {
        // The greedy search stops at the first step that crosses the
        // boundary — scores should sit just below 0.5, not at 0.
        let (dataset, proxy) = setup();
        let targets = proxy_detected_malware(&dataset, &proxy);
        let samples =
            generate_evasive_malware(&proxy, &dataset, &targets, &EvasionConfig::default());
        let near_boundary = samples.iter().filter(|s| s.proxy_score > 0.1).count();
        assert!(
            near_boundary * 2 >= samples.len(),
            "most evasive scores should sit near the boundary"
        );
    }

    #[test]
    fn tiny_budget_fails() {
        let (dataset, proxy) = setup();
        let targets = proxy_detected_malware(&dataset, &proxy);
        let cfg = EvasionConfig {
            step_fraction: 0.01,
            budget_fraction: 0.02,
            margin: 0.15,
        };
        let samples = generate_evasive_malware(&proxy, &dataset, &targets, &cfg);
        assert!(
            samples.len() < targets.len(),
            "a 2% budget should not evade everything"
        );
    }

    #[test]
    fn already_benign_needs_no_steps() {
        let (dataset, proxy) = setup();
        let split = dataset.three_fold_split(0);
        let benign_idx = split
            .testing()
            .iter()
            .copied()
            .find(|&i| !dataset.program(i).is_malware() && !proxy.predict_trace(dataset.trace(i)))
            .expect("some benign sample the proxy clears");
        let s = evade(&proxy, dataset.trace(benign_idx), &EvasionConfig::default())
            .expect("trivially evades");
        assert_eq!(s.steps, 0);
        assert_eq!(s.injected_total(), 0);
    }

    #[test]
    fn injected_totals_match_trace_growth() {
        let (dataset, proxy) = setup();
        let targets = proxy_detected_malware(&dataset, &proxy);
        let samples =
            generate_evasive_malware(&proxy, &dataset, &targets, &EvasionConfig::default());
        for s in samples.iter().take(5) {
            let original = dataset.trace(s.program_idx);
            assert_eq!(
                s.trace.total_insns(),
                original.total_insns() + s.injected_total()
            );
        }
    }
}

//! Gradient-guided evasion for differentiable proxies.
//!
//! The paper argues randomisation defends because it yields "a stochastic
//! gradient over the input, which makes the estimation of the gradient
//! direction challenging for the adversary". This module implements the
//! attack that sentence is about: estimate the proxy's input gradient and
//! inject instructions along its steepest benign direction.
//!
//! Two constraints keep the attack physical:
//!
//! 1. only *additions* are possible (the payload must keep executing), so
//!    the gradient is projected onto the non-negative injection cone;
//! 2. the proxy may be non-differentiable (DT) or black-box, so gradients
//!    are estimated by finite differences over candidate injections rather
//!    than taken analytically — which also works unchanged against a
//!    *stochastic* score surface, where it inherits exactly the noise the
//!    paper describes.

use crate::evasion::{EvasionConfig, EvasiveSample};
use crate::reverse::Proxy;
use shmd_workload::isa::CATEGORY_COUNT;
use shmd_workload::trace::Trace;

/// Finite-difference step, in instructions, used to probe the score
/// surface.
const PROBE_STEP: u32 = 64;

/// Estimates ∂score/∂(injected instructions of category c) for every
/// category by forward finite differences at the current injection point.
pub fn injection_gradient(
    proxy: &Proxy,
    trace: &Trace,
    injected: &[u32; CATEGORY_COUNT],
) -> [f64; CATEGORY_COUNT] {
    let base = proxy.score_trace(&trace.with_injected(injected));
    let mut grad = [0.0; CATEGORY_COUNT];
    for c in 0..CATEGORY_COUNT {
        let mut probe = *injected;
        probe[c] = probe[c].saturating_add(PROBE_STEP);
        let shifted = proxy.score_trace(&trace.with_injected(&probe));
        grad[c] = (shifted - base) / f64::from(PROBE_STEP);
    }
    grad
}

/// Attempts to evade the proxy by repeatedly injecting along the projected
/// negative gradient (the steepest *score-reducing* mix of categories).
///
/// Returns `None` when the budget is exhausted or the surface gives no
/// usable direction (a zero projected gradient — e.g. deep inside a
/// decision-tree leaf).
pub fn evade_by_gradient(
    proxy: &Proxy,
    trace: &Trace,
    config: &EvasionConfig,
) -> Option<EvasiveSample> {
    let original_len = trace.total_insns();
    let step_total = ((original_len as f64 * config.step_fraction) as u32).max(1);
    let budget = (original_len as f64 * config.budget_fraction) as u64;
    let target = 0.5 - config.margin;

    let mut injected = [0u32; CATEGORY_COUNT];
    let mut score = proxy.score_trace(trace);
    let mut steps = 0usize;
    if score < 0.5 {
        return Some(EvasiveSample {
            program_idx: usize::MAX,
            trace: trace.clone(),
            injected,
            proxy_score: score,
            steps,
        });
    }

    while score >= target {
        let spent: u64 = injected.iter().map(|&c| u64::from(c)).sum();
        if spent + u64::from(step_total) > budget {
            return None;
        }
        let grad = injection_gradient(proxy, trace, &injected);
        // Project onto the injection cone: keep only score-*reducing*
        // directions (negative gradient components).
        let mut weights = [0.0f64; CATEGORY_COUNT];
        let mut total = 0.0;
        for (w, &g) in weights.iter_mut().zip(&grad) {
            if g < 0.0 {
                *w = -g;
                total += *w;
            }
        }
        if total <= 0.0 {
            return None; // flat or adversarially useless surface
        }
        let before = injected;
        for (slot, w) in injected.iter_mut().zip(&weights) {
            *slot = slot.saturating_add(((w / total) * f64::from(step_total)).round() as u32);
        }
        if injected == before {
            // Every rounded component was zero (tiny traces make
            // step_total = 1 spread over several categories): force one
            // instruction into the steepest-descent category so the loop
            // always makes progress towards the budget.
            let steepest = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .expect("non-empty weights");
            injected[steepest] = injected[steepest].saturating_add(1);
        }
        score = proxy.score_trace(&trace.with_injected(&injected));
        steps += 1;
    }

    Some(EvasiveSample {
        program_idx: usize::MAX,
        trace: trace.with_injected(&injected),
        injected,
        proxy_score: score,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{reverse_engineer, ReverseConfig};
    use crate::ProxyKind;
    use shmd_workload::dataset::{Dataset, DatasetConfig};
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

    fn setup(kind: ProxyKind) -> (Dataset, Proxy) {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 55);
        let split = dataset.three_fold_split(0);
        let mut victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let proxy = reverse_engineer(
            &mut victim,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(kind),
        )
        .expect("RE");
        (dataset, proxy)
    }

    fn detected_malware(dataset: &Dataset, proxy: &Proxy) -> Vec<usize> {
        let split = dataset.three_fold_split(0);
        dataset
            .malware_indices(split.testing())
            .filter(|&i| proxy.predict_trace(dataset.trace(i)))
            .collect()
    }

    #[test]
    fn gradient_points_downhill_for_benign_categories() {
        let (dataset, proxy) = setup(ProxyKind::LogisticRegression);
        let idx = detected_malware(&dataset, &proxy)[0];
        let grad = injection_gradient(&proxy, dataset.trace(idx), &[0; CATEGORY_COUNT]);
        // At least one injectable direction reduces the malware score.
        assert!(
            grad.iter().any(|&g| g < 0.0),
            "no descending direction found: {grad:?}"
        );
    }

    #[test]
    fn gradient_evasion_defeats_a_differentiable_proxy() {
        let (dataset, proxy) = setup(ProxyKind::Mlp);
        let targets = detected_malware(&dataset, &proxy);
        let mut evaded = 0usize;
        for &i in targets.iter().take(20) {
            if let Some(sample) =
                evade_by_gradient(&proxy, dataset.trace(i), &EvasionConfig::default())
            {
                assert!(sample.proxy_score < 0.5);
                evaded += 1;
            }
        }
        assert!(evaded > 0, "gradient evasion should work on an MLP proxy");
    }

    #[test]
    fn gradient_evasion_preserves_the_payload() {
        let (dataset, proxy) = setup(ProxyKind::Mlp);
        let idx = detected_malware(&dataset, &proxy)[0];
        let original = dataset.trace(idx);
        if let Some(sample) = evade_by_gradient(&proxy, original, &EvasionConfig::default()) {
            for (ow, nw) in original.windows().iter().zip(sample.trace.windows()) {
                for (o, n) in ow.iter().zip(nw) {
                    assert!(n >= o, "gradient evasion removed payload instructions");
                }
            }
        }
    }

    #[test]
    fn stochastic_proxy_surface_degrades_gradient_estimates() {
        // The paper's claim, demonstrated on the score surface itself:
        // estimating the gradient *through a stochastic victim* twice gives
        // different answers, while a deterministic surface is stable.
        let dataset = Dataset::generate(&DatasetConfig::small(100), 56);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        let idx = dataset
            .malware_indices(split.testing())
            .next()
            .expect("malware");
        let trace = dataset.trace(idx);

        // Deterministic surface: identical estimates.
        let exact = |t: &Trace| {
            f64::from(
                victim.quantized().infer_with(
                    &victim.spec().extract(t),
                    &mut shmd_volt::fault::ExactDatapath,
                )[0],
            )
        };
        let probe = |score_fn: &mut dyn FnMut(&Trace) -> f64| -> Vec<f64> {
            let base = score_fn(trace);
            (0..CATEGORY_COUNT)
                .map(|c| {
                    let mut probe = [0u32; CATEGORY_COUNT];
                    probe[c] = 4096;
                    score_fn(&trace.with_injected(&probe)) - base
                })
                .collect()
        };
        let mut f = |t: &Trace| exact(t);
        assert_eq!(
            probe(&mut f),
            probe(&mut f),
            "deterministic surface is stable"
        );

        // Stochastic surface: estimates disagree run to run.
        let mut sto = StochasticHmd::from_baseline(&victim, 0.5, 3).expect("valid");
        use stochastic_hmd::detector::Detector;
        let mut g = |t: &Trace| sto.score(t);
        assert_ne!(
            probe(&mut g),
            probe(&mut g),
            "stochastic surface must jitter the gradient estimate"
        );
    }
}

//! End-to-end attack campaigns: reverse-engineer → evade → transfer.
//!
//! [`AttackCampaign`] packages the full two-step attack of the paper's §V
//! against an arbitrary victim detector, producing the numbers reported in
//! Figures 3 (reverse-engineering effectiveness) and 4/5 (transferability /
//! evasive-malware detection).

use crate::evasion::EvasionConfig;
use crate::reverse::{effectiveness, reverse_engineer, ReverseConfig, ReverseError};
use crate::transfer::{transferability, TransferOutcome, DEFAULT_DETECTION_PERIODS};
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use stochastic_hmd::detector::Detector;
use stochastic_hmd::exec::{parallel_map_n, ExecConfig};

/// Which fold the attacker trains the proxy on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackTrainingSet {
    /// The attacker somehow knows the victim's training data — the paper's
    /// stronger scenario (1).
    VictimTraining,
    /// The attacker has only its own data — scenario (2).
    AttackerTraining,
}

impl std::fmt::Display for AttackTrainingSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AttackTrainingSet::VictimTraining => "victim training",
            AttackTrainingSet::AttackerTraining => "attacker training",
        })
    }
}

/// The result of one full campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// The proxy family used (display form: MLP/LR/DT).
    pub proxy: String,
    /// Which data the proxy trained on.
    pub training_set: String,
    /// Reverse-engineering effectiveness on the testing fold (Fig. 3).
    pub re_effectiveness: f64,
    /// Transferability outcome on the testing fold's malware (Figs. 4/5).
    pub transfer: TransferOutcome,
}

/// A reusable campaign configuration.
#[derive(Clone, Debug)]
pub struct AttackCampaign {
    /// Reverse-engineering setup (proxy family, features, seeds).
    pub reverse: ReverseConfig,
    /// Evasion budget and step size.
    pub evasion: EvasionConfig,
    /// Which fold the proxy trains on.
    pub training_set: AttackTrainingSet,
    /// Detection periods the victim observes each evasive sample for.
    pub detections: usize,
}

impl AttackCampaign {
    /// A campaign with the given reverse-engineering setup, attacking from
    /// the attacker-training fold with default evasion parameters.
    pub fn new(reverse: ReverseConfig) -> AttackCampaign {
        AttackCampaign {
            reverse,
            evasion: EvasionConfig::default(),
            training_set: AttackTrainingSet::AttackerTraining,
            detections: DEFAULT_DETECTION_PERIODS,
        }
    }

    /// Selects which fold the proxy trains on.
    #[must_use]
    pub fn with_training_set(mut self, set: AttackTrainingSet) -> AttackCampaign {
        self.training_set = set;
        self
    }

    /// Runs the campaign against a victim using the dataset's fold
    /// `rotation`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReverseError`] from the reverse-engineering step.
    pub fn run(
        &self,
        victim: &mut dyn Detector,
        dataset: &Dataset,
        rotation: usize,
    ) -> Result<AttackReport, ReverseError> {
        let split = dataset.three_fold_split(rotation);
        let train_fold = match self.training_set {
            AttackTrainingSet::VictimTraining => split.victim_training(),
            AttackTrainingSet::AttackerTraining => split.attacker_training(),
        };
        let proxy = reverse_engineer(victim, dataset, train_fold, &self.reverse)?;
        let re_effectiveness = effectiveness(&proxy, victim, dataset, split.testing());
        let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
        let transfer = transferability(
            victim,
            &proxy,
            dataset,
            &malware,
            &self.evasion,
            self.detections,
        );
        Ok(AttackReport {
            proxy: proxy.kind().to_string(),
            training_set: self.training_set.to_string(),
            re_effectiveness,
            transfer,
        })
    }

    /// Runs the campaign against every fold rotation concurrently,
    /// returning one report per rotation in rotation order.
    ///
    /// `build` constructs rotation `r`'s victim — derive any stochastic
    /// seed from `r` (see [`stochastic_hmd::exec::derive_seed`]) so the
    /// reports are bit-identical at any thread count. Each rotation's
    /// victim answers every probe of its campaign, so its internal
    /// inference scratch amortises across the thousands of queries the
    /// reverse-engineering and transfer stages issue.
    ///
    /// # Errors
    ///
    /// Propagates the earliest rotation's [`ReverseError`].
    pub fn run_folds<D, F>(
        &self,
        dataset: &Dataset,
        rotations: usize,
        exec: &ExecConfig,
        build: F,
    ) -> Result<Vec<AttackReport>, ReverseError>
    where
        D: Detector,
        F: Fn(usize) -> D + Sync,
    {
        parallel_map_n(exec, rotations, |rotation| {
            let mut victim = build(rotation);
            self.run(&mut victim, dataset, rotation)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyKind;
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

    #[test]
    fn campaign_produces_a_full_report() {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 91);
        let split = dataset.three_fold_split(0);
        let mut victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let report = AttackCampaign::new(ReverseConfig::new(ProxyKind::LogisticRegression))
            .run(&mut victim, &dataset, 0)
            .expect("campaign");
        assert_eq!(report.proxy, "LR");
        assert!(report.re_effectiveness > 0.8);
        assert!(report.transfer.attempted > 0);
    }

    #[test]
    fn run_folds_is_thread_count_invariant() {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 93);
        let campaign = AttackCampaign::new(ReverseConfig::new(ProxyKind::LogisticRegression));
        let build = |rotation: usize| {
            let split = dataset.three_fold_split(rotation);
            train_baseline(
                &dataset,
                split.victim_training(),
                FeatureSpec::frequency(),
                &HmdTrainConfig::fast(),
            )
            .expect("train")
        };
        let serial = campaign
            .run_folds(
                &dataset,
                3,
                &stochastic_hmd::exec::ExecConfig::serial(),
                build,
            )
            .expect("serial");
        let parallel = campaign
            .run_folds(
                &dataset,
                3,
                &stochastic_hmd::exec::ExecConfig::threads(4),
                build,
            )
            .expect("parallel");
        assert_eq!(serial.len(), 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn victim_training_scenario_is_stronger_or_equal() {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 92);
        let split = dataset.three_fold_split(0);
        let mut victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train");
        let strong = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp))
            .with_training_set(AttackTrainingSet::VictimTraining)
            .run(&mut victim, &dataset, 0)
            .expect("strong");
        let weak = AttackCampaign::new(ReverseConfig::new(ProxyKind::Mlp))
            .run(&mut victim, &dataset, 0)
            .expect("weak");
        // Allow small-sample slack; the strong attacker should not be
        // meaningfully worse.
        assert!(strong.re_effectiveness >= weak.re_effectiveness - 0.1);
    }
}

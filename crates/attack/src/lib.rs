//! Black-box adversarial attacks against HMDs.
//!
//! This crate implements the threat model of the paper's §V, following the
//! RHMD attack methodology it adopts: the adversary (1) **reverse-engineers**
//! the victim HMD by querying it as a black box and training a *proxy*
//! model on the observed labels, then (2) generates **evasive malware** by
//! injecting instructions until the proxy classifies the sample as benign,
//! and finally (3) relies on **transferability** — the hope that what evades
//! the proxy also evades the victim.
//!
//! The adversary has no access to the victim's internals, its thermal or
//! process state, or the undervolting level. Proxy models are a Multi-Layer
//! Perceptron ("state-of-the-art performance"), Logistic Regression
//! ("simplicity"), and a Decision Tree ("non-differentiability"), per §VII.
//!
//! # Example
//!
//! ```
//! use shmd_attack::reverse::{reverse_engineer, ReverseConfig};
//! use shmd_attack::ProxyKind;
//! use shmd_workload::dataset::{Dataset, DatasetConfig};
//! use shmd_workload::features::FeatureSpec;
//! use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
//!
//! let dataset = Dataset::generate(&DatasetConfig::small(60), 1);
//! let split = dataset.three_fold_split(0);
//! let mut victim = train_baseline(
//!     &dataset, split.victim_training(), FeatureSpec::frequency(),
//!     &HmdTrainConfig::fast(),
//! )?;
//! let proxy = reverse_engineer(
//!     &mut victim, &dataset, split.attacker_training(),
//!     &ReverseConfig::new(ProxyKind::LogisticRegression),
//! )?;
//! let score = proxy.score_trace(dataset.trace(split.testing()[0]));
//! assert!((0.0..=1.0).contains(&score));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod arena;
pub mod campaign;
pub mod evasion;
pub mod gradient;
pub mod reverse;
pub mod transfer;
pub mod validated;

pub use adaptive::{denoised_reverse_engineer, query_cost};
pub use arena::{denoise_cost_search, DenoiseCurve, DenoisePoint, DEFAULT_QUERY_LADDER};
pub use campaign::{AttackCampaign, AttackReport};
pub use evasion::{evade, generate_evasive_malware, EvasionConfig, EvasiveSample};
pub use gradient::{evade_by_gradient, injection_gradient};
pub use reverse::{reverse_engineer, Proxy, ReverseConfig, ReverseError};
pub use transfer::{transferability, NoTransferAttempts, TransferOutcome};
pub use validated::{validated_outcome, ValidatedOutcome, ValidationConfig};

use serde::{Deserialize, Serialize};
use std::fmt;

/// The model family the attacker trains as a proxy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProxyKind {
    /// Multi-layer perceptron (the strongest proxy in the paper).
    #[default]
    Mlp,
    /// Logistic regression.
    LogisticRegression,
    /// CART decision tree (non-differentiable).
    DecisionTree,
    /// Random forest — an ensemble extension beyond the paper's attacker
    /// set, the natural adaptive step for an adversary whose single-tree
    /// proxy is defeated (cf. EnsembleHMD).
    RandomForest,
}

impl ProxyKind {
    /// The paper's proxy kinds, in Figure 3/4 order.
    pub const ALL: [ProxyKind; 3] = [
        ProxyKind::Mlp,
        ProxyKind::LogisticRegression,
        ProxyKind::DecisionTree,
    ];

    /// The paper's proxies plus the random-forest extension.
    pub const EXTENDED: [ProxyKind; 4] = [
        ProxyKind::Mlp,
        ProxyKind::LogisticRegression,
        ProxyKind::DecisionTree,
        ProxyKind::RandomForest,
    ];
}

impl fmt::Display for ProxyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProxyKind::Mlp => "MLP",
            ProxyKind::LogisticRegression => "LR",
            ProxyKind::DecisionTree => "DT",
            ProxyKind::RandomForest => "RF",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_kinds_display_like_the_paper() {
        assert_eq!(ProxyKind::Mlp.to_string(), "MLP");
        assert_eq!(ProxyKind::LogisticRegression.to_string(), "LR");
        assert_eq!(ProxyKind::DecisionTree.to_string(), "DT");
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(ProxyKind::ALL.len(), 3);
        assert_eq!(ProxyKind::EXTENDED.len(), 4);
        assert_eq!(ProxyKind::RandomForest.to_string(), "RF");
    }
}

//! Adaptive attackers: countermeasures a stronger adversary might try
//! against a Stochastic-HMD, and what they cost.
//!
//! The paper's threat model gives the attacker unlimited black-box query
//! access, so the obvious adaptation against a *stochastic* oracle is to
//! query each sample several times and majority-vote the labels away from
//! the noise before training the proxy. This module implements that
//! denoising attacker so the defense can be evaluated against it — and so
//! the defender can quantify the attacker's extra query cost, which is the
//! practical deterrent (each query is an execution of the sample on the
//! victim machine).

use crate::reverse::{Proxy, ReverseConfig, ReverseError};
use crate::ProxyKind;
use shmd_ann::builder::NetworkBuilder;
use shmd_ann::train::{RpropTrainer, TrainData};
use shmd_ml::forest::RandomForest;
use shmd_ml::logistic::LogisticRegression;
use shmd_ml::tree::DecisionTree;
use shmd_workload::dataset::Dataset;
use stochastic_hmd::detector::Detector;

/// Reverse-engineers a victim with majority-voted labels.
///
/// Each training sample is queried `queries_per_sample` times; the label is
/// the majority verdict. Against a deterministic victim this reduces to the
/// plain attack; against a stochastic victim it filters per-query label
/// noise at a linear cost in queries.
///
/// # Errors
///
/// Returns [`ReverseError`] exactly like
/// [`crate::reverse::reverse_engineer`].
pub fn denoised_reverse_engineer(
    victim: &mut dyn Detector,
    dataset: &Dataset,
    query_indices: &[usize],
    config: &ReverseConfig,
    queries_per_sample: usize,
) -> Result<Proxy, ReverseError> {
    if query_indices.is_empty() {
        return Err(ReverseError::NoQueries);
    }
    let k = queries_per_sample.max(1);
    let mut inputs = Vec::with_capacity(query_indices.len());
    let mut labels = Vec::with_capacity(query_indices.len());
    for &i in query_indices {
        let trace = dataset.trace(i);
        let mut features = Vec::new();
        for spec in &config.specs {
            features.extend(spec.extract(trace));
        }
        inputs.push(features);
        let positives = (0..k)
            .filter(|_| victim.classify(trace).is_malware())
            .count();
        labels.push(2 * positives > k);
    }
    if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
        return Err(ReverseError::DegenerateOracle);
    }
    Proxy::fit(config, inputs, labels)
}

/// Total victim queries the denoising attack issues.
pub fn query_cost(samples: usize, queries_per_sample: usize) -> usize {
    samples * queries_per_sample.max(1)
}

impl Proxy {
    /// Fits a proxy of `config.proxy`'s family on explicit features and
    /// labels (shared by the plain and denoised attacks).
    ///
    /// # Errors
    ///
    /// Returns [`ReverseError::Fit`] / [`ReverseError::DegenerateOracle`]
    /// from the underlying model fit.
    pub(crate) fn fit(
        config: &ReverseConfig,
        inputs: Vec<Vec<f32>>,
        labels: Vec<bool>,
    ) -> Result<Proxy, ReverseError> {
        let model = match config.proxy {
            ProxyKind::Mlp => {
                let targets: Vec<Vec<f32>> = labels
                    .iter()
                    .map(|&m| vec![if m { 1.0 } else { 0.0 }])
                    .collect();
                let width = inputs[0].len();
                let data = TrainData::new(inputs, targets)
                    .map_err(|e| ReverseError::Fit(e.to_string()))?;
                let mut net = NetworkBuilder::new(width)
                    .hidden(config.mlp_hidden)
                    .output(1)
                    .seed(config.seed)
                    .build()
                    .map_err(|e| ReverseError::Fit(e.to_string()))?;
                RpropTrainer::new()
                    .epochs(config.mlp_epochs)
                    .train(&mut net, &data);
                crate::reverse::ProxyModel::Mlp(net)
            }
            ProxyKind::LogisticRegression => crate::reverse::ProxyModel::Lr(
                LogisticRegression::fit(&inputs, &labels, &config.logistic)?,
            ),
            ProxyKind::DecisionTree => {
                crate::reverse::ProxyModel::Dt(DecisionTree::fit(&inputs, &labels, &config.tree)?)
            }
            ProxyKind::RandomForest => {
                crate::reverse::ProxyModel::Rf(RandomForest::fit(&inputs, &labels, &config.forest)?)
            }
        };
        Ok(Proxy::from_parts(config.proxy, config.specs.clone(), model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{effectiveness, reverse_engineer};
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};

    fn setup() -> (Dataset, stochastic_hmd::BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(150), 77);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        (dataset, victim)
    }

    #[test]
    fn denoising_equals_plain_attack_on_deterministic_victims() {
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        let cfg = ReverseConfig::new(ProxyKind::LogisticRegression);
        let mut v1 = victim.clone();
        let plain =
            reverse_engineer(&mut v1, &dataset, split.attacker_training(), &cfg).expect("plain RE");
        let mut v2 = victim.clone();
        let denoised =
            denoised_reverse_engineer(&mut v2, &dataset, split.attacker_training(), &cfg, 5)
                .expect("denoised RE");
        for &i in split.testing().iter().take(20) {
            assert_eq!(
                plain.score_trace(dataset.trace(i)),
                denoised.score_trace(dataset.trace(i)),
                "deterministic oracle: voting must change nothing"
            );
        }
    }

    #[test]
    fn denoising_recovers_effectiveness_against_stochastic_victims() {
        // The adaptive-attacker finding: majority voting claws back part of
        // the reverse-engineering resistance — at k× the query cost.
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        let cfg = ReverseConfig::new(ProxyKind::Mlp);
        let trials = 3;
        let (mut plain_sum, mut denoised_sum) = (0.0, 0.0);
        for seed in 0..trials {
            let mut sto = StochasticHmd::from_baseline(&victim, 0.4, seed).expect("valid");
            let plain = reverse_engineer(&mut sto, &dataset, split.attacker_training(), &cfg)
                .expect("plain RE");
            plain_sum += effectiveness(&plain, &mut sto, &dataset, split.testing());

            let mut sto = StochasticHmd::from_baseline(&victim, 0.4, seed).expect("valid");
            let denoised =
                denoised_reverse_engineer(&mut sto, &dataset, split.attacker_training(), &cfg, 9)
                    .expect("denoised RE");
            denoised_sum += effectiveness(&denoised, &mut sto, &dataset, split.testing());
        }
        assert!(
            denoised_sum >= plain_sum - 0.05,
            "voting should not hurt the attacker: {denoised_sum} vs {plain_sum}"
        );
    }

    #[test]
    fn query_cost_is_linear() {
        assert_eq!(query_cost(1200, 9), 10_800);
        assert_eq!(query_cost(100, 0), 100, "at least one query per sample");
    }

    #[test]
    fn empty_queries_error() {
        let (dataset, victim) = setup();
        let mut v = victim.clone();
        assert_eq!(
            denoised_reverse_engineer(
                &mut v,
                &dataset,
                &[],
                &ReverseConfig::new(ProxyKind::Mlp),
                3
            )
            .unwrap_err(),
            ReverseError::NoQueries
        );
    }
}

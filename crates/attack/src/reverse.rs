//! Reverse engineering: train a proxy on the victim's black-box labels.

use crate::ProxyKind;
use shmd_ann::network::Network;
use shmd_ml::forest::{ForestConfig, RandomForest};
use shmd_ml::logistic::{LogisticConfig, LogisticRegression};
use shmd_ml::tree::{DecisionTree, TreeConfig};
use shmd_ml::FitError;
use shmd_workload::dataset::Dataset;
use shmd_workload::features::FeatureSpec;
use shmd_workload::trace::Trace;
use std::fmt;
use stochastic_hmd::detector::Detector;

/// Error reverse-engineering a victim.
#[derive(Clone, Debug, PartialEq)]
pub enum ReverseError {
    /// No query indices were supplied.
    NoQueries,
    /// The victim answered every query with the same label, so no
    /// discriminative proxy can be fitted.
    DegenerateOracle,
    /// Underlying model fitting failed.
    Fit(String),
}

impl fmt::Display for ReverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReverseError::NoQueries => f.write_str("no query samples supplied"),
            ReverseError::DegenerateOracle => {
                f.write_str("victim labelled every query identically")
            }
            ReverseError::Fit(msg) => write!(f, "proxy fitting failed: {msg}"),
        }
    }
}

impl std::error::Error for ReverseError {}

impl From<FitError> for ReverseError {
    fn from(e: FitError) -> ReverseError {
        match e {
            FitError::SingleClass => ReverseError::DegenerateOracle,
            other => ReverseError::Fit(other.to_string()),
        }
    }
}

/// Reverse-engineering configuration.
#[derive(Clone, Debug)]
pub struct ReverseConfig {
    /// Proxy model family.
    pub proxy: ProxyKind,
    /// Feature vectors the attacker computes from each trace
    /// (concatenated). Against an RHMD the paper uses "all the feature
    /// vectors used in the construction".
    pub specs: Vec<FeatureSpec>,
    /// MLP hidden width.
    pub mlp_hidden: usize,
    /// MLP training epochs.
    pub mlp_epochs: usize,
    /// Logistic-regression hyper-parameters.
    pub logistic: LogisticConfig,
    /// Decision-tree hyper-parameters.
    pub tree: TreeConfig,
    /// Random-forest hyper-parameters (the extension proxy).
    pub forest: ForestConfig,
    /// Weight-initialisation seed for the MLP proxy.
    pub seed: u64,
}

impl ReverseConfig {
    /// A configuration matching the paper's attacker: the given proxy kind
    /// over the primary frequency feature vector.
    pub fn new(proxy: ProxyKind) -> ReverseConfig {
        ReverseConfig {
            proxy,
            specs: vec![FeatureSpec::frequency()],
            mlp_hidden: 8,
            mlp_epochs: 100,
            logistic: LogisticConfig::default(),
            tree: TreeConfig::default(),
            forest: ForestConfig::default(),
            seed: 0,
        }
    }

    /// Attacks with a custom set of feature vectors (for RHMD victims).
    #[must_use]
    pub fn with_specs(mut self, specs: Vec<FeatureSpec>) -> ReverseConfig {
        self.specs = specs;
        self
    }

    /// Sets the MLP initialisation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ReverseConfig {
        self.seed = seed;
        self
    }
}

pub(crate) enum ProxyModel {
    Mlp(Network),
    Lr(LogisticRegression),
    Dt(DecisionTree),
    Rf(RandomForest),
}

impl fmt::Debug for ProxyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProxyModel::Mlp(_) => "Mlp",
            ProxyModel::Lr(_) => "Lr",
            ProxyModel::Dt(_) => "Dt",
            ProxyModel::Rf(_) => "Rf",
        };
        write!(f, "ProxyModel::{name}")
    }
}

/// A reverse-engineered proxy of the victim HMD.
#[derive(Debug)]
pub struct Proxy {
    kind: ProxyKind,
    specs: Vec<FeatureSpec>,
    model: ProxyModel,
}

impl Proxy {
    pub(crate) fn from_parts(kind: ProxyKind, specs: Vec<FeatureSpec>, model: ProxyModel) -> Proxy {
        Proxy { kind, specs, model }
    }

    /// The proxy's model family.
    pub fn kind(&self) -> ProxyKind {
        self.kind
    }

    /// The feature vectors the proxy consumes.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// Extracts the proxy's (concatenated) feature vector from a trace.
    pub fn features(&self, trace: &Trace) -> Vec<f32> {
        let mut out = Vec::new();
        for spec in &self.specs {
            out.extend(spec.extract(trace));
        }
        out
    }

    /// The proxy's malware score for an extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature width mismatches the proxy's training width.
    pub fn score_features(&self, features: &[f32]) -> f64 {
        match &self.model {
            ProxyModel::Mlp(net) => f64::from(net.forward(features)[0]),
            ProxyModel::Lr(lr) => lr.predict_proba(features),
            ProxyModel::Dt(dt) => dt.predict_proba(features),
            ProxyModel::Rf(rf) => rf.predict_proba(features),
        }
    }

    /// The proxy's malware score for a trace.
    pub fn score_trace(&self, trace: &Trace) -> f64 {
        self.score_features(&self.features(trace))
    }

    /// The proxy's hard decision for a trace (`true` = malware).
    pub fn predict_trace(&self, trace: &Trace) -> bool {
        self.score_trace(trace) >= 0.5
    }
}

/// Reverse-engineers a victim HMD.
///
/// Each query index is traced, the victim is queried **once** (black box —
/// a stochastic victim's answer may differ between queries, which is
/// exactly what degrades the attack), and a proxy is trained on the
/// observed labels.
///
/// # Errors
///
/// Returns [`ReverseError`] if no queries are supplied, the oracle answers
/// degenerately, or model fitting fails.
pub fn reverse_engineer(
    victim: &mut dyn Detector,
    dataset: &Dataset,
    query_indices: &[usize],
    config: &ReverseConfig,
) -> Result<Proxy, ReverseError> {
    if query_indices.is_empty() {
        return Err(ReverseError::NoQueries);
    }
    let mut inputs = Vec::with_capacity(query_indices.len());
    let mut labels = Vec::with_capacity(query_indices.len());
    for &i in query_indices {
        let trace = dataset.trace(i);
        let mut features = Vec::new();
        for spec in &config.specs {
            features.extend(spec.extract(trace));
        }
        inputs.push(features);
        labels.push(victim.classify(trace).is_malware());
    }
    if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
        return Err(ReverseError::DegenerateOracle);
    }

    Proxy::fit(config, inputs, labels)
}

/// Reverse-engineering effectiveness: how often the proxy agrees with the
/// victim on held-out samples (the victim queried once per sample, as an
/// attacker validating the proxy would).
pub fn effectiveness(
    proxy: &Proxy,
    victim: &mut dyn Detector,
    dataset: &Dataset,
    test_indices: &[usize],
) -> f64 {
    if test_indices.is_empty() {
        return 0.0;
    }
    let agree = test_indices
        .iter()
        .filter(|&&i| {
            let trace = dataset.trace(i);
            proxy.predict_trace(trace) == victim.classify(trace).is_malware()
        })
        .count();
    agree as f64 / test_indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmd_workload::dataset::DatasetConfig;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
    use stochastic_hmd::BaselineHmd;

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 61);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train victim");
        (dataset, victim)
    }

    #[test]
    fn all_proxies_reverse_engineer_a_deterministic_victim() {
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        for kind in ProxyKind::ALL {
            let proxy = reverse_engineer(
                &mut victim,
                &dataset,
                split.attacker_training(),
                &ReverseConfig::new(kind),
            )
            .expect("reverse engineering succeeds");
            let eff = effectiveness(&proxy, &mut victim, &dataset, split.testing());
            assert!(eff > 0.85, "{kind} proxy only {eff} effective");
        }
    }

    #[test]
    fn stochastic_victim_resists_reverse_engineering() {
        // The core Figure-3 claim: RE effectiveness drops against a
        // Stochastic-HMD relative to the baseline.
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        let cfg = ReverseConfig::new(ProxyKind::Mlp);
        let base_proxy = reverse_engineer(&mut victim, &dataset, split.attacker_training(), &cfg)
            .expect("baseline RE");
        let base_eff = effectiveness(&base_proxy, &mut victim, &dataset, split.testing());

        let mut stochastic = StochasticHmd::from_baseline(&victim, 0.5, 7).expect("protect");
        let sto_proxy =
            reverse_engineer(&mut stochastic, &dataset, split.attacker_training(), &cfg)
                .expect("stochastic RE");
        let sto_eff = effectiveness(&sto_proxy, &mut stochastic, &dataset, split.testing());
        assert!(
            sto_eff < base_eff,
            "stochastic RE {sto_eff} should trail baseline {base_eff}"
        );
    }

    #[test]
    fn empty_queries_error() {
        let (dataset, mut victim) = setup();
        assert_eq!(
            reverse_engineer(
                &mut victim,
                &dataset,
                &[],
                &ReverseConfig::new(ProxyKind::Mlp)
            )
            .unwrap_err(),
            ReverseError::NoQueries
        );
    }

    #[test]
    fn degenerate_oracle_errors() {
        struct AlwaysMalware;
        impl Detector for AlwaysMalware {
            fn name(&self) -> &str {
                "always-malware"
            }
            fn score(&mut self, _trace: &Trace) -> f64 {
                1.0
            }
        }
        let (dataset, _) = setup();
        let split = dataset.three_fold_split(0);
        let err = reverse_engineer(
            &mut AlwaysMalware,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::LogisticRegression),
        )
        .unwrap_err();
        assert_eq!(err, ReverseError::DegenerateOracle);
    }

    #[test]
    fn multi_spec_proxy_concatenates_features() {
        use shmd_workload::features::{DetectionPeriod, FeatureKind, FEATURE_DIM};
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        let cfg = ReverseConfig::new(ProxyKind::Mlp).with_specs(vec![
            FeatureSpec::frequency(),
            FeatureSpec::new(FeatureKind::Burstiness, DetectionPeriod::EVERY_WINDOW),
        ]);
        let proxy =
            reverse_engineer(&mut victim, &dataset, split.attacker_training(), &cfg).expect("RE");
        assert_eq!(proxy.features(dataset.trace(0)).len(), 2 * FEATURE_DIM);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReverseError::NoQueries.to_string().contains("no query"));
        assert!(ReverseError::DegenerateOracle
            .to_string()
            .contains("identically"));
    }
}

//! Victim-validated evasion: the strongest realistic adversary.
//!
//! The black-box attacker is allowed to query the victim, so instead of
//! trusting the proxy it can *validate* each evasive candidate against the
//! victim directly, and keep padding until the victim itself clears the
//! sample several times in a row.
//!
//! This is exactly the attack the paper's core sentence addresses:
//! Stochastic-HMDs "prevent the adversary from having reliable access to
//! the HMD's output". Against a deterministic victim, one clean validation
//! is a *certificate* — the sample will evade forever. Against a
//! stochastic victim, even `k` consecutive benign verdicts certify
//! nothing: the next detection re-rolls the boundary, so a "validated"
//! sample is still caught in deployment. [`validated_outcome`] measures
//! that gap.

use crate::evasion::{evade, EvasionConfig, EvasiveSample};
use crate::reverse::Proxy;
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use shmd_workload::trace::Trace;
use stochastic_hmd::detector::Detector;

/// Configuration of the validation loop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Consecutive benign victim verdicts required to accept a candidate.
    pub required_clean: usize,
    /// Extra padding injected (fraction of the original trace) after a
    /// failed validation, before retrying.
    pub pad_fraction: f64,
    /// Maximum validation rounds before giving up on the sample.
    pub max_rounds: usize,
}

impl Default for ValidationConfig {
    fn default() -> ValidationConfig {
        ValidationConfig {
            required_clean: 3,
            pad_fraction: 0.1,
            max_rounds: 10,
        }
    }
}

/// Outcome of the validated-evasion experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatedOutcome {
    /// Malware samples the attacker tried to make evasive.
    pub attempted: usize,
    /// Samples the attacker managed to validate (k consecutive benign
    /// verdicts from the victim).
    pub validated: usize,
    /// Validated samples that were *still detected* when deployed
    /// afterwards (over `deployment_detections` fresh victim queries).
    pub caught_in_deployment: usize,
    /// Victim queries the attacker spent validating.
    pub validation_queries: usize,
}

impl ValidatedOutcome {
    /// Fraction of validated samples that deployment still catches — the
    /// reliability gap of the attacker's victim access.
    pub fn deployment_catch_rate(&self) -> f64 {
        if self.validated == 0 {
            return 0.0;
        }
        self.caught_in_deployment as f64 / self.validated as f64
    }
}

/// Pads `sample` with extra benign-mimicry filler (browser profile).
fn pad(sample: &EvasiveSample, original: &Trace, fraction: f64) -> EvasiveSample {
    use shmd_workload::families::{BenignFamily, ProgramClass};
    let profile = ProgramClass::Benign(BenignFamily::Browser).base_profile();
    let extra_total = (original.total_insns() as f64 * fraction) as u32;
    let mut injected = sample.injected;
    for (slot, &p) in injected.iter_mut().zip(&profile) {
        *slot = slot.saturating_add((p * f64::from(extra_total)).round() as u32);
    }
    EvasiveSample {
        program_idx: sample.program_idx,
        trace: original.with_injected(&injected),
        injected,
        proxy_score: sample.proxy_score,
        steps: sample.steps + 1,
    }
}

/// Runs proxy evasion, validates each candidate against the victim, and
/// then measures whether the validated samples survive deployment
/// (`deployment_detections` fresh victim queries each).
pub fn validated_outcome(
    victim: &mut dyn Detector,
    proxy: &Proxy,
    dataset: &Dataset,
    malware_indices: &[usize],
    evasion: &EvasionConfig,
    validation: &ValidationConfig,
    deployment_detections: usize,
) -> ValidatedOutcome {
    let mut outcome = ValidatedOutcome::default();
    for &idx in malware_indices {
        let original = dataset.trace(idx);
        if !proxy.predict_trace(original) {
            continue; // the proxy already misses it; nothing to evade
        }
        outcome.attempted += 1;
        let Some(mut sample) = evade(proxy, original, evasion) else {
            continue;
        };
        sample.program_idx = idx;

        // Validation loop: k consecutive benign verdicts or give up.
        let mut validated = false;
        for _round in 0..validation.max_rounds {
            let mut clean = 0usize;
            let mut failed = false;
            for _ in 0..validation.required_clean {
                outcome.validation_queries += 1;
                if victim.classify(&sample.trace).is_malware() {
                    failed = true;
                    break;
                }
                clean += 1;
            }
            let _ = clean;
            if !failed {
                validated = true;
                break;
            }
            sample = pad(&sample, original, validation.pad_fraction);
        }
        if !validated {
            continue;
        }
        outcome.validated += 1;

        // Deployment: fresh detections of the validated sample.
        let caught =
            (0..deployment_detections.max(1)).any(|_| victim.classify(&sample.trace).is_malware());
        if caught {
            outcome.caught_in_deployment += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{reverse_engineer, ReverseConfig};
    use crate::ProxyKind;
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use shmd_workload::isa::CATEGORY_COUNT;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
    use stochastic_hmd::BaselineHmd;

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(120), 404);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("trains");
        (dataset, victim)
    }

    #[test]
    fn deterministic_validation_is_a_certificate() {
        // Against the deterministic baseline, validated samples evade
        // deployment forever: catch rate 0.
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        let proxy = reverse_engineer(
            &mut victim,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::Mlp),
        )
        .expect("RE");
        let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
        let outcome = validated_outcome(
            &mut victim,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            &ValidationConfig::default(),
            8,
        );
        assert!(outcome.validated > 0, "{outcome:?}");
        assert_eq!(
            outcome.caught_in_deployment, 0,
            "a deterministic verdict is repeatable: {outcome:?}"
        );
    }

    #[test]
    fn stochastic_validation_certifies_nothing() {
        // Against the Stochastic-HMD, samples that passed k clean
        // validations are still caught in deployment at a meaningful rate.
        let (dataset, victim) = setup();
        let split = dataset.three_fold_split(0);
        let mut protected = StochasticHmd::from_baseline(&victim, 0.3, 7).expect("valid");
        let proxy = reverse_engineer(
            &mut protected,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::Mlp),
        )
        .expect("RE");
        let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();
        let outcome = validated_outcome(
            &mut protected,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            &ValidationConfig::default(),
            16,
        );
        assert!(outcome.validated > 0, "{outcome:?}");
        assert!(
            outcome.deployment_catch_rate() > 0.1,
            "validated samples must still be caught sometimes: {outcome:?}"
        );
    }

    #[test]
    fn padding_grows_the_trace_monotonically() {
        let (dataset, _) = setup();
        let original = dataset.trace(0);
        let base = EvasiveSample {
            program_idx: 0,
            trace: original.clone(),
            injected: [0; CATEGORY_COUNT],
            proxy_score: 0.4,
            steps: 0,
        };
        let padded = pad(&base, original, 0.2);
        assert!(padded.trace.total_insns() > original.total_insns());
        assert_eq!(padded.steps, 1);
    }

    #[test]
    fn catch_rate_handles_zero_validated() {
        assert_eq!(ValidatedOutcome::default().deployment_catch_rate(), 0.0);
    }
}

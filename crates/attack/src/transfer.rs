//! Transferability: do proxy-evading samples also evade the victim?

use crate::evasion::{generate_evasive_malware, EvasionConfig};
use crate::reverse::Proxy;
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use std::fmt;
use stochastic_hmd::detector::Detector;

/// Error reading a rate from a [`TransferOutcome`] with `attempted == 0`:
/// the experiment never ran (no malware index was detected by the proxy,
/// or none was supplied), so there is no rate to report — a caller
/// folding this into "the attack failed" would be lying in the
/// defender's favour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTransferAttempts;

impl fmt::Display for NoTransferAttempts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("no transfer attempts: the experiment never ran")
    }
}

impl std::error::Error for NoTransferAttempts {}

/// Outcome of a transferability experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Malware samples the attacker tried to make evasive.
    pub attempted: usize,
    /// Samples that successfully evade the proxy.
    pub evaded_proxy: usize,
    /// Proxy-evading samples that also evade the victim (one detection).
    pub evaded_victim: usize,
}

impl TransferOutcome {
    /// The paper's "transferability attack success rate": the fraction of
    /// evasive malware (proxy-evading) that also evades the victim.
    ///
    /// The three cases are kept distinct instead of collapsing to `0.0`:
    /// `Ok(Some(rate))` when at least one sample evaded the proxy;
    /// `Ok(None)` when samples were attempted but the attacker's evasion
    /// step never converged against the proxy (the *proxy* defeated the
    /// attack, which says nothing about the victim); and
    /// `Err(NoTransferAttempts)` when `attempted == 0`, i.e. the
    /// experiment never ran at all.
    ///
    /// # Errors
    ///
    /// [`NoTransferAttempts`] when `attempted == 0`.
    pub fn success_rate(&self) -> Result<Option<f64>, NoTransferAttempts> {
        if self.attempted == 0 {
            return Err(NoTransferAttempts);
        }
        if self.evaded_proxy == 0 {
            return Ok(None);
        }
        Ok(Some(self.evaded_victim as f64 / self.evaded_proxy as f64))
    }

    /// The defender's view: the fraction of evasive malware *detected*
    /// (Figure 5's y-axis). Mirrors [`TransferOutcome::success_rate`]:
    /// `Ok(None)` when no evasive sample ever existed to detect.
    ///
    /// # Errors
    ///
    /// [`NoTransferAttempts`] when `attempted == 0`.
    pub fn detection_rate(&self) -> Result<Option<f64>, NoTransferAttempts> {
        Ok(self.success_rate()?.map(|rate| 1.0 - rate))
    }

    /// Scalar collapse for aggregate tables: the success rate, counting
    /// a non-converged proxy attack (and a never-run experiment) as zero
    /// attacker success. Use [`TransferOutcome::success_rate`] anywhere
    /// the distinction matters.
    pub fn assumed_success_rate(&self) -> f64 {
        self.success_rate().ok().flatten().unwrap_or(0.0)
    }

    /// Scalar collapse mirroring [`TransferOutcome::assumed_success_rate`]:
    /// the detection rate, counting a non-converged attack as full
    /// detection.
    pub fn assumed_detection_rate(&self) -> f64 {
        1.0 - self.assumed_success_rate()
    }
}

/// Number of detection periods an evasive sample is tested against,
/// matching the paper's single-detection evaluation.
///
/// Deployed HMDs monitor continuously, so a real evasive sample must evade
/// *every* detection period of its execution; pass a larger count to
/// [`transferability`] to study that (strictly defender-favouring) setting.
pub const DEFAULT_DETECTION_PERIODS: usize = 1;

/// Runs the transferability experiment: generate evasive malware against
/// the proxy, then test each evasive sample against the victim over
/// `detections` detection periods (the sample evades only if every period
/// says benign).
pub fn transferability(
    victim: &mut dyn Detector,
    proxy: &Proxy,
    dataset: &Dataset,
    malware_indices: &[usize],
    config: &EvasionConfig,
    detections: usize,
) -> TransferOutcome {
    // Only malware the proxy detects in the first place needs evading;
    // samples it already misses are excluded, as in the attack literature.
    let detected: Vec<usize> = malware_indices
        .iter()
        .copied()
        .filter(|&i| proxy.predict_trace(dataset.trace(i)))
        .collect();
    let evasive = generate_evasive_malware(proxy, dataset, &detected, config);
    let mut evaded_victim = 0usize;
    for sample in &evasive {
        let evades_all =
            (0..detections.max(1)).all(|_| !victim.classify(&sample.trace).is_malware());
        if evades_all {
            evaded_victim += 1;
        }
    }
    TransferOutcome {
        attempted: detected.len(),
        evaded_proxy: evasive.len(),
        evaded_victim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{reverse_engineer, ReverseConfig};
    use crate::ProxyKind;
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
    use stochastic_hmd::BaselineHmd;

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(150), 81);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train victim");
        (dataset, victim)
    }

    #[test]
    fn rates_are_consistent() {
        let outcome = TransferOutcome {
            attempted: 100,
            evaded_proxy: 80,
            evaded_victim: 20,
        };
        let rate = outcome.success_rate().expect("attempted > 0");
        assert!((rate.expect("converged") - 0.25).abs() < 1e-12);
        let detected = outcome.detection_rate().expect("attempted > 0");
        assert!((detected.expect("converged") - 0.75).abs() < 1e-12);
        assert!((outcome.assumed_success_rate() - 0.25).abs() < 1e-12);
        assert!((outcome.assumed_detection_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn never_run_experiment_is_a_typed_error() {
        let outcome = TransferOutcome::default();
        assert_eq!(outcome.success_rate(), Err(NoTransferAttempts));
        assert_eq!(outcome.detection_rate(), Err(NoTransferAttempts));
        assert_eq!(outcome.assumed_success_rate(), 0.0);
        assert_eq!(outcome.assumed_detection_rate(), 1.0);
    }

    #[test]
    fn non_converged_proxy_attack_is_distinct_from_failure() {
        let outcome = TransferOutcome {
            attempted: 40,
            evaded_proxy: 0,
            evaded_victim: 0,
        };
        assert_eq!(outcome.success_rate(), Ok(None));
        assert_eq!(outcome.detection_rate(), Ok(None));
        assert_eq!(outcome.assumed_success_rate(), 0.0);
    }

    #[test]
    fn baseline_victim_is_vulnerable_and_stochastic_is_not() {
        // The Figure-4 headline, end to end: evasive malware transfers to
        // the deterministic baseline far more than to the Stochastic-HMD.
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        let proxy = reverse_engineer(
            &mut victim,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::Mlp),
        )
        .expect("RE");
        let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();

        let baseline_outcome = transferability(
            &mut victim,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            DEFAULT_DETECTION_PERIODS,
        );
        assert!(
            baseline_outcome.assumed_success_rate() > 0.25,
            "baseline should be substantially evadable: {baseline_outcome:?}"
        );

        // The seed pins one representative fault stream: with ~50 evasive
        // samples the protected/baseline gap is real but small, so an
        // unlucky stream can tie the baseline count.
        let mut protected = StochasticHmd::from_baseline(&victim, 0.1, 2).expect("protect");
        let protected_outcome = transferability(
            &mut protected,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            DEFAULT_DETECTION_PERIODS,
        );
        assert!(
            protected_outcome.assumed_success_rate() < baseline_outcome.assumed_success_rate(),
            "stochastic victim must be harder to transfer to: {protected_outcome:?} vs {baseline_outcome:?}"
        );
    }
}

//! Transferability: do proxy-evading samples also evade the victim?

use crate::evasion::{generate_evasive_malware, EvasionConfig};
use crate::reverse::Proxy;
use serde::{Deserialize, Serialize};
use shmd_workload::dataset::Dataset;
use stochastic_hmd::detector::Detector;

/// Outcome of a transferability experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Malware samples the attacker tried to make evasive.
    pub attempted: usize,
    /// Samples that successfully evade the proxy.
    pub evaded_proxy: usize,
    /// Proxy-evading samples that also evade the victim (one detection).
    pub evaded_victim: usize,
}

impl TransferOutcome {
    /// The paper's "transferability attack success rate": the fraction of
    /// evasive malware (proxy-evading) that also evades the victim.
    /// Returns 0 when no sample evaded the proxy.
    pub fn success_rate(&self) -> f64 {
        if self.evaded_proxy == 0 {
            return 0.0;
        }
        self.evaded_victim as f64 / self.evaded_proxy as f64
    }

    /// The defender's view: the fraction of evasive malware *detected*
    /// (Figure 5's y-axis).
    pub fn detection_rate(&self) -> f64 {
        1.0 - self.success_rate()
    }
}

/// Number of detection periods an evasive sample is tested against,
/// matching the paper's single-detection evaluation.
///
/// Deployed HMDs monitor continuously, so a real evasive sample must evade
/// *every* detection period of its execution; pass a larger count to
/// [`transferability`] to study that (strictly defender-favouring) setting.
pub const DEFAULT_DETECTION_PERIODS: usize = 1;

/// Runs the transferability experiment: generate evasive malware against
/// the proxy, then test each evasive sample against the victim over
/// `detections` detection periods (the sample evades only if every period
/// says benign).
pub fn transferability(
    victim: &mut dyn Detector,
    proxy: &Proxy,
    dataset: &Dataset,
    malware_indices: &[usize],
    config: &EvasionConfig,
    detections: usize,
) -> TransferOutcome {
    // Only malware the proxy detects in the first place needs evading;
    // samples it already misses are excluded, as in the attack literature.
    let detected: Vec<usize> = malware_indices
        .iter()
        .copied()
        .filter(|&i| proxy.predict_trace(dataset.trace(i)))
        .collect();
    let evasive = generate_evasive_malware(proxy, dataset, &detected, config);
    let mut evaded_victim = 0usize;
    for sample in &evasive {
        let evades_all =
            (0..detections.max(1)).all(|_| !victim.classify(&sample.trace).is_malware());
        if evades_all {
            evaded_victim += 1;
        }
    }
    TransferOutcome {
        attempted: detected.len(),
        evaded_proxy: evasive.len(),
        evaded_victim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::{reverse_engineer, ReverseConfig};
    use crate::ProxyKind;
    use shmd_workload::dataset::DatasetConfig;
    use shmd_workload::features::FeatureSpec;
    use stochastic_hmd::stochastic::StochasticHmd;
    use stochastic_hmd::train::{train_baseline, HmdTrainConfig};
    use stochastic_hmd::BaselineHmd;

    fn setup() -> (Dataset, BaselineHmd) {
        let dataset = Dataset::generate(&DatasetConfig::small(150), 81);
        let split = dataset.three_fold_split(0);
        let victim = train_baseline(
            &dataset,
            split.victim_training(),
            FeatureSpec::frequency(),
            &HmdTrainConfig::fast(),
        )
        .expect("train victim");
        (dataset, victim)
    }

    #[test]
    fn rates_are_consistent() {
        let outcome = TransferOutcome {
            attempted: 100,
            evaded_proxy: 80,
            evaded_victim: 20,
        };
        assert!((outcome.success_rate() - 0.25).abs() < 1e-12);
        assert!((outcome.detection_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_proxy_evasions_is_zero_success() {
        let outcome = TransferOutcome::default();
        assert_eq!(outcome.success_rate(), 0.0);
        assert_eq!(outcome.detection_rate(), 1.0);
    }

    #[test]
    fn baseline_victim_is_vulnerable_and_stochastic_is_not() {
        // The Figure-4 headline, end to end: evasive malware transfers to
        // the deterministic baseline far more than to the Stochastic-HMD.
        let (dataset, mut victim) = setup();
        let split = dataset.three_fold_split(0);
        let proxy = reverse_engineer(
            &mut victim,
            &dataset,
            split.attacker_training(),
            &ReverseConfig::new(ProxyKind::Mlp),
        )
        .expect("RE");
        let malware: Vec<usize> = dataset.malware_indices(split.testing()).collect();

        let baseline_outcome = transferability(
            &mut victim,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            DEFAULT_DETECTION_PERIODS,
        );
        assert!(
            baseline_outcome.success_rate() > 0.25,
            "baseline should be substantially evadable: {baseline_outcome:?}"
        );

        // The seed pins one representative fault stream: with ~50 evasive
        // samples the protected/baseline gap is real but small, so an
        // unlucky stream can tie the baseline count.
        let mut protected = StochasticHmd::from_baseline(&victim, 0.1, 2).expect("protect");
        let protected_outcome = transferability(
            &mut protected,
            &proxy,
            &dataset,
            &malware,
            &EvasionConfig::default(),
            DEFAULT_DETECTION_PERIODS,
        );
        assert!(
            protected_outcome.success_rate() < baseline_outcome.success_rate(),
            "stochastic victim must be harder to transfer to: {protected_outcome:?} vs {baseline_outcome:?}"
        );
    }
}

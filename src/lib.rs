//! Meta-crate re-exporting the Stochastic-HMD reproduction workspace.
//!
//! See the individual crates for functionality:
//! - [`shmd_volt`] — undervolting fault model
//! - [`shmd_fixed`] — fixed-point arithmetic
//! - [`shmd_ann`] — FANN-like neural network
//! - [`shmd_ml`] — logistic regression / decision tree
//! - [`shmd_workload`] — synthetic program traces and dataset
//! - [`stochastic_hmd`] — detectors (baseline, stochastic, RHMD)
//! - [`shmd_attack`] — reverse engineering / evasion / transferability
//! - [`shmd_power`] — power, latency, memory, RNG-cost models

pub use shmd_ann as ann;
pub use shmd_attack as attack;
pub use shmd_fixed as fixed;
pub use shmd_ml as ml;
pub use shmd_power as power;
pub use shmd_volt as volt;
pub use shmd_workload as workload;
pub use stochastic_hmd as hmd;
